//! `fleet_load` — the open-loop fleet load harness.
//!
//! Boots a real `TransportServer` over a Unix socket, generates a
//! deterministic open-loop workload from the `fleet-device` models, and
//! replays it through real worker connections while one shared telemetry
//! recorder collects latency distributions, queue depths, per-shard apply
//! rates and protocol counters. Each sweep point becomes one entry of a
//! `fleet-bench-v2` JSON document (diffable with
//! `scripts/bench_compare.py`).
//!
//! ```text
//! cargo run --release -p fleet-examples --example fleet_load -- \
//!     --workers 64,256,1024 --connections 8 --ops 4 --seed 42 \
//!     --shards 4 --k 2 --json FLEET_load.json
//! ```
//!
//! `--digest-only` prints each sweep point's schedule digest without
//! driving the server — the CI determinism pin uses this at two
//! `FLEET_NUM_THREADS` settings and requires identical output.

use fleet_core::ApplyMode;
use fleet_loadgen::{
    build_fleet, drive, load_entry, load_report, model_parameters, DriveOptions, FleetShape,
    Schedule, WorkloadSpec,
};
use fleet_server::{FleetServer, FleetServerConfig};
use fleet_telemetry::{Recorder, ResourceUsage, TelemetryHandle, TelemetrySink};
use fleet_transport::{Endpoint, TransportConfig, TransportServer};
use std::sync::Arc;

struct Args {
    workers: Vec<usize>,
    connections: usize,
    ops: usize,
    seed: u64,
    shards: usize,
    aggregation_k: usize,
    time_scale: f64,
    json: Option<String>,
    digest_only: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            workers: vec![64, 256, 1024],
            connections: 8,
            ops: 4,
            seed: 42,
            shards: 4,
            aggregation_k: 2,
            time_scale: 0.0,
            json: None,
            digest_only: false,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} expects a value"))
        };
        match flag.as_str() {
            "--workers" => {
                args.workers = value("--workers")
                    .split(',')
                    .map(|w| w.trim().parse().expect("--workers takes integers"))
                    .collect();
            }
            "--connections" => args.connections = value("--connections").parse().expect("integer"),
            "--ops" => args.ops = value("--ops").parse().expect("integer"),
            "--seed" => args.seed = value("--seed").parse().expect("integer"),
            "--shards" => args.shards = value("--shards").parse().expect("integer"),
            "--k" => args.aggregation_k = value("--k").parse().expect("integer"),
            "--scale" => args.time_scale = value("--scale").parse().expect("float"),
            "--json" => args.json = Some(value("--json")),
            "--digest-only" => args.digest_only = true,
            other => {
                eprintln!(
                    "unknown flag {other}\nusage: fleet_load [--workers N,N,...] \
                     [--connections N] [--ops N] [--seed N] [--shards N] [--k N] \
                     [--scale F] [--json PATH] [--digest-only]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn spec_for(args: &Args, workers: usize) -> WorkloadSpec {
    WorkloadSpec {
        workers,
        ops_per_worker: args.ops,
        seed: args.seed,
        ..WorkloadSpec::default()
    }
}

fn main() {
    let args = parse_args();

    if args.digest_only {
        for &workers in &args.workers {
            let schedule =
                Schedule::generate(&spec_for(&args, workers)).expect("workload spec is valid");
            println!(
                "fleet_load schedule workers={workers} digest: {:#018x}",
                schedule.digest()
            );
        }
        return;
    }

    let shape = FleetShape::default();
    let mut report = load_report();
    report.meta_str("seed", &args.seed.to_string());

    for &workers in &args.workers {
        let spec = spec_for(&args, workers);
        let schedule = Schedule::generate(&spec).expect("workload spec is valid");
        println!(
            "fleet_load schedule workers={workers} digest: {:#018x} ({} events, horizon {:.2}s)",
            schedule.digest(),
            schedule.events().len(),
            schedule.horizon_ns() as f64 / 1e9
        );

        // One recorder per sweep point: server and clients share it, so
        // the snapshot is one coherent view of the run.
        let recorder: Arc<Recorder> = Arc::new(Recorder::new());
        let config = FleetServerConfig::builder()
            .num_classes(shape.num_classes)
            .shards(args.shards)
            .aggregation_k(args.aggregation_k)
            .apply_mode(ApplyMode::PerShard)
            .max_pending(64)
            // Open-loop arrivals have no round structure; generous leases
            // keep reclaim from racing slow lanes.
            .lease_min_rounds(1 << 20)
            .build()
            .expect("server config is valid");
        let socket =
            std::env::temp_dir().join(format!("fleet-load-{}-{workers}.sock", std::process::id()));
        let _ = std::fs::remove_file(&socket);
        let endpoint = Endpoint::uds(socket);
        let server = TransportServer::bind(
            &endpoint,
            FleetServer::new(model_parameters(&shape), config),
            TransportConfig::builder()
                .telemetry(TelemetryHandle::new(
                    Arc::clone(&recorder) as Arc<dyn TelemetrySink>
                ))
                .build()
                .expect("transport config is valid"),
        )
        .expect("bind load socket");

        let fleet = build_fleet(&spec, &shape);
        let options = DriveOptions {
            connections: args.connections,
            time_scale: args.time_scale,
        };
        let usage_before = ResourceUsage::capture();
        let started = recorder.now_ns();
        let stats = drive(
            &endpoint,
            &schedule,
            fleet,
            Arc::clone(&recorder) as Arc<dyn TelemetrySink>,
            &options,
        );
        let wall_ns = recorder.now_ns().saturating_sub(started);
        let _ = server.shutdown().expect("shutdown");

        assert_eq!(
            stats.transport_errors, 0,
            "load run hit transport errors: {stats:?}"
        );
        let snapshot = recorder.snapshot();
        let entry = load_entry(
            format!("fleet_load/workers={workers}/conns={}", options.connections),
            &schedule,
            &stats,
            &snapshot,
            &usage_before,
            wall_ns,
        );
        println!(
            "  drove {} requests / {} submits in {:.2}s: {} applied, {} overloaded, \
             request p50/p99 = {}/{} us",
            stats.requests,
            stats.submits,
            wall_ns as f64 / 1e9,
            stats.applied,
            stats.rejected_overloaded,
            entry_u64(&entry, "request_exchange_p50_ns") / 1_000,
            entry_u64(&entry, "request_exchange_p99_ns") / 1_000,
        );
        report.push(entry);
    }

    if let Some(path) = &args.json {
        report
            .write_to(std::path::Path::new(path))
            .expect("write report JSON");
        println!("wrote {path}");
    } else {
        println!("{}", report.render());
    }
}

/// Reads one extended u64 field back out of an entry (display only).
fn entry_u64(entry: &fleet_telemetry::BenchEntry, key: &str) -> u64 {
    entry
        .fields
        .iter()
        .find_map(|(k, v)| match (k == key, v) {
            (true, fleet_telemetry::FieldValue::U64(v)) => Some(*v),
            _ => None,
        })
        .unwrap_or(0)
}
