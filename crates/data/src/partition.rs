//! Federated data partitioning.
//!
//! The paper uses two decentralisation schemes (§3.2):
//!
//! * **IID**: examples are shuffled and split evenly across users.
//! * **non-IID** (the standard scheme of McMahan et al.): examples are sorted
//!   by label, divided into `2 * num_users` shards, and each user receives 2
//!   shards — so each user only holds examples of a few labels.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Assignment of dataset example indices to users.
pub type UserPartition = Vec<Vec<usize>>;

/// Splits `dataset` IID across `num_users` users.
///
/// Every user receives `len / num_users` examples (the remainder is spread
/// over the first users).
///
/// # Panics
///
/// Panics if `num_users` is zero.
pub fn iid_partition(dataset: &Dataset, num_users: usize, seed: u64) -> UserPartition {
    assert!(num_users > 0, "num_users must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    indices.shuffle(&mut rng);
    split_evenly(&indices, num_users)
}

/// Splits `dataset` across `num_users` users with the paper's non-IID shard
/// scheme: sort by label, cut into `shards_per_user * num_users` shards,
/// assign `shards_per_user` shards to each user (shard order randomised).
///
/// # Panics
///
/// Panics if `num_users` or `shards_per_user` is zero.
pub fn non_iid_shards(
    dataset: &Dataset,
    num_users: usize,
    shards_per_user: usize,
    seed: u64,
) -> UserPartition {
    assert!(num_users > 0, "num_users must be positive");
    assert!(shards_per_user > 0, "shards_per_user must be positive");
    let mut rng = StdRng::seed_from_u64(seed);

    // Sort example indices by label.
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    indices.sort_by_key(|&i| dataset.label(i));

    let num_shards = num_users * shards_per_user;
    let shards = split_evenly(&indices, num_shards);
    let mut shard_ids: Vec<usize> = (0..num_shards).collect();
    shard_ids.shuffle(&mut rng);

    let mut users = vec![Vec::new(); num_users];
    for (slot, &shard_id) in shard_ids.iter().enumerate() {
        users[slot % num_users].extend_from_slice(&shards[shard_id]);
    }
    users
}

/// Number of distinct labels a user's local data covers. Useful to verify the
/// non-IID pathology (few labels per user) in tests and experiments.
pub fn distinct_labels(dataset: &Dataset, user_indices: &[usize]) -> usize {
    let mut seen = vec![false; dataset.num_classes()];
    for &i in user_indices {
        seen[dataset.label(i)] = true;
    }
    seen.iter().filter(|&&s| s).count()
}

fn split_evenly(indices: &[usize], parts: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new(); parts];
    let base = indices.len() / parts;
    let remainder = indices.len() % parts;
    let mut cursor = 0;
    for (p, bucket) in out.iter_mut().enumerate() {
        let take = base + usize::from(p < remainder);
        bucket.extend_from_slice(&indices[cursor..cursor + take]);
        cursor += take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, SyntheticSpec};
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn dataset() -> Dataset {
        generate(&SyntheticSpec::vector(10, 4, 200), 5)
    }

    #[test]
    fn iid_covers_every_example_once() {
        let d = dataset();
        let users = iid_partition(&d, 7, 1);
        let all: Vec<usize> = users.iter().flatten().cloned().collect();
        assert_eq!(all.len(), d.len());
        let unique: HashSet<usize> = all.into_iter().collect();
        assert_eq!(unique.len(), d.len());
    }

    #[test]
    fn iid_users_have_balanced_sizes() {
        let d = dataset();
        let users = iid_partition(&d, 6, 2);
        let sizes: Vec<usize> = users.iter().map(|u| u.len()).collect();
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn non_iid_covers_every_example_once() {
        let d = dataset();
        let users = non_iid_shards(&d, 10, 2, 3);
        let all: Vec<usize> = users.iter().flatten().cloned().collect();
        let unique: HashSet<usize> = all.iter().cloned().collect();
        assert_eq!(all.len(), d.len());
        assert_eq!(unique.len(), d.len());
    }

    #[test]
    fn non_iid_users_see_few_labels() {
        // 200 examples, 10 classes, 10 users x 2 shards of 10 examples:
        // each user covers at most ~4 labels (usually 2), far fewer than 10.
        let d = dataset();
        let users = non_iid_shards(&d, 10, 2, 3);
        let max_labels = users.iter().map(|u| distinct_labels(&d, u)).max().unwrap();
        assert!(
            max_labels <= 5,
            "non-IID users should see few labels, max was {max_labels}"
        );
    }

    #[test]
    fn iid_users_see_many_labels() {
        let d = dataset();
        let users = iid_partition(&d, 10, 3);
        let min_labels = users.iter().map(|u| distinct_labels(&d, u)).min().unwrap();
        assert!(min_labels >= 6, "IID users should see most labels");
    }

    #[test]
    fn partitions_are_deterministic() {
        let d = dataset();
        assert_eq!(non_iid_shards(&d, 5, 2, 9), non_iid_shards(&d, 5, 2, 9));
        assert_eq!(iid_partition(&d, 5, 9), iid_partition(&d, 5, 9));
    }

    #[test]
    #[should_panic(expected = "num_users must be positive")]
    fn zero_users_panics() {
        iid_partition(&dataset(), 0, 0);
    }

    proptest! {
        #[test]
        fn prop_partitions_preserve_examples(users in 1usize..12, shards in 1usize..4, seed in 0u64..20) {
            let d = generate(&SyntheticSpec::vector(5, 3, 60), 1);
            let p = non_iid_shards(&d, users, shards, seed);
            prop_assert_eq!(p.len(), users);
            let total: usize = p.iter().map(|u| u.len()).sum();
            prop_assert_eq!(total, d.len());
        }
    }
}
