//! Table 1: the CNN topologies used by the image-classification experiments.

use crate::{ExperimentWriter, Scale};
use fleet_ml::models::table1_summaries;

/// Prints the Table 1 model summaries (dataset, input shape, layer count,
/// parameter count).
pub fn run(_scale: Scale) {
    let mut out = ExperimentWriter::new("table01_models");
    out.comment("Table 1: CNN topologies (faithful rebuilds in fleet-ml::models)");
    out.row("dataset,input_shape,layers,parameters");
    for s in table1_summaries() {
        out.row(format!(
            "{},{}x{}x{},{},{}",
            s.dataset, s.input_shape[0], s.input_shape[1], s.input_shape[2], s.layers, s.parameters
        ));
    }
    out.finish();
}
