//! Thermal model.
//!
//! Fig. 4 of the paper shows that the linear latency/energy slope of a device
//! is not constant: sustained load heats the SoC and the slope degrades (the
//! Honor 10 "up" sweep shows increased variance and a different slope than the
//! cooled-down "down" sweep). This module models that effect with a simple
//! first-order heating/cooling process.

use serde::{Deserialize, Serialize};

/// First-order thermal state of a device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    /// Ambient (resting) temperature in °C.
    pub ambient_celsius: f32,
    /// Temperature rise per second of sustained computation, in °C/s.
    pub heating_per_second: f32,
    /// Fraction of the excess temperature shed per second of idling.
    pub cooling_rate: f32,
    /// Maximum temperature the throttling controller allows, in °C.
    pub max_celsius: f32,
    current_celsius: f32,
}

impl ThermalModel {
    /// Creates a thermal model starting at ambient temperature.
    pub fn new(ambient_celsius: f32, heating_per_second: f32, cooling_rate: f32) -> Self {
        Self {
            ambient_celsius,
            heating_per_second,
            cooling_rate,
            max_celsius: 55.0,
            current_celsius: ambient_celsius,
        }
    }

    /// A typical smartphone thermal envelope.
    pub fn typical() -> Self {
        Self::new(30.0, 0.25, 0.02)
    }

    /// Current temperature in °C.
    pub fn temperature(&self) -> f32 {
        self.current_celsius
    }

    /// Degrees above ambient.
    pub fn excess(&self) -> f32 {
        (self.current_celsius - self.ambient_celsius).max(0.0)
    }

    /// Records `busy_seconds` of sustained computation, heating the device
    /// (clamped at `max_celsius`).
    pub fn heat(&mut self, busy_seconds: f32) {
        self.current_celsius =
            (self.current_celsius + self.heating_per_second * busy_seconds).min(self.max_celsius);
    }

    /// Records `idle_seconds` of idling, cooling exponentially towards
    /// ambient.
    pub fn cool(&mut self, idle_seconds: f32) {
        let excess = self.current_celsius - self.ambient_celsius;
        let decay = (-self.cooling_rate * idle_seconds).exp();
        self.current_celsius = self.ambient_celsius + excess * decay;
    }

    /// Resets to ambient temperature.
    pub fn reset(&mut self) {
        self.current_celsius = self.ambient_celsius;
    }
}

impl Default for ThermalModel {
    fn default() -> Self {
        Self::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn starts_at_ambient() {
        let t = ThermalModel::typical();
        assert_eq!(t.temperature(), 30.0);
        assert_eq!(t.excess(), 0.0);
    }

    #[test]
    fn heating_raises_temperature() {
        let mut t = ThermalModel::typical();
        t.heat(10.0);
        assert!(t.temperature() > 30.0);
        assert!(t.excess() > 0.0);
    }

    #[test]
    fn heating_is_capped() {
        let mut t = ThermalModel::typical();
        t.heat(1e6);
        assert_eq!(t.temperature(), t.max_celsius);
    }

    #[test]
    fn cooling_approaches_ambient() {
        let mut t = ThermalModel::typical();
        t.heat(60.0);
        let hot = t.temperature();
        t.cool(30.0);
        assert!(t.temperature() < hot);
        t.cool(1e6);
        assert!((t.temperature() - 30.0).abs() < 0.01);
    }

    #[test]
    fn reset_returns_to_ambient() {
        let mut t = ThermalModel::typical();
        t.heat(100.0);
        t.reset();
        assert_eq!(t.temperature(), 30.0);
    }

    proptest! {
        #[test]
        fn prop_temperature_stays_in_envelope(ops in proptest::collection::vec((0.0f32..100.0, 0.0f32..100.0), 0..50)) {
            let mut t = ThermalModel::typical();
            for (busy, idle) in ops {
                t.heat(busy);
                t.cool(idle);
                prop_assert!(t.temperature() >= t.ambient_celsius - 1e-3);
                prop_assert!(t.temperature() <= t.max_celsius + 1e-3);
            }
        }
    }
}
