//! Turns one load run into a `fleet-bench-v2` [`BenchReport`] entry.
//!
//! The primary metric (`mean_ns` / `iterations`) is the client-observed
//! request exchange; everything else rides in the frozen extended-field
//! catalogue (see `crates/telemetry/README.md`): latency percentiles per
//! metric, protocol counters, queue depths, per-shard apply counts and
//! rates, and process resource usage.

use crate::driver::DriveStats;
use crate::schedule::Schedule;
use fleet_telemetry::{
    BenchEntry, BenchReport, Counter, FieldValue, Latency, ResourceUsage, TelemetrySnapshot,
};

/// Assembles the report entry for one `(schedule, run)` pair.
///
/// `wall_ns` is the measured duration of the drive phase; `usage_before`
/// was captured before the run so CPU seconds are attributable to it
/// (max RSS stays a process-lifetime peak — that is what the kernel
/// exposes).
pub fn load_entry(
    name: impl Into<String>,
    schedule: &Schedule,
    stats: &DriveStats,
    snapshot: &TelemetrySnapshot,
    usage_before: &ResourceUsage,
    wall_ns: u64,
) -> BenchEntry {
    let request = snapshot.latency[Latency::RequestExchange as usize].snapshot();
    let mut entry = BenchEntry::new(name, request.mean, request.count);

    entry.field("workers", FieldValue::U64(schedule.spec().workers as u64));
    entry.field(
        "ops_per_worker",
        FieldValue::U64(schedule.spec().ops_per_worker as u64),
    );
    entry.field(
        "schedule_digest",
        FieldValue::Str(format!("{:#018x}", schedule.digest())),
    );
    entry.field(
        "schedule_horizon_ns",
        FieldValue::U64(schedule.horizon_ns()),
    );
    entry.field("wall_ns", FieldValue::U64(wall_ns));

    // Latency percentiles for every metric, flat snake_case fields.
    for metric in Latency::ALL {
        let snap = snapshot.latency[metric as usize].snapshot();
        let base = metric.name();
        entry.field(format!("{base}_count"), FieldValue::U64(snap.count));
        entry.field(format!("{base}_mean_ns"), FieldValue::F64(snap.mean));
        entry.field(format!("{base}_p50_ns"), FieldValue::U64(snap.p50));
        entry.field(format!("{base}_p99_ns"), FieldValue::U64(snap.p99));
        entry.field(format!("{base}_p999_ns"), FieldValue::U64(snap.p999));
        entry.field(format!("{base}_max_ns"), FieldValue::U64(snap.max));
    }

    // Server + client protocol counters.
    for counter in Counter::ALL {
        entry.field(
            counter.name(),
            FieldValue::U64(snapshot.counters[counter as usize]),
        );
    }

    // Queue depths and per-shard apply activity.
    entry.field("queue_depth_p50", FieldValue::U64(snapshot.queue_depth.p50));
    entry.field("queue_depth_p99", FieldValue::U64(snapshot.queue_depth.p99));
    entry.field("queue_depth_max", FieldValue::U64(snapshot.queue_depth.max));
    entry.field(
        "shard_max_depth",
        FieldValue::U64Array(snapshot.shard_max_depth.clone()),
    );
    entry.field(
        "shard_applies",
        FieldValue::U64Array(snapshot.shard_applies.clone()),
    );
    let wall_seconds = wall_ns as f64 / 1e9;
    let apply_rates: Vec<f64> = snapshot
        .shard_applies
        .iter()
        .map(|&a| {
            if wall_seconds > 0.0 {
                a as f64 / wall_seconds
            } else {
                0.0
            }
        })
        .collect();
    entry.field("shard_apply_rate_hz", FieldValue::F64Array(apply_rates));

    // Driver-side protocol outcomes.
    entry.field("drive_requests", FieldValue::U64(stats.requests));
    entry.field("drive_assignments", FieldValue::U64(stats.assignments));
    entry.field(
        "drive_rejected_overloaded",
        FieldValue::U64(stats.rejected_overloaded),
    );
    entry.field(
        "drive_rejected_other",
        FieldValue::U64(stats.rejected_other),
    );
    entry.field("drive_submits", FieldValue::U64(stats.submits));
    entry.field("drive_applied", FieldValue::U64(stats.applied));
    entry.field("drive_discarded", FieldValue::U64(stats.discarded));
    entry.field(
        "drive_skipped_submits",
        FieldValue::U64(stats.skipped_submits),
    );
    entry.field(
        "drive_transport_errors",
        FieldValue::U64(stats.transport_errors),
    );

    // Process resources.
    let usage = ResourceUsage::capture();
    entry.field("max_rss_bytes", FieldValue::U64(usage.max_rss_bytes));
    entry.field(
        "cpu_seconds",
        FieldValue::F64(usage.cpu_seconds_since(usage_before)),
    );
    entry
}

/// A fresh report shell with the standard meta block plus the harness tag.
pub fn load_report() -> BenchReport {
    let mut report = BenchReport::with_standard_meta();
    report.meta_str("harness", "fleet_load");
    report
}
