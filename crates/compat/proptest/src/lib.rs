//! Offline stand-in for `proptest`.
//!
//! Provides the `proptest!` macro, `prop_assert*` macros, range/tuple/vec
//! strategies and `any::<T>()` — the surface this workspace's property tests
//! use. Tests run a fixed number of deterministic random cases (default 64,
//! override with `PROPTEST_CASES`); the per-test RNG seed is derived from the
//! test name, so failures reproduce exactly. No shrinking: a failing case
//! panics with the standard assert message, which is enough to debug at this
//! scale.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash of a test name, used as its deterministic seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Number of cases per property (env `PROPTEST_CASES`, default 64).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A generator of random values for one property-test argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.below(span.saturating_add(1)) as i128) as $t
            }
        }
    )*};
}
impl_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start + rng.unit_f64() as $t * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + rng.unit_f64() as $t * (hi - lo)
            }
        }
    )*};
}
impl_strategy_float!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_strategy_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Full-range strategy for a primitive, as in `any::<u8>()`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Builds the full-range strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector strategy with the given element strategy and length range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Optional-value strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `Option`s whose `Some` values come from `inner`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option` strategy: `None` roughly half the time, `Some(inner)`
    /// otherwise (upstream defaults to a 50% `Some` probability too).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Declares deterministic property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]` running
/// [`cases`] random cases with a seed derived from the test name.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let mut rng = $crate::TestRng::new($crate::seed_for(stringify!($name)));
            for _case in 0..$crate::cases() {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in -1.0f32..1.0, k in 0u64..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(k <= 5);
        }

        #[test]
        fn vec_lengths_respect_size_range(v in crate::collection::vec(0u8..=255, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn tuples_compose(pair in (0.0f32..1.0, 10usize..20)) {
            prop_assert!(pair.0 < 1.0 && pair.1 >= 10);
        }
    }

    #[test]
    fn seeds_differ_per_name() {
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }

    #[test]
    fn generation_is_deterministic() {
        let s = crate::collection::vec(any::<u64>(), 4..8);
        let a = s.generate(&mut TestRng::new(9));
        let b = s.generate(&mut TestRng::new(9));
        assert_eq!(a, b);
    }
}
