//! Dense, row-major `f32` tensors.
//!
//! The tensor type is intentionally small: it supports exactly the operations
//! needed by the layers in this crate (element-wise arithmetic, matrix
//! multiplication, reshaping, reductions). All data is stored contiguously in
//! row-major order.

use serde::{Deserialize, Serialize};

/// A dense, row-major tensor of `f32` values.
///
/// # Example
///
/// ```
/// use fleet_ml::tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::ones(&[2, 2]);
/// let c = a.add(&b);
/// assert_eq!(c.data(), &[2.0, 3.0, 4.0, 5.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a flat vector and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let expected: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expected,
            "tensor data length {} does not match shape {:?} (expected {})",
            data.len(),
            shape,
            expected
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let len: usize = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        let len: usize = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![1.0; len],
        }
    }

    /// Creates a tensor filled with a constant value.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let len: usize = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![value; len],
        }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data in row-major order.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a tensor with the same data but a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different number of elements.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(self.data.clone(), shape)
    }

    /// Element access for 2-D tensors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the indices are out of bounds.
    pub fn at2(&self, row: usize, col: usize) -> f32 {
        assert_eq!(self.shape.len(), 2, "at2 requires a 2-D tensor");
        let cols = self.shape[1];
        self.data[row * cols + col]
    }

    /// Mutable element access for 2-D tensors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the indices are out of bounds.
    pub fn at2_mut(&mut self, row: usize, col: usize) -> &mut f32 {
        assert_eq!(self.shape.len(), 2, "at2_mut requires a 2-D tensor");
        let cols = self.shape[1];
        &mut self.data[row * cols + col]
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) multiplication.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, factor: f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|v| v * factor).collect(),
        }
    }

    /// Applies a function to every element.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// `out = self + factor · other`, written into a caller-owned scratch
    /// tensor (no allocation when `out` already has capacity).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled_into(&self, other: &Tensor, factor: f32, out: &mut Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "add_scaled_into shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        out.resize_for(&self.shape.clone());
        crate::kernels::add_scaled(&self.data, &other.data, factor, &mut out.data);
    }

    /// Overwrites every element with `value`, keeping the allocation.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Makes this tensor a copy of `other`, reusing the existing allocation
    /// when it is large enough (the workhorse of layer input caching).
    pub fn copy_from(&mut self, other: &Tensor) {
        self.resize_for(&other.shape.clone());
        self.data.copy_from_slice(&other.data);
    }

    /// Reshapes in place to `shape`, growing or shrinking the data buffer but
    /// keeping its allocation where possible. Contents are unspecified after
    /// the call; callers overwrite them.
    pub fn resize_for(&mut self, shape: &[usize]) {
        let len: usize = shape.iter().product();
        if self.shape != shape {
            self.shape.clear();
            self.shape.extend_from_slice(shape);
        }
        self.data.resize(len, 0.0);
    }

    /// In-place element-wise addition of `other * factor`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled_inplace(&mut self, other: &Tensor, factor: f32) {
        assert_eq!(
            self.shape, other.shape,
            "add_scaled_inplace shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b * factor;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// L2 norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Matrix multiplication of two 2-D tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// Runs the blocked, parallel kernel of [`crate::kernels`]; see
    /// [`Tensor::matmul_into`] for the allocation-free variant.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D or the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.matmul_into(other, &mut out);
        out
    }

    /// `out = self · other`, reusing `out`'s allocation when large enough.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D or the inner dimensions disagree.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(self.shape.len(), 2, "matmul requires 2-D tensors (lhs)");
        assert_eq!(other.shape.len(), 2, "matmul requires 2-D tensors (rhs)");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(
            k, k2,
            "matmul inner dimension mismatch: [{m}, {k}] x [{k2}, {n}]"
        );
        out.resize_for(&[m, n]);
        crate::kernels::matmul(&self.data, &other.data, &mut out.data, m, k, n);
    }

    /// `out = selfᵀ · other` for `self: [k, m]`, `other: [k, n]`, without
    /// materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D or the shared dimension disagrees.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        let (m, n) = self.check_tn(other);
        out.resize_for(&[m, n]);
        out.fill(0.0);
        crate::kernels::matmul_tn_acc(&self.data, &other.data, &mut out.data, m, self.shape[0], n);
        out
    }

    /// `out += selfᵀ · other` — the fused weight-gradient update, accumulating
    /// into a caller-owned gradient tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or `out` is not `[m, n]`.
    pub fn matmul_tn_acc_into(&self, other: &Tensor, out: &mut Tensor) {
        let (m, n) = self.check_tn(other);
        assert_eq!(
            out.shape,
            [m, n],
            "matmul_tn_acc_into output must be [{m}, {n}]"
        );
        crate::kernels::matmul_tn_acc(&self.data, &other.data, &mut out.data, m, self.shape[0], n);
    }

    fn check_tn(&self, other: &Tensor) -> (usize, usize) {
        assert_eq!(self.shape.len(), 2, "matmul_tn requires 2-D tensors (lhs)");
        assert_eq!(other.shape.len(), 2, "matmul_tn requires 2-D tensors (rhs)");
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(
            k, k2,
            "matmul_tn shared dimension mismatch: [{k}, {m}]ᵀ x [{k2}, {n}]"
        );
        (m, n)
    }

    /// `self · otherᵀ` for `self: [m, k]`, `other: [n, k]`, without
    /// materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D or the shared dimension disagrees.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// `out = self · otherᵀ`, reusing `out`'s allocation when large enough.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D or the shared dimension disagrees.
    pub fn matmul_nt_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(self.shape.len(), 2, "matmul_nt requires 2-D tensors (lhs)");
        assert_eq!(other.shape.len(), 2, "matmul_nt requires 2-D tensors (rhs)");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(
            k, k2,
            "matmul_nt shared dimension mismatch: [{m}, {k}] x [{n}, {k2}]ᵀ"
        );
        out.resize_for(&[m, n]);
        crate::kernels::matmul_nt(&self.data, &other.data, &mut out.data, m, k, n);
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose requires a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Sums a 2-D tensor over its rows, producing a `[cols]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "sum_rows requires a 2-D tensor");
        let n = self.shape[1];
        if n == 0 {
            return Tensor::zeros(&[0]);
        }
        let mut out = vec![0.0f32; n];
        for row in self.data.chunks_exact(n) {
            for (o, &v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        Tensor::from_vec(out, &[n])
    }

    /// Extracts row `i` of a 2-D tensor as a `[cols]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `i` is out of bounds.
    pub fn row(&self, i: usize) -> Tensor {
        assert_eq!(self.shape.len(), 2, "row requires a 2-D tensor");
        let n = self.shape[1];
        Tensor::from_vec(self.data[i * n..(i + 1) * n].to_vec(), &[n])
    }

    /// Stacks 1-D tensors of equal length into a 2-D `[rows, cols]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have different lengths.
    pub fn stack_rows(rows: &[Tensor]) -> Tensor {
        assert!(!rows.is_empty(), "stack_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "stack_rows rows must have equal length");
            data.extend_from_slice(r.data());
        }
        Tensor::from_vec(data, &[rows.len(), cols])
    }

    /// Index of the maximum element of each row of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.len(), 2, "argmax_rows requires a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        assert!(n > 0, "argmax_rows requires at least one column");
        (0..m)
            .map(|i| {
                let row = &self.data[i * n..(i + 1) * n];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(idx, _)| idx)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Indices of the `k` largest elements of each row, in descending order.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn topk_rows(&self, k: usize) -> Vec<Vec<usize>> {
        assert_eq!(self.shape.len(), 2, "topk_rows requires a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        (0..m)
            .map(|i| {
                let row = &self.data[i * n..(i + 1) * n];
                let mut idx: Vec<usize> = (0..n).collect();
                idx.sort_by(|&a, &b| {
                    row[b]
                        .partial_cmp(&row[a])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                idx.truncate(k);
                idx
            })
            .collect()
    }

    fn zip_with<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "element-wise op shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.at2(1, 2), 6.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_wrong_len_panics() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full(&[3], 2.5).sum(), 7.5);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn add_scaled_inplace_matches_add_scale() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        a.add_scaled_inplace(&b, 0.5);
        assert_eq!(a.data(), &[2.5, 4.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let id = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn sum_rows_and_row() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.sum_rows().data(), &[4.0, 6.0]);
        assert_eq!(a.row(1).data(), &[3.0, 4.0]);
    }

    #[test]
    fn argmax_and_topk() {
        let a = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.7, 0.2, 0.1], &[2, 3]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
        let topk = a.topk_rows(2);
        assert_eq!(topk[0], vec![1, 0]);
        assert_eq!(topk[1], vec![0, 1]);
    }

    #[test]
    fn stack_rows_builds_matrix() {
        let rows = vec![
            Tensor::from_vec(vec![1.0, 2.0], &[2]),
            Tensor::from_vec(vec![3.0, 4.0], &[2]),
        ];
        let m = Tensor::stack_rows(&rows);
        assert_eq!(m.shape(), &[2, 2]);
        assert_eq!(m.at2(1, 0), 3.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]);
        let b = a.reshape(&[2, 2]);
        assert_eq!(b.shape(), &[2, 2]);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    fn mean_and_norm() {
        let a = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert!((a.mean() - 3.5).abs() < 1e-6);
        assert!((a.l2_norm() - 5.0).abs() < 1e-6);
        assert_eq!(Tensor::zeros(&[0]).mean(), 0.0);
    }

    proptest! {
        #[test]
        fn prop_add_commutative(data in proptest::collection::vec(-100.0f32..100.0, 1..64)) {
            let n = data.len();
            let a = Tensor::from_vec(data.clone(), &[n]);
            let b = Tensor::from_vec(data.iter().rev().cloned().collect(), &[n]);
            prop_assert_eq!(a.add(&b), b.add(&a));
        }

        #[test]
        fn prop_scale_linear(data in proptest::collection::vec(-10.0f32..10.0, 1..32), k in -5.0f32..5.0) {
            let n = data.len();
            let a = Tensor::from_vec(data, &[n]);
            let direct = a.scale(2.0 * k);
            let composed = a.scale(k).scale(2.0);
            for (x, y) in direct.data().iter().zip(composed.data().iter()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }

        #[test]
        fn prop_matmul_identity(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let a = Tensor::from_vec(data, &[rows, cols]);
            let mut id = Tensor::zeros(&[cols, cols]);
            for i in 0..cols { *id.at2_mut(i, i) = 1.0; }
            let b = a.matmul(&id);
            for (x, y) in a.data().iter().zip(b.data().iter()) {
                prop_assert!((x - y).abs() < 1e-5);
            }
        }

        #[test]
        fn prop_transpose_involution(rows in 1usize..8, cols in 1usize..8) {
            let data: Vec<f32> = (0..rows * cols).map(|i| i as f32).collect();
            let a = Tensor::from_vec(data, &[rows, cols]);
            prop_assert_eq!(a.transpose().transpose(), a);
        }

        #[test]
        fn prop_matmul_matches_naive_reference(m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..200) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = Tensor::from_vec((0..m * k).map(|_| rng.gen_range(-2.0..2.0)).collect(), &[m, k]);
            let b = Tensor::from_vec((0..k * n).map(|_| rng.gen_range(-2.0..2.0)).collect(), &[k, n]);
            let fast = a.matmul(&b);
            let mut reference = vec![0.0f32; m * n];
            crate::kernels::matmul_naive(a.data(), b.data(), &mut reference, m, k, n);
            for (x, y) in fast.data().iter().zip(reference.iter()) {
                prop_assert!((x - y).abs() < 1e-5, "{x} vs {y}");
            }
        }

        #[test]
        fn prop_matmul_tn_matches_explicit_transpose(m in 1usize..16, k in 1usize..16, n in 1usize..16, seed in 0u64..200) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = Tensor::from_vec((0..k * m).map(|_| rng.gen_range(-2.0..2.0)).collect(), &[k, m]);
            let b = Tensor::from_vec((0..k * n).map(|_| rng.gen_range(-2.0..2.0)).collect(), &[k, n]);
            let fused = a.matmul_tn(&b);
            let explicit = a.transpose().matmul(&b);
            prop_assert_eq!(fused.shape(), explicit.shape());
            for (x, y) in fused.data().iter().zip(explicit.data().iter()) {
                prop_assert!((x - y).abs() < 1e-5, "{x} vs {y}");
            }
        }

        #[test]
        fn prop_matmul_nt_matches_explicit_transpose(m in 1usize..16, k in 1usize..16, n in 1usize..16, seed in 0u64..200) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = Tensor::from_vec((0..m * k).map(|_| rng.gen_range(-2.0..2.0)).collect(), &[m, k]);
            let b = Tensor::from_vec((0..n * k).map(|_| rng.gen_range(-2.0..2.0)).collect(), &[n, k]);
            let fused = a.matmul_nt(&b);
            let explicit = a.matmul(&b.transpose());
            prop_assert_eq!(fused.shape(), explicit.shape());
            for (x, y) in fused.data().iter().zip(explicit.data().iter()) {
                prop_assert!((x - y).abs() < 1e-5, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn matmul_into_reuses_and_overwrites() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let mut out = Tensor::full(&[3, 3], 9.0); // wrong shape, stale contents
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a);
    }

    #[test]
    fn matmul_tn_acc_accumulates() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]); // [k=2, m=1]
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2, 1]); // [k=2, n=1]
        let mut acc = Tensor::full(&[1, 1], 10.0);
        a.matmul_tn_acc_into(&b, &mut acc);
        assert_eq!(acc.data(), &[10.0 + 1.0 * 3.0 + 2.0 * 4.0]);
    }

    #[test]
    fn add_scaled_into_scratch() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        let mut out = Tensor::default();
        a.add_scaled_into(&b, 0.5, &mut out);
        assert_eq!(out.data(), &[6.0, 12.0]);
        assert_eq!(out.shape(), &[2]);
    }

    #[test]
    fn copy_from_and_fill_keep_allocation() {
        let big = Tensor::ones(&[8, 8]);
        let mut scratch = Tensor::default();
        scratch.copy_from(&big);
        assert_eq!(scratch, big);
        scratch.fill(0.0);
        assert_eq!(scratch.sum(), 0.0);
        let small = Tensor::from_vec(vec![5.0], &[1, 1]);
        scratch.copy_from(&small);
        assert_eq!(scratch, small);
    }
}
