//! Synthetic-fleet construction: real [`Worker`]s over a shared synthetic
//! dataset, deterministic from the workload seed.
//!
//! The fleet executes real protocol work — sampling mini-batches,
//! computing gradients against the served model — so the server under
//! load does exactly what it does in production, not a mock. Two calls
//! with the same spec build byte-identical fleets.

use crate::schedule::WorkloadSpec;
use fleet_data::partition::non_iid_shards;
use fleet_data::synthetic::{generate, SyntheticSpec};
use fleet_device::profile::catalogue;
use fleet_device::Device;
use fleet_ml::models::mlp_classifier;
use fleet_server::Worker;
use std::sync::Arc;

/// Shape of the model and dataset the fleet trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetShape {
    /// Label classes in the synthetic task.
    pub num_classes: usize,
    /// Input features per example.
    pub feature_dim: usize,
    /// Total examples in the shared dataset.
    pub examples: usize,
}

impl Default for FleetShape {
    fn default() -> Self {
        FleetShape {
            num_classes: 4,
            feature_dim: 6,
            examples: 640,
        }
    }
}

/// The parameters the server must be seeded with so fleet gradients match
/// its model architecture.
pub fn model_parameters(shape: &FleetShape) -> Vec<f32> {
    mlp_classifier(shape.feature_dim, &[8], shape.num_classes, 0).parameters()
}

/// Builds the fleet: `spec.workers` workers over a non-IID partition of
/// one shared synthetic dataset, device profiles cycling through the
/// paper's catalogue.
pub fn build_fleet(spec: &WorkloadSpec, shape: &FleetShape) -> Vec<Worker> {
    // The non-IID partition cuts the dataset into `2 * workers` shards;
    // grow it past the configured floor so every worker holds data.
    let examples = shape.examples.max(spec.workers * 4);
    let dataset = Arc::new(generate(
        &SyntheticSpec::vector(shape.num_classes, shape.feature_dim, examples),
        spec.seed ^ 0x6f6c_6461,
    ));
    let users = non_iid_shards(&dataset, spec.workers, 2, spec.seed ^ 0x7368_6472);
    let profiles = catalogue();
    users
        .into_iter()
        .enumerate()
        .map(|(i, indices)| {
            Worker::new(
                i as u64,
                Device::new(profiles[i % profiles.len()].clone(), spec.seed ^ i as u64),
                Arc::clone(&dataset),
                indices,
                mlp_classifier(shape.feature_dim, &[8], shape.num_classes, 0),
                spec.seed ^ (i as u64).wrapping_add(0x1000),
            )
        })
        .collect()
}
