//! The worker-side blocking client: one socket, automatic reconnects with
//! bounded exponential backoff, idempotent resume.
//!
//! The reconnect loop *is* the worker's [`RetryPolicy`]: each transient
//! failure (refused connect, dropped connection, torn reply) costs one
//! attempt and sleeps `backoff_unit × backoff_rounds(attempt)` before the
//! next try, exactly the deterministic schedule PR 6 defined for overload
//! backoff — mapped onto wall time because sockets live there. When the
//! attempts run out the caller gets [`ClientError::RetriesExhausted`].
//!
//! Resume is idempotent by construction: a retried *request* at worst
//! leaves an orphaned lease on a dead connection (the server reclaims it),
//! and a retried *result* carries its v3 `task_id`, so a crash-restart
//! mid-upload is indistinguishable from a duplicate — the server answers
//! `Applied` to exactly one copy.

use crate::conn::{Endpoint, Stream};
use crate::deadline::DeadlineReader;
use crate::frame::{
    self, decode_status, read_frame, write_frame, FrameError, FrameKind, ServerStatus,
};
use bytes::Bytes;
use fleet_server::protocol::{ResultAck, TaskRequest, TaskResponse, TaskResult};
use fleet_server::wire::{self, WireError};
use fleet_server::RetryPolicy;
use fleet_telemetry::{Counter, Latency, TelemetryHandle};
use std::io;
use std::time::Duration;

/// Configuration of a [`WorkerClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Attempts and backoff schedule for transient transport failures.
    pub retry: RetryPolicy,
    /// Wall-time length of one logical backoff round.
    pub backoff_unit: Duration,
    /// Total wall-clock budget to receive one reply frame.
    pub read_budget: Duration,
    /// Kernel timeout on any single write.
    pub write_timeout: Duration,
    /// Bound on a received frame's declared length.
    pub max_frame_len: usize,
    /// Where client-observed exchange latencies and retry counts are
    /// reported. Disabled by default.
    pub telemetry: TelemetryHandle,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            retry: RetryPolicy::new(),
            backoff_unit: Duration::from_millis(10),
            read_budget: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_frame_len: frame::MAX_FRAME_LEN,
            telemetry: TelemetryHandle::disabled(),
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport retry budget ran out on transient failures.
    RetriesExhausted {
        /// Attempts consumed (the initial try plus retries).
        attempts: u32,
        /// The last transient failure, as text.
        last: String,
    },
    /// The server sent an `Error` frame (protocol violation or malformed
    /// payload on our side); not retried — resending the same bytes would
    /// fail the same way.
    Server(String),
    /// The reply payload failed to decode; not retried.
    Wire(WireError),
    /// The server answered with an unexpected frame kind; not retried.
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s): {last}")
            }
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Wire(err) => write!(f, "undecodable reply: {err}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(err: WireError) -> Self {
        ClientError::Wire(err)
    }
}

/// A transient failure inside one exchange attempt; consumed by the retry
/// loop, never surfaced directly.
#[derive(Debug)]
enum Transient {
    Io(io::Error),
    Frame(FrameError),
}

impl std::fmt::Display for Transient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Transient::Io(err) => write!(f, "{err}"),
            Transient::Frame(err) => write!(f, "{err}"),
        }
    }
}

/// The blocking worker-side client (see the module docs).
#[derive(Debug)]
pub struct WorkerClient {
    endpoint: Endpoint,
    config: ClientConfig,
    stream: Option<Stream>,
}

impl WorkerClient {
    /// A client for `endpoint` with the default [`ClientConfig`]. No
    /// connection is made yet — the first call connects (with retries).
    pub fn new(endpoint: Endpoint) -> Self {
        Self::with_config(endpoint, ClientConfig::default())
    }

    /// A client with an explicit configuration.
    pub fn with_config(endpoint: Endpoint, config: ClientConfig) -> Self {
        WorkerClient {
            endpoint,
            config,
            stream: None,
        }
    }

    /// Drops the current connection (the next call reconnects). Used by
    /// tests to simulate a crash between upload attempts; harmless
    /// otherwise.
    pub fn disconnect(&mut self) {
        if let Some(stream) = self.stream.take() {
            stream.shutdown_both();
        }
    }

    /// Step 1: sends a request, returns the server's response.
    ///
    /// # Errors
    ///
    /// [`ClientError::RetriesExhausted`] after the policy's transient-failure
    /// budget; the non-retriable variants for server-reported or protocol
    /// errors. An `Overloaded` rejection is a *successful* call — backoff
    /// across overloads stays the caller's (the worker loop's) decision,
    /// exactly as in-process.
    pub fn request(&mut self, request: &TaskRequest) -> Result<TaskResponse, ClientError> {
        let raw = wire::encode_request(request).to_vec();
        let reply = self.timed_exchange(
            FrameKind::Request,
            &raw,
            FrameKind::Response,
            Latency::RequestExchange,
        )?;
        Ok(wire::decode_response(Bytes::from(reply))?)
    }

    /// Step 5: uploads a result, returns the ack.
    ///
    /// # Errors
    ///
    /// As [`WorkerClient::request`].
    pub fn submit(&mut self, result: &TaskResult) -> Result<ResultAck, ClientError> {
        let raw = wire::encode_result(result).to_vec();
        self.submit_raw(&raw)
    }

    /// Uploads pre-encoded result bytes — the resume path: a worker that
    /// crashed after encoding (or that never saw its ack) resends the same
    /// bytes, and the v3 `task_id` inside them makes the server deduplicate.
    ///
    /// # Errors
    ///
    /// As [`WorkerClient::request`].
    pub fn submit_raw(&mut self, raw: &[u8]) -> Result<ResultAck, ClientError> {
        let reply = self.timed_exchange(
            FrameKind::Result,
            raw,
            FrameKind::Ack,
            Latency::SubmitExchange,
        )?;
        Ok(wire::decode_ack(Bytes::from(reply))?)
    }

    /// Probes the server's progress.
    ///
    /// # Errors
    ///
    /// As [`WorkerClient::request`].
    pub fn status(&mut self) -> Result<ServerStatus, ClientError> {
        let reply = self.exchange(FrameKind::Status, &[], FrameKind::StatusReply)?;
        decode_status(&reply).map_err(|_| ClientError::Protocol("malformed status reply"))
    }

    /// Asks the server to start draining; returns the status after the flag
    /// was set.
    ///
    /// # Errors
    ///
    /// As [`WorkerClient::request`].
    pub fn request_shutdown(&mut self) -> Result<ServerStatus, ClientError> {
        let reply = self.exchange(FrameKind::Shutdown, &[], FrameKind::StatusReply)?;
        decode_status(&reply).map_err(|_| ClientError::Protocol("malformed status reply"))
    }

    /// An [`WorkerClient::exchange`] with its end-to-end duration (including
    /// reconnects and backoff sleeps — the latency a worker actually
    /// experiences) reported to the configured telemetry sink.
    fn timed_exchange(
        &mut self,
        kind: FrameKind,
        payload: &[u8],
        expect: FrameKind,
        metric: Latency,
    ) -> Result<Vec<u8>, ClientError> {
        let started = self
            .config
            .telemetry
            .get()
            .map(|sink| sink.now_ns())
            .unwrap_or(0);
        let outcome = self.exchange(kind, payload, expect);
        if let Some(sink) = self.config.telemetry.get() {
            sink.record_latency(metric, sink.now_ns().saturating_sub(started));
        }
        outcome
    }

    /// One request/reply exchange with transparent reconnect: transient
    /// failures cost an attempt and a backoff sleep; definitive answers
    /// (including server `Error` frames) return immediately.
    fn exchange(
        &mut self,
        kind: FrameKind,
        payload: &[u8],
        expect: FrameKind,
    ) -> Result<Vec<u8>, ClientError> {
        let mut attempt: u32 = 0;
        loop {
            match self.try_exchange(kind, payload, expect) {
                Ok(Ok(reply)) => return Ok(reply),
                Ok(Err(definitive)) => return Err(definitive),
                Err(transient) => {
                    self.disconnect();
                    match self.config.retry.backoff_rounds(attempt) {
                        Some(rounds) => {
                            if let Some(sink) = self.config.telemetry.get() {
                                sink.add(Counter::Retries, 1);
                            }
                            std::thread::sleep(saturating_mul(self.config.backoff_unit, rounds));
                            attempt += 1;
                        }
                        None => {
                            return Err(ClientError::RetriesExhausted {
                                attempts: attempt + 1,
                                last: transient.to_string(),
                            })
                        }
                    }
                }
            }
        }
    }

    /// A single attempt. The outer `Err` is transient (retry); the inner
    /// `Err` is definitive (surface to the caller).
    fn try_exchange(
        &mut self,
        kind: FrameKind,
        payload: &[u8],
        expect: FrameKind,
    ) -> Result<Result<Vec<u8>, ClientError>, Transient> {
        if self.stream.is_none() {
            let stream = Stream::connect(&self.endpoint).map_err(Transient::Io)?;
            let _ = stream.set_write_timeout(Some(self.config.write_timeout));
            self.stream = Some(stream);
        }
        let stream = self.stream.as_mut().expect("connected above");
        write_frame(stream, kind, payload).map_err(Transient::Io)?;
        let (reply_kind, reply) = {
            let mut reader = DeadlineReader::new(stream, self.config.read_budget);
            read_frame(&mut reader, self.config.max_frame_len).map_err(Transient::Frame)?
        };
        if reply_kind == expect {
            return Ok(Ok(reply));
        }
        if reply_kind == FrameKind::Error {
            return Ok(Err(ClientError::Server(
                String::from_utf8_lossy(&reply).into_owned(),
            )));
        }
        Ok(Err(ClientError::Protocol("unexpected reply frame kind")))
    }
}

fn saturating_mul(unit: Duration, rounds: u64) -> Duration {
    unit.checked_mul(u32::try_from(rounds).unwrap_or(u32::MAX))
        .unwrap_or(Duration::MAX)
}
