// Fixture: a symmetric journal-record codec — every field of
// `JournalRecord` appears in both the encode and decode paths. Expect zero
// findings.

pub struct JournalRecord {
    pub seq: u64,
    pub kind: u8,
    pub payload: Vec<u8>,
}

pub fn encode_journal_record(r: &JournalRecord, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&r.seq.to_le_bytes());
    buf.push(r.kind);
    buf.extend_from_slice(&(r.payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(&r.payload);
}

pub fn decode_journal_record(buf: &[u8]) -> Result<JournalRecord, String> {
    let seq = u64::from_le_bytes(buf[0..8].try_into().map_err(|_| "short")?);
    let kind = buf[8];
    let len = u64::from_le_bytes(buf[9..17].try_into().map_err(|_| "short")?) as usize;
    let payload = buf[17..17 + len].to_vec();
    Ok(JournalRecord { seq, kind, payload })
}
