//! Reproducibility of the parallel simulation engine.
//!
//! `AsyncSimulation::run` fans each aggregation round's K worker gradients
//! out across threads, and the sharded `ParameterServer` fans aggregation
//! itself out across range-partitioned shards; these tests pin the thread
//! count above one (so the parallel path runs even on single-core CI) and
//! assert that repeated runs with one seed are bit-for-bit identical —
//! histories, scaling factors and final model parameters — and that the
//! digest is independent of the shard count ({1, 2, 8} swept in-process).
//! Cross-thread-count equality holds by construction (contiguous-range
//! splitting with fixed-order accumulation; see the `fleet_parallel` module
//! docs), and cross-ISA equality holds because both kernel dispatch paths
//! fuse each multiply-add identically (see `fleet_ml::kernels`). To sweep
//! both explicitly, run this binary under `FLEET_NUM_THREADS=1/4/7` ×
//! `FLEET_SIMD=auto/off` — the env vars then win over the default pin — and
//! compare the digest that `shard_sweep_digests_are_identical` prints;
//! `scripts/ci.sh` automates the six-way sweep and fails on any divergence.

use fleet_core::{AdaSgd, FedAvg};
use fleet_server::{
    ApplyMode, AsyncSimulation, FaultPlan, SimulationConfig, StalenessDistribution,
};
use fleet_tests::{small_model, small_world};

/// Forces the parallel path (even on single-core CI) before the thread count
/// is cached, unless the caller swept it via `FLEET_NUM_THREADS`. First
/// caller wins; every test in this binary pins the same value, so ordering
/// cannot change the configuration. Programmatic override rather than
/// `std::env::set_var`, which is unsound with tests running on concurrent
/// threads.
fn pin_threads() {
    // Mirror max_threads' own validation: only a positive integer counts as
    // a sweep; a malformed value must not silently drop the forced-parallel
    // pin these tests exist for.
    let swept = std::env::var("FLEET_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .is_some_and(|n| n > 0);
    if !swept {
        fleet_parallel::set_max_threads(4);
    }
}

fn config(k: usize, dp: Option<(f32, f32)>) -> SimulationConfig {
    let mut builder = SimulationConfig::builder()
        .steps(40)
        .aggregation_k(k)
        .batch_size(25)
        .staleness(StalenessDistribution::d1())
        .eval_every(10)
        .eval_examples(150)
        .seed(17);
    if let Some((clip_norm, noise_multiplier)) = dp {
        builder = builder.dp(clip_norm, noise_multiplier);
    }
    builder.build().expect("determinism config is valid")
}

#[test]
fn parallel_runs_with_same_seed_are_bitwise_identical() {
    pin_threads();
    let (train, test, users) = small_world(800, 12, 5);
    let sim = AsyncSimulation::new(&train, &test, &users, config(4, None));

    let mut model_a = small_model(2);
    let mut model_b = small_model(2);
    let history_a = sim.run(&mut model_a, AdaSgd::new(10, 99.7));
    let history_b = sim.run(&mut model_b, AdaSgd::new(10, 99.7));

    assert_eq!(history_a, history_b);
    assert_eq!(model_a.parameters(), model_b.parameters());
    assert_eq!(history_a.scaling_factors.len(), 40 * 4);
}

#[test]
fn parallel_dp_runs_replay_their_noise() {
    pin_threads();
    let (train, test, users) = small_world(800, 12, 5);
    let sim = AsyncSimulation::new(&train, &test, &users, config(3, Some((1.0, 0.3))));

    let mut model_a = small_model(3);
    let mut model_b = small_model(3);
    assert_eq!(
        sim.run(&mut model_a, FedAvg::new()),
        sim.run(&mut model_b, FedAvg::new())
    );
    assert_eq!(model_a.parameters(), model_b.parameters());
}

/// FNV-1a over the parameter bit patterns: equal digests mean bit-for-bit
/// equal models.
fn digest(params: &[f32]) -> u64 {
    params.iter().fold(0xcbf29ce484222325u64, |h, p| {
        (h ^ u64::from(p.to_bits())).wrapping_mul(0x100000001b3)
    })
}

#[test]
fn shard_sweep_digests_are_identical() {
    pin_threads();
    let (train, test, users) = small_world(800, 12, 5);
    let mut runs = Vec::new();
    for shards in [1usize, 2, 8] {
        let mut cfg = config(4, None);
        cfg.core.shards = shards;
        let sim = AsyncSimulation::new(&train, &test, &users, cfg);
        let mut model = small_model(2);
        let history = sim.run(&mut model, AdaSgd::new(10, 99.7));
        runs.push((shards, digest(&model.parameters()), history));
    }
    // One line for the cross-process thread sweep: run this binary under
    // FLEET_NUM_THREADS=1/4/7 with --nocapture and compare.
    println!(
        "shard-sweep digest: {:#018x} (threads={})",
        runs[0].1,
        fleet_parallel::max_threads()
    );
    for run in &runs[1..] {
        assert_eq!(runs[0].1, run.1, "digest diverged at {} shards", run.0);
        assert_eq!(runs[0].2, run.2, "history diverged at {} shards", run.0);
    }
}

#[test]
fn per_shard_digest_is_stable() {
    pin_threads();
    // The asynchronous per-shard apply mode: 4 shards advancing on
    // independent triggers (the scripted flush schedule diverges the vector
    // clock every other round), with per-shard staleness attribution flowing
    // through the v2 wire codec. Unlike lockstep, the shard count is part of
    // the semantics here, so the digest is pinned for this *fixed* config
    // and must be identical across threads and SIMD paths only —
    // `scripts/ci.sh` sweeps FLEET_NUM_THREADS=1/4/7 x FLEET_SIMD=auto/off
    // and compares the digest this test prints against the pinned value in
    // scripts/expected_digests.txt.
    let (train, test, users) = small_world(800, 12, 5);
    let make = |mode: ApplyMode, flush_every: usize| {
        let mut cfg = config(4, None);
        cfg.core.shards = 4;
        cfg.core.apply_mode = mode;
        cfg.flush_every = flush_every;
        let sim = AsyncSimulation::new(&train, &test, &users, cfg);
        let mut model = small_model(2);
        let history = sim.run(&mut model, AdaSgd::new(10, 99.7));
        (digest(&model.parameters()), history)
    };
    let (first, history_a) = make(ApplyMode::PerShard, 2);
    println!(
        "pershard digest: {first:#018x} (threads={})",
        fleet_parallel::max_threads()
    );
    let (second, history_b) = make(ApplyMode::PerShard, 2);
    assert_eq!(first, second, "per-shard runs with one seed diverged");
    assert_eq!(history_a, history_b);
    // The flush schedule must actually diverge the trajectory from lockstep
    // — otherwise the mode under test silently degenerated to lockstep.
    let (lockstep, _) = make(ApplyMode::Lockstep, 0);
    assert_ne!(
        first, lockstep,
        "per-shard digest must differ from lockstep"
    );
}

#[test]
fn chaos_digests_are_stable() {
    pin_threads();
    // The fault-injection harness joins the determinism contract: a seeded
    // chaos plan (10% dropped requests, 10% dropped results, 5% duplicates,
    // 5% three-round stragglers, one crash-restart) must be bit-stable for a
    // fixed seed — across repeated runs in-process here, and across
    // FLEET_NUM_THREADS=1/4/7 x FLEET_SIMD=auto/off via the digest lines
    // `scripts/ci.sh` compares against scripts/expected_digests.txt. Fault
    // decisions are stateless hashes of (seed, round, worker), so the chaos
    // trajectory is a pure function of the config.
    let (train, test, users) = small_world(800, 12, 5);
    let make = |mode: ApplyMode, fault_seed: u64| {
        let mut cfg = config(4, None);
        cfg.faults = FaultPlan::chaos(fault_seed);
        cfg.core.apply_mode = mode;
        if mode == ApplyMode::PerShard {
            cfg.core.shards = 4;
            cfg.flush_every = 2;
        }
        let sim = AsyncSimulation::new(&train, &test, &users, cfg);
        let mut model = small_model(2);
        let history = sim.run(&mut model, AdaSgd::new(10, 99.7));
        (digest(&model.parameters()), history)
    };

    // The fault-free reference the chaos runs must diverge from.
    let clean = {
        let sim = AsyncSimulation::new(&train, &test, &users, config(4, None));
        let mut model = small_model(2);
        sim.run(&mut model, AdaSgd::new(10, 99.7));
        digest(&model.parameters())
    };

    for (name, mode, fault_seed) in [
        ("chaos-l1", ApplyMode::Lockstep, 1u64),
        ("chaos-p1", ApplyMode::PerShard, 1),
        ("chaos-l2", ApplyMode::Lockstep, 2),
        ("chaos-p2", ApplyMode::PerShard, 2),
    ] {
        let (first, history_a) = make(mode, fault_seed);
        println!(
            "{name} digest: {first:#018x} (threads={})",
            fleet_parallel::max_threads()
        );
        let (second, history_b) = make(mode, fault_seed);
        assert_eq!(first, second, "{name}: chaos runs with one seed diverged");
        assert_eq!(history_a, history_b);
        assert_ne!(first, clean, "{name}: the fault plan must perturb the run");
        // The plan must actually have fired — otherwise the digest pins a
        // silently fault-free run.
        let stats = history_a.faults;
        assert!(stats.dropped_requests > 0, "{name}: {stats:?}");
        assert!(stats.dropped_results > 0, "{name}: {stats:?}");
        assert!(stats.duplicates_rejected > 0, "{name}: {stats:?}");
        assert!(stats.delayed_delivered > 0, "{name}: {stats:?}");
    }
}

#[test]
fn checkpoint_restart_reproduces_the_digest() {
    pin_threads();
    // Crash-restart recovery, digest-level: stop a chaos-perturbed per-shard
    // run at a flush boundary, rebuild the engine from the checkpoint (fresh
    // model, fresh aggregator), and the resumed run's final digest must equal
    // the uninterrupted run's.
    let (train, test, users) = small_world(800, 12, 5);
    let mut cfg = config(4, None);
    cfg.core.shards = 4;
    cfg.core.apply_mode = ApplyMode::PerShard;
    cfg.flush_every = 2;
    cfg.faults = FaultPlan::chaos(1);
    let sim = AsyncSimulation::new(&train, &test, &users, cfg);

    let mut uninterrupted = small_model(2);
    let reference = sim.run(&mut uninterrupted, AdaSgd::new(10, 99.7));

    let mut model = small_model(2);
    let checkpoint = sim.run_until(&mut model, AdaSgd::new(10, 99.7), 20);
    let mut restored = small_model(9);
    let resumed = sim.resume(&mut restored, AdaSgd::new(10, 99.7), &checkpoint);

    assert_eq!(
        digest(&restored.parameters()),
        digest(&uninterrupted.parameters()),
        "the resumed run must reproduce the uninterrupted digest"
    );
    assert_eq!(resumed, reference);
}

#[test]
fn cnn_training_digest_is_stable() {
    pin_threads();
    // A small CNN training loop (conv + pool + dense, forward and backward)
    // so the im2col convolution path joins the cross-thread/SIMD
    // bit-stability contract: `scripts/ci.sh` reruns this binary under
    // FLEET_NUM_THREADS=1/4/7 x FLEET_SIMD=auto/off and compares the digest
    // this test prints. The batch is sized so the conv layer's per-image
    // fan-out crosses its work threshold (64 images x 8 filters x 9 weights
    // x 196 positions ≈ 0.9M fused multiply-adds per forward), exercising
    // the batch-parallel lowering/GEMM/scatter phases, not just the serial
    // path.
    use fleet_ml::models::small_cnn;
    use fleet_ml::tensor::Tensor;
    let (batch, size, classes) = (64usize, 16usize, 10usize);
    let x = Tensor::from_vec(
        (0..batch * size * size)
            .map(|i| (i as f32 * 0.013).sin())
            .collect(),
        &[batch, 1, size, size],
    );
    let labels: Vec<usize> = (0..batch).map(|i| i % classes).collect();
    let train = || {
        let mut model = small_cnn(1, size, classes, 7);
        for _ in 0..4 {
            let (_, grad) = model.compute_gradient(&x, &labels).unwrap();
            model.apply_gradient(&grad, 0.05).unwrap();
        }
        digest(&model.parameters())
    };
    let first = train();
    println!(
        "cnn-train digest: {first:#018x} (threads={})",
        fleet_parallel::max_threads()
    );
    assert_eq!(first, train(), "repeated CNN training runs diverged");
}

#[test]
fn parallel_large_kernels_are_reproducible() {
    pin_threads();
    // 256-cubed crosses the kernels' parallel threshold, so the row fan-out
    // is exercised directly.
    use fleet_ml::tensor::Tensor;
    let a = Tensor::from_vec(
        (0..256 * 256).map(|i| (i as f32 * 0.001).sin()).collect(),
        &[256, 256],
    );
    let b = Tensor::from_vec(
        (0..256 * 256).map(|i| (i as f32 * 0.002).cos()).collect(),
        &[256, 256],
    );
    assert_eq!(a.matmul(&b), a.matmul(&b));
    assert_eq!(a.matmul_tn(&b), a.matmul_tn(&b));
    assert_eq!(a.matmul_nt(&b), a.matmul_nt(&b));
}
