//! Figure 14: FLeet's static big-cores-only allocation vs CALOREE trained on
//! the same device (the ideal setup for CALOREE), with the CALOREE deadline
//! set to 1x and 2x the FLeet computation time. The metric is energy per
//! learning task.

use crate::experiments::common::profiler_training_profiles;
use crate::{ExperimentWriter, Scale};
use fleet_device::caloree::Caloree;
use fleet_device::profile::lab_device_set;
use fleet_device::Device;
use fleet_profiler::training::{collect_calibration, pretrained_iprof};
use fleet_profiler::{Slo, WorkloadProfiler};

/// Runs the resource-allocation comparison on the 5 lab devices.
pub fn run(scale: Scale) {
    let mut out = ExperimentWriter::new("fig14_resource_allocation");
    out.comment("Figure 14: energy per task — FLeet allocation vs CALOREE (same-device training)");
    let repeats = scale.pick(3, 10);

    // The workload size per device is what I-Prof proposes for the 3 s SLO.
    let slo = Slo::paper_latency_default();
    let calibration = collect_calibration(&profiler_training_profiles(), slo, 8, 40, 404);
    let mut iprof = pretrained_iprof(slo, &calibration);

    out.row("device,batch_size,fleet_energy_pct,caloree_energy_pct,caloree_2x_deadline_energy_pct");
    for (i, profile) in lab_device_set().into_iter().enumerate() {
        let mut device = Device::new(profile.clone(), 600 + i as u64);
        // Let I-Prof converge on this device with a few observation rounds.
        let mut batch = 0usize;
        for _ in 0..4 {
            let features = device.features();
            batch = iprof.predict(&profile.name, &features);
            let exec = device.execute_task(batch);
            iprof.observe(
                &profile.name,
                &features,
                batch,
                exec.computation_seconds,
                exec.energy_pct,
            );
            device.idle(300.0);
        }
        // CALOREE trained on this same device (its ideal conditions).
        let caloree = Caloree::trained_on(&mut device, 500);

        let mut fleet_energy = 0.0;
        let mut caloree_energy = 0.0;
        let mut caloree_2x_energy = 0.0;
        let mut deadline = 0.0;
        for _ in 0..repeats {
            device.recharge();
            device.idle(1e4);
            let fleet_exec = device.execute_task(batch);
            fleet_energy += fleet_exec.energy_pct;
            deadline = fleet_exec.computation_seconds;

            device.recharge();
            device.idle(1e4);
            caloree_energy += caloree.run(&mut device, batch, deadline).energy_pct;

            device.recharge();
            device.idle(1e4);
            caloree_2x_energy += caloree.run(&mut device, batch, 2.0 * deadline).energy_pct;
        }
        let n = repeats as f32;
        out.row(format!(
            "{},{batch},{:.5},{:.5},{:.5}",
            profile.name,
            fleet_energy / n,
            caloree_energy / n,
            caloree_2x_energy / n
        ));
        out.comment(format!(
            "{}: FLeet deadline reference {:.2} s",
            profile.name, deadline
        ));
    }
    out.finish();
}
