//! The write-ahead journal file layer: a CRC-sealed header naming the
//! generation the journal extends, followed by CRC-framed, length-prefixed
//! record frames.
//!
//! File layout:
//!
//! ```text
//! [8B magic "FLTWAL\0\0"] [u8 version] [u64 generation LE] [u32 crc of the 17 header bytes]
//! repeated: [u32 body_len LE] [body = codec::encode_record output] [u32 crc32(body) LE]
//! ```
//!
//! A crash can tear the file anywhere. The reader treats the first frame
//! that is short, oversized, CRC-broken or undecodable as the end of the
//! journal and reports the byte offset of the last *good* frame, so the
//! writer can reopen the file truncated to that offset and keep appending —
//! a torn tail costs the unacknowledged suffix, never the whole file.

use crate::codec::{decode_record, encode_record, JournalRecord, MAX_PAYLOAD_LEN};
use crate::crc::crc32;
use crate::FsyncPolicy;
use bytes::Bytes;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

/// Journal file format version.
pub const JOURNAL_VERSION: u8 = 1;

/// Magic prefix of a journal file.
pub const JOURNAL_MAGIC: [u8; 8] = *b"FLTWAL\0\0";

const HEADER_LEN: usize = 8 + 1 + 8 + 4;

/// Frames longer than a record body could ever legitimately be (version +
/// seq + kind + len prefix + max payload).
const MAX_FRAME_BODY: usize = 1 + 8 + 1 + 4 + MAX_PAYLOAD_LEN;

fn header_bytes(generation: u64) -> [u8; HEADER_LEN] {
    let mut header = [0u8; HEADER_LEN];
    header[..8].copy_from_slice(&JOURNAL_MAGIC);
    header[8] = JOURNAL_VERSION;
    header[9..17].copy_from_slice(&generation.to_le_bytes());
    let crc = crc32(&header[..17]);
    header[17..21].copy_from_slice(&crc.to_le_bytes());
    header
}

/// Appends record frames to one journal file.
pub struct JournalWriter {
    file: File,
    fsync: FsyncPolicy,
}

impl JournalWriter {
    /// Creates a fresh journal for `generation`, truncating any existing
    /// file at `path`, and writes the sealed header.
    pub fn create(path: &Path, generation: u64, fsync: FsyncPolicy) -> io::Result<JournalWriter> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&header_bytes(generation))?;
        if !matches!(fsync, FsyncPolicy::Never) {
            file.sync_data()?;
        }
        Ok(JournalWriter { file, fsync })
    }

    /// Reopens an existing journal for appending, first truncating it to
    /// `valid_len` (the last good offset reported by [`read_journal`]) so a
    /// torn tail is physically discarded before new frames land after it.
    pub fn reopen(path: &Path, valid_len: u64, fsync: FsyncPolicy) -> io::Result<JournalWriter> {
        let file = OpenOptions::new().write(true).read(true).open(path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        use std::io::Seek;
        file.seek(io::SeekFrom::End(0))?;
        Ok(JournalWriter { file, fsync })
    }

    /// Appends one record frame. With [`FsyncPolicy::EveryRecord`] the frame
    /// is on stable storage when this returns; otherwise the kernel owns it
    /// (still crash-proof against process death).
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        let body = encode_record(record);
        let body = body.to_vec();
        let mut frame = Vec::with_capacity(4 + body.len() + 4);
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&body);
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        self.file.write_all(&frame)?;
        if matches!(self.fsync, FsyncPolicy::EveryRecord) {
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// Flushes the journal to stable storage regardless of policy (used when
    /// a checkpoint rotates this journal out).
    pub fn sync(&mut self) -> io::Result<()> {
        if matches!(self.fsync, FsyncPolicy::Never) {
            return Ok(());
        }
        self.file.sync_data()
    }
}

/// What [`read_journal`] recovered from one journal file.
pub struct ReadJournal {
    /// The generation named in the (valid) header.
    pub generation: u64,
    /// Every record up to the first torn/corrupt frame, in file order.
    pub records: Vec<JournalRecord>,
    /// Byte offset just past the last good frame — the length to truncate
    /// to before appending again.
    pub valid_len: u64,
}

/// Reads a journal file, tolerating a torn tail.
///
/// Returns `None` when the file is missing, shorter than a header, or the
/// header itself fails its magic/version/CRC checks — such a file carries no
/// usable history at all. Otherwise every cleanly framed record before the
/// first tear is returned; the tear itself (short frame, oversized length,
/// CRC mismatch, undecodable body) just ends the journal early.
pub fn read_journal(path: &Path) -> Option<ReadJournal> {
    let mut raw = Vec::new();
    File::open(path).ok()?.read_to_end(&mut raw).ok()?;
    if raw.len() < HEADER_LEN || raw[..8] != JOURNAL_MAGIC || raw[8] != JOURNAL_VERSION {
        return None;
    }
    let header_crc = u32::from_le_bytes(raw[17..21].try_into().expect("4-byte header crc"));
    if crc32(&raw[..17]) != header_crc {
        return None;
    }
    let generation = u64::from_le_bytes(raw[9..17].try_into().expect("8-byte generation"));

    let mut records = Vec::new();
    let mut offset = HEADER_LEN;
    loop {
        if raw.len() - offset < 4 {
            break;
        }
        let body_len =
            u32::from_le_bytes(raw[offset..offset + 4].try_into().expect("4-byte len")) as usize;
        if body_len > MAX_FRAME_BODY || raw.len() - offset - 4 < body_len + 4 {
            break;
        }
        let body = &raw[offset + 4..offset + 4 + body_len];
        let crc_at = offset + 4 + body_len;
        let frame_crc = u32::from_le_bytes(raw[crc_at..crc_at + 4].try_into().expect("4-byte crc"));
        if crc32(body) != frame_crc {
            break;
        }
        match decode_record(Bytes::from(body.to_vec())) {
            Ok(record) => records.push(record),
            Err(_) => break,
        }
        offset = crc_at + 4;
    }
    Some(ReadJournal {
        generation,
        records,
        valid_len: offset as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::EventKind;

    fn record(seq: u64) -> JournalRecord {
        JournalRecord {
            seq,
            kind: EventKind::Request,
            payload: Bytes::from(vec![seq as u8; 3 + seq as usize % 5]),
        }
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fleet-journal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn roundtrips_and_reopens() {
        let path = scratch("roundtrip");
        let mut writer = JournalWriter::create(&path, 3, FsyncPolicy::Never).unwrap();
        for seq in 1..=4 {
            writer.append(&record(seq)).unwrap();
        }
        drop(writer);
        let read = read_journal(&path).unwrap();
        assert_eq!(read.generation, 3);
        assert_eq!(read.records, (1..=4).map(record).collect::<Vec<_>>());

        let mut writer = JournalWriter::reopen(&path, read.valid_len, FsyncPolicy::Never).unwrap();
        writer.append(&record(5)).unwrap();
        drop(writer);
        let read = read_journal(&path).unwrap();
        assert_eq!(read.records.len(), 5);
    }

    #[test]
    fn every_truncation_yields_a_valid_prefix() {
        let path = scratch("truncate");
        let mut writer = JournalWriter::create(&path, 1, FsyncPolicy::Never).unwrap();
        for seq in 1..=3 {
            writer.append(&record(seq)).unwrap();
        }
        drop(writer);
        let full = std::fs::read(&path).unwrap();
        for len in 0..full.len() {
            std::fs::write(&path, &full[..len]).unwrap();
            match read_journal(&path) {
                None => assert!(len < HEADER_LEN, "header vanished at length {len}"),
                Some(read) => {
                    assert!(len >= HEADER_LEN);
                    assert!(read.valid_len as usize <= len);
                    for (i, rec) in read.records.iter().enumerate() {
                        assert_eq!(
                            rec,
                            &record(i as u64 + 1),
                            "prefix diverged at length {len}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bit_flips_never_panic_and_only_shorten() {
        let path = scratch("bitflip");
        let mut writer = JournalWriter::create(&path, 1, FsyncPolicy::Never).unwrap();
        for seq in 1..=3 {
            writer.append(&record(seq)).unwrap();
        }
        drop(writer);
        let full = std::fs::read(&path).unwrap();
        for byte in 0..full.len() {
            let mut flipped = full.clone();
            flipped[byte] ^= 0x40;
            std::fs::write(&path, &flipped).unwrap();
            if let Some(read) = read_journal(&path) {
                // Whatever survives must be a clean prefix of the original
                // records (a flipped payload byte is caught by the frame CRC).
                for (i, rec) in read.records.iter().enumerate() {
                    assert_eq!(
                        rec,
                        &record(i as u64 + 1),
                        "flip at byte {byte} corrupted replay"
                    );
                }
            }
        }
    }
}
