//! Shared world-building helpers for the transport integration tests.

use fleet_data::partition::non_iid_shards;
use fleet_data::synthetic::{generate, SyntheticSpec};
use fleet_device::profile::catalogue;
use fleet_device::Device;
use fleet_ml::models::mlp_classifier;
use fleet_server::{FleetServer, FleetServerConfig, Worker};
use fleet_transport::Endpoint;
use std::sync::Arc;

/// A fresh UDS endpoint under the system temp dir, unique per test process
/// and tag; any stale socket file from a crashed previous run is removed.
pub fn uds_endpoint(tag: &str) -> Endpoint {
    let path =
        std::env::temp_dir().join(format!("fleet-transport-{}-{tag}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    Endpoint::uds(path)
}

/// The tests' model shape: a small MLP classifier over the synthetic
/// 4-class / 6-feature vector task.
pub fn model_parameters() -> Vec<f32> {
    mlp_classifier(6, &[8], 4, 0).parameters()
}

/// A permissive server over the test model.
pub fn fresh_server(config: FleetServerConfig) -> FleetServer {
    FleetServer::new(model_parameters(), config)
}

/// The tests' base config (matching the 4-class dataset).
pub fn base_config() -> FleetServerConfig {
    FleetServerConfig::builder()
        .num_classes(4)
        .build()
        .expect("base config is valid")
}

/// Deterministic workers over a shared synthetic dataset: same seeds, same
/// partition, so two calls build byte-identical worker fleets.
pub fn build_workers(count: usize) -> Vec<Worker> {
    let dataset = Arc::new(generate(&SyntheticSpec::vector(4, 6, 160), 11));
    let users = non_iid_shards(&dataset, count, 2, 12);
    let profiles = catalogue();
    users
        .into_iter()
        .enumerate()
        .map(|(i, indices)| {
            Worker::new(
                i as u64,
                Device::new(profiles[i % profiles.len()].clone(), i as u64),
                Arc::clone(&dataset),
                indices,
                mlp_classifier(6, &[8], 4, 0),
                i as u64 + 100,
            )
        })
        .collect()
}

/// FNV-1a over the parameter bit patterns: equal digests mean bit-for-bit
/// equal models.
pub fn digest(params: &[f32]) -> u64 {
    params.iter().fold(0xcbf29ce484222325u64, |h, p| {
        (h ^ u64::from(p.to_bits())).wrapping_mul(0x100000001b3)
    })
}
