//! Socket deadlines: the per-frame read budget.
//!
//! This is the one module in the crate (and, outside the bench harnesses,
//! the workspace) allowed to read a wall clock — the fleet-lint `wall-clock`
//! policy names it explicitly. Socket deadlines are exactly the place where
//! real time is the *point*: a peer that stops sending mid-frame must not
//! pin a server thread, and no logical clock can observe that.
//!
//! A kernel `SO_RCVTIMEO` alone bounds each *individual* `read` call, which
//! a slow-loris peer defeats by trickling one byte per timeout window.
//! [`DeadlineReader`] therefore budgets the **total** wall time for one
//! frame: before every partial read it re-arms the kernel timeout with the
//! time remaining, so the whole frame — header and body — must land within
//! the budget or the read fails with `TimedOut` and the connection dies.

use crate::conn::Stream;
use std::io::{self, Read};
use std::time::{Duration, Instant};

/// Wraps a [`Stream`] for the duration of one frame read, enforcing a total
/// wall-clock budget across all partial reads.
#[derive(Debug)]
pub struct DeadlineReader<'a> {
    stream: &'a mut Stream,
    deadline: Instant,
}

impl<'a> DeadlineReader<'a> {
    /// Starts a frame read with `budget` of total wall time.
    pub fn new(stream: &'a mut Stream, budget: Duration) -> Self {
        DeadlineReader {
            deadline: Instant::now() + budget,
            stream,
        }
    }
}

impl Read for DeadlineReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let now = Instant::now();
        // The kernel rejects a zero timeout (it means "block forever"), so
        // anything under a millisecond of budget is already an overrun.
        let remaining = self.deadline.saturating_duration_since(now);
        if remaining < Duration::from_millis(1) {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "frame read deadline expired",
            ));
        }
        self.stream.set_read_timeout(Some(remaining))?;
        self.stream.read(buf).map_err(|err| {
            // Normalise the kernel's two spellings of "the timeout fired".
            if err.kind() == io::ErrorKind::WouldBlock {
                io::Error::new(io::ErrorKind::TimedOut, "frame read deadline expired")
            } else {
                err
            }
        })
    }
}
