// Fixture: well-formed markers waiving real findings, including one
// covering two rules at once and one separated from its site by an
// attribute (the lookback crosses blank/comment/attribute lines). Expect
// zero live findings and three suppressions.

pub fn waived(p: *const u32) -> u32 {
    // lint:allow(unsafe-safety): fixture demonstrating a justified waiver —
    // the marker reason may span lines; only the first carries the syntax.
    unsafe { *p }
}

pub fn doubly_waived() {
    // lint:allow(wall-clock, thread-hygiene): fixture for a two-rule marker
    let _ = std::time::Instant::now();
}

fn attributed() {
    // lint:allow(thread-hygiene): the lookback crosses blank lines and
    // attributes, so a marker may sit a few passable lines above its site.

    #[allow(unused_must_use)]
    std::thread::spawn(|| {});
}
