//! Ablation bench for the dampening functions of Fig. 5: exponential
//! (AdaSGD), inverse (DynSGD) and none (FedAvg), plus the τ_thres percentile
//! estimation cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fleet_core::{DampeningPolicy, StalenessTracker};

fn dampening_benches(c: &mut Criterion) {
    let policies = [
        ("exponential", DampeningPolicy::exponential_for(12)),
        ("inverse", DampeningPolicy::Inverse),
        ("none", DampeningPolicy::None),
    ];
    for (name, policy) in policies {
        c.bench_with_input(
            BenchmarkId::new("dampening_factor", name),
            &policy,
            |b, p| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for tau in 0..64u64 {
                        acc += p.factor(black_box(tau));
                    }
                    black_box(acc)
                });
            },
        );
    }

    c.bench_function("staleness_tracker_percentile_10k", |b| {
        let mut tracker = StalenessTracker::without_bootstrap();
        for i in 0..10_000u64 {
            tracker.record(i % 200);
        }
        b.iter(|| black_box(tracker.percentile(99.7)));
    });
}

criterion_group!(benches, dampening_benches);
criterion_main!(benches);
