//! CALOREE baseline resource manager (Mishra et al., ASPLOS'18), as used for
//! comparison in §3.4 of the FLeet paper.
//!
//! CALOREE profiles a device by running the workload under every available
//! resource configuration (here: core allocations, since frequencies cannot be
//! set on non-rooted Android), keeps the energy-optimal configurations (the
//! lower convex hull of the speed/power trade-off — the *performance hash
//! table*, PHT), and at run time picks the most energy-efficient configuration
//! that still meets the task deadline.
//!
//! The paper's Table 2 shows that a PHT collected on one device transfers
//! poorly to other device models; Figure 14 shows that even on the training
//! device CALOREE does not beat FLeet's simple big-cores-only policy for
//! compute-bound gradient tasks. Both effects emerge from this implementation.

use crate::allocation::{enumerate_allocations, CoreAllocation};
use crate::device::Device;
use crate::profile::DeviceProfile;
use serde::{Deserialize, Serialize};

/// One entry of the performance hash table: a configuration with its measured
/// speed and power on the *training* device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhtEntry {
    /// The core allocation this entry describes.
    pub allocation: CoreAllocation,
    /// Measured throughput in samples per second.
    pub samples_per_second: f32,
    /// Measured power in battery-percent per second.
    pub power_pct_per_second: f32,
}

/// The performance hash table: energy-optimal configurations sorted by speed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerformanceHashTable {
    /// Name of the device the PHT was collected on.
    pub trained_on: String,
    entries: Vec<PhtEntry>,
}

impl PerformanceHashTable {
    /// Profiles `device` with a calibration workload of `calibration_batch`
    /// samples under every feasible core allocation and keeps the lower convex
    /// hull of the (speed, power) points.
    ///
    /// # Panics
    ///
    /// Panics if `calibration_batch` is zero.
    pub fn profile(device: &mut Device, calibration_batch: usize) -> Self {
        assert!(calibration_batch > 0, "calibration batch must be positive");
        let profile = device.profile().clone();
        let original_allocation = device.allocation();
        let mut measured = Vec::new();
        for allocation in enumerate_allocations(&profile) {
            device.set_allocation(allocation);
            // Cool down between calibration runs so each config is measured
            // under comparable conditions.
            device.idle(600.0);
            let exec = device.execute_task(calibration_batch);
            if exec.computation_seconds <= 0.0 {
                continue;
            }
            measured.push(PhtEntry {
                allocation,
                samples_per_second: calibration_batch as f32 / exec.computation_seconds,
                power_pct_per_second: exec.energy_pct / exec.computation_seconds,
            });
        }
        device.set_allocation(original_allocation);
        device.recharge();

        let entries = lower_convex_hull(measured);
        Self {
            trained_on: profile.name,
            entries,
        }
    }

    /// The retained (energy-optimal) configurations, slowest first.
    pub fn entries(&self) -> &[PhtEntry] {
        &self.entries
    }

    /// Picks the most energy-efficient configuration whose *predicted* speed
    /// still finishes `batch_size` samples within `deadline_seconds`. Falls
    /// back to the fastest configuration when none is predicted to meet the
    /// deadline. Returns `None` for an empty PHT.
    pub fn select(&self, batch_size: usize, deadline_seconds: f32) -> Option<PhtEntry> {
        let required_speed = batch_size as f32 / deadline_seconds.max(1e-6);
        self.entries
            .iter()
            .find(|e| e.samples_per_second >= required_speed)
            .or_else(|| self.entries.last())
            .copied()
    }
}

/// Keeps the points on the lower convex hull of the power-vs-speed curve:
/// configurations for which no other configuration is both faster and less
/// power-hungry, sorted by increasing speed.
fn lower_convex_hull(mut entries: Vec<PhtEntry>) -> Vec<PhtEntry> {
    entries.sort_by(|a, b| {
        a.samples_per_second
            .partial_cmp(&b.samples_per_second)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut hull: Vec<PhtEntry> = Vec::new();
    for e in entries {
        // Dominated: some kept entry is at least as fast and uses no more power.
        if hull.iter().any(|h| {
            h.samples_per_second >= e.samples_per_second
                && h.power_pct_per_second <= e.power_pct_per_second
        }) {
            continue;
        }
        // Remove entries the new one dominates.
        hull.retain(|h| {
            !(e.samples_per_second >= h.samples_per_second
                && e.power_pct_per_second <= h.power_pct_per_second)
        });
        hull.push(e);
        hull.sort_by(|a, b| {
            a.samples_per_second
                .partial_cmp(&b.samples_per_second)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }
    hull
}

/// Outcome of running one task under CALOREE control.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaloreeRun {
    /// The allocation CALOREE selected.
    pub allocation: CoreAllocation,
    /// Actual computation time in seconds.
    pub computation_seconds: f32,
    /// Actual energy in battery percent.
    pub energy_pct: f32,
    /// The deadline CALOREE was asked to meet.
    pub deadline_seconds: f32,
    /// Relative deadline error `|actual - deadline| / deadline`, in percent
    /// (the metric of Table 2).
    pub deadline_error_pct: f32,
}

/// The CALOREE controller: a PHT (possibly collected on a *different* device)
/// plus a per-configuration switching overhead.
#[derive(Debug, Clone)]
pub struct Caloree {
    pht: PerformanceHashTable,
    /// Latency overhead incurred whenever the controller switches the running
    /// configuration (scheduler migration + cache warm-up), in seconds.
    pub switch_overhead_seconds: f32,
}

impl Caloree {
    /// Creates a controller from a previously collected PHT.
    pub fn new(pht: PerformanceHashTable) -> Self {
        Self {
            pht,
            switch_overhead_seconds: 0.08,
        }
    }

    /// Profiles `device` and returns a controller trained on it (the paper's
    /// "ideal" same-device setup).
    pub fn trained_on(device: &mut Device, calibration_batch: usize) -> Self {
        Self::new(PerformanceHashTable::profile(device, calibration_batch))
    }

    /// The underlying PHT.
    pub fn pht(&self) -> &PerformanceHashTable {
        &self.pht
    }

    /// Runs `batch_size` samples on `device` under a deadline, using the PHT
    /// to choose the configuration.
    pub fn run(&self, device: &mut Device, batch_size: usize, deadline_seconds: f32) -> CaloreeRun {
        let entry = self.pht.select(batch_size, deadline_seconds);
        let allocation = entry
            .map(|e| e.allocation)
            .unwrap_or(CoreAllocation::AllCores);
        let previous = device.allocation();
        device.set_allocation(allocation);
        let switched = previous != allocation;
        let exec = device.execute_task(batch_size);
        device.set_allocation(previous);

        let overhead = if switched {
            self.switch_overhead_seconds
        } else {
            0.0
        };
        let actual = exec.computation_seconds + overhead;
        let deadline_error_pct = if deadline_seconds > 0.0 {
            (actual - deadline_seconds).abs() / deadline_seconds * 100.0
        } else {
            0.0
        };
        CaloreeRun {
            allocation,
            computation_seconds: actual,
            energy_pct: exec.energy_pct,
            deadline_seconds,
            deadline_error_pct,
        }
    }

    /// Table 2 helper: the mean deadline error over `repeats` runs of
    /// `batch_size` samples on `device` with a deadline chosen so that the
    /// *training* device would finish exactly on time.
    pub fn transfer_deadline_error(
        &self,
        device: &mut Device,
        batch_size: usize,
        deadline_seconds: f32,
        repeats: usize,
    ) -> f32 {
        let mut total = 0.0;
        for _ in 0..repeats.max(1) {
            device.idle(600.0);
            total += self
                .run(device, batch_size, deadline_seconds)
                .deadline_error_pct;
        }
        total / repeats.max(1) as f32
    }
}

/// Convenience: builds a device from a profile, trains CALOREE on it and
/// returns both.
pub fn train_on_profile(
    profile: DeviceProfile,
    calibration_batch: usize,
    seed: u64,
) -> (Device, Caloree) {
    let mut device = Device::new(profile, seed);
    let caloree = Caloree::trained_on(&mut device, calibration_batch);
    (device, caloree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::by_name;

    #[test]
    fn pht_is_sorted_and_nondominated() {
        let mut device = Device::new(by_name("Galaxy S7").unwrap(), 1);
        let pht = PerformanceHashTable::profile(&mut device, 500);
        let entries = pht.entries();
        assert!(!entries.is_empty());
        for w in entries.windows(2) {
            assert!(w[0].samples_per_second <= w[1].samples_per_second);
            // Faster entries must pay more power, otherwise the slower one is dominated.
            assert!(w[0].power_pct_per_second <= w[1].power_pct_per_second + 1e-9);
        }
    }

    #[test]
    fn select_meets_deadline_when_possible() {
        let mut device = Device::new(by_name("Galaxy S7").unwrap(), 2);
        let pht = PerformanceHashTable::profile(&mut device, 500);
        let entry = pht.select(1000, 30.0).unwrap();
        assert!(entry.samples_per_second >= 1000.0 / 30.0);
    }

    #[test]
    fn select_falls_back_to_fastest_for_impossible_deadline() {
        let mut device = Device::new(by_name("Xperia E3").unwrap(), 3);
        let pht = PerformanceHashTable::profile(&mut device, 200);
        let entry = pht.select(100_000, 0.001).unwrap();
        let fastest = pht
            .entries()
            .iter()
            .map(|e| e.samples_per_second)
            .fold(0.0f32, f32::max);
        assert_eq!(entry.samples_per_second, fastest);
    }

    #[test]
    fn same_device_deadline_error_is_small() {
        let (mut device, caloree) = train_on_profile(by_name("Galaxy S7").unwrap(), 500, 4);
        // Deadline = what the device actually needs for this batch.
        device.idle(1e5);
        let batch = 1000;
        let deadline = device.true_latency_slope() * batch as f32;
        let err = caloree.transfer_deadline_error(&mut device, batch, deadline, 10);
        assert!(err < 20.0, "same-device error should be small, got {err}%");
    }

    #[test]
    fn transfer_to_different_device_increases_error() {
        let (mut s7, caloree) = train_on_profile(by_name("Galaxy S7").unwrap(), 500, 5);
        s7.idle(1e5);
        let batch = 1000;
        let deadline = s7.true_latency_slope() * batch as f32;
        let err_same = caloree.transfer_deadline_error(&mut s7, batch, deadline, 5);

        let mut honor10 = Device::new(by_name("Honor 10").unwrap(), 6);
        let err_honor10 = caloree.transfer_deadline_error(&mut honor10, batch, deadline, 5);
        assert!(
            err_honor10 > err_same,
            "transfer error ({err_honor10}%) should exceed same-device error ({err_same}%)"
        );
    }

    #[test]
    fn caloree_energy_not_better_than_fleet_policy() {
        // Figure 14: for compute-bound gradient tasks, FLeet's static
        // big-cores-only policy is at least as energy-efficient as CALOREE.
        let (mut device, caloree) = train_on_profile(by_name("Galaxy S8").unwrap(), 500, 7);
        let batch = 2000;
        let runs = 10;
        let mut fleet_energy = 0.0;
        let mut caloree_energy = 0.0;
        for _ in 0..runs {
            device.recharge();
            device.idle(1e5);
            let fleet_exec = device.execute_task(batch);
            fleet_energy += fleet_exec.energy_pct;
            let deadline = 2.0 * fleet_exec.computation_seconds;
            device.recharge();
            device.idle(1e5);
            caloree_energy += caloree.run(&mut device, batch, deadline).energy_pct;
        }
        assert!(
            caloree_energy >= fleet_energy * 0.9,
            "CALOREE ({caloree_energy}) should not beat FLeet ({fleet_energy}) by a wide margin"
        );
    }
}
