//! Online FL versus Standard FL on the temporal hashtag-recommendation
//! workload (§3.1, Fig. 6).
//!
//! Both setups perform exactly the same gradient computations (one per user
//! per hour of data); they differ only in *when* the model is updated:
//!
//! * **Online FL** updates the model every hour with the previous hour's
//!   gradients and serves the next hour with the fresh model.
//! * **Standard FL** accumulates a whole day and updates once every 24 hours
//!   (the paper's observation that devices only qualify for Standard FL at
//!   night), so most of the day is served by a model that is up to a day old.
//!
//! The model is reset at the beginning of every 2-day shard, exactly as in the
//! paper's evaluation procedure.

use fleet_data::twitter::{HashtagStream, Post};
use fleet_ml::metrics::mean_f1_at_k;
use fleet_ml::recommender::{HashtagRecommender, MostPopularRecommender};
use fleet_ml::tensor::Tensor;
use fleet_ml::Gradient;

/// Configuration of the hashtag-recommendation comparison.
#[derive(Debug, Clone, Copy)]
pub struct OnlineFlConfig {
    /// Hidden-layer width of the recommender.
    pub hidden: usize,
    /// Learning rate applied to each user gradient.
    pub learning_rate: f32,
    /// Number of recommended hashtags (the paper uses top-5).
    pub top_k: usize,
    /// Model-initialisation seed.
    pub seed: u64,
}

impl Default for OnlineFlConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            learning_rate: 0.5,
            top_k: 5,
            seed: 0,
        }
    }
}

/// Per-chunk (hourly) F1 scores of the three approaches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkScore {
    /// Absolute hour index of the evaluated chunk.
    pub hour: usize,
    /// F1-score @ top-k of Online FL.
    pub online_f1: f32,
    /// F1-score @ top-k of Standard FL.
    pub standard_f1: f32,
    /// F1-score @ top-k of the most-popular baseline.
    pub most_popular_f1: f32,
}

/// Result of the comparison over a whole stream.
#[derive(Debug, Clone, Default)]
pub struct OnlineVsStandardResult {
    /// One entry per evaluated hour.
    pub chunks: Vec<ChunkScore>,
}

impl OnlineVsStandardResult {
    /// Mean F1 of Online FL across all evaluated chunks.
    pub fn mean_online(&self) -> f32 {
        mean(self.chunks.iter().map(|c| c.online_f1))
    }

    /// Mean F1 of Standard FL across all evaluated chunks.
    pub fn mean_standard(&self) -> f32 {
        mean(self.chunks.iter().map(|c| c.standard_f1))
    }

    /// Mean F1 of the most-popular baseline.
    pub fn mean_most_popular(&self) -> f32 {
        mean(self.chunks.iter().map(|c| c.most_popular_f1))
    }

    /// The quality boost of Online over Standard FL (the paper reports 2.3x
    /// on its Twitter crawl).
    pub fn quality_boost(&self) -> f32 {
        let standard = self.mean_standard();
        if standard <= 0.0 {
            f32::INFINITY
        } else {
            self.mean_online() / standard
        }
    }
}

fn mean(values: impl Iterator<Item = f32>) -> f32 {
    let collected: Vec<f32> = values.collect();
    if collected.is_empty() {
        0.0
    } else {
        collected.iter().sum::<f32>() / collected.len() as f32
    }
}

/// Runs the Online-vs-Standard comparison over a generated hashtag stream.
pub fn run_online_vs_standard(
    stream: &HashtagStream,
    config: OnlineFlConfig,
) -> OnlineVsStandardResult {
    let spec = stream.spec();
    let mut result = OnlineVsStandardResult::default();

    for (shard_start, shard_end) in stream.shards() {
        // Fresh models at every shard boundary, as in the paper.
        let mut online = HashtagRecommender::new(
            spec.feature_dim,
            spec.vocab_size,
            config.hidden,
            config.seed,
        );
        let mut standard = HashtagRecommender::new(
            spec.feature_dim,
            spec.vocab_size,
            config.hidden,
            config.seed,
        );
        let mut popular = MostPopularRecommender::new(spec.vocab_size);
        // Gradients accumulated by Standard FL since its last daily update.
        let mut standard_backlog: Vec<Gradient> = Vec::new();

        for hour in shard_start..shard_end {
            // Standard FL updates once per day, using everything collected
            // since the previous update.
            if hour > shard_start && (hour - shard_start) % 24 == 0 {
                for gradient in standard_backlog.drain(..) {
                    let _ = standard.apply_gradient(&gradient, config.learning_rate);
                }
            }

            // Evaluate on the current hour *before* training on it.
            if hour > shard_start {
                let chunk = stream.chunk(hour);
                if !chunk.is_empty() {
                    let online_f1 = evaluate(&mut online, &chunk, config.top_k);
                    let standard_f1 = evaluate(&mut standard, &chunk, config.top_k);
                    let popular_top = popular.top_k(config.top_k);
                    let popular_pairs: Vec<(Vec<usize>, Vec<usize>)> = chunk
                        .iter()
                        .map(|p| (popular_top.clone(), p.hashtags.clone()))
                        .collect();
                    result.chunks.push(ChunkScore {
                        hour,
                        online_f1,
                        standard_f1,
                        most_popular_f1: mean_f1_at_k(&popular_pairs),
                    });
                }
            }

            // Train on the current hour's data: one gradient per user.
            let chunk = stream.chunk(hour);
            for (_, posts) in stream.group_by_user(&chunk) {
                let (features, labels) = batch_from_posts(&posts);
                if labels.is_empty() {
                    continue;
                }
                // Online FL: apply immediately.
                if let Ok((_, gradient)) = online.compute_gradient(&features, &labels) {
                    let _ = online.apply_gradient(&gradient, config.learning_rate);
                }
                // Standard FL: same gradient computation, deferred application.
                if let Ok((_, gradient)) = standard.compute_gradient(&features, &labels) {
                    standard_backlog.push(gradient);
                }
                for p in &posts {
                    popular.observe(&p.hashtags);
                }
            }
        }
    }
    result
}

/// Builds a training batch from a user's posts (the primary hashtag is the
/// training label, as described in DESIGN.md).
fn batch_from_posts(posts: &[&Post]) -> (Tensor, Vec<usize>) {
    let feature_dim = posts.first().map(|p| p.features.len()).unwrap_or(1);
    let mut data = Vec::with_capacity(posts.len() * feature_dim);
    let mut labels = Vec::with_capacity(posts.len());
    for p in posts {
        data.extend_from_slice(&p.features);
        labels.push(p.hashtags[0]);
    }
    (Tensor::from_vec(data, &[posts.len(), feature_dim]), labels)
}

fn evaluate(model: &mut HashtagRecommender, chunk: &[&Post], top_k: usize) -> f32 {
    let (features, _) = batch_from_posts(chunk);
    match model.recommend_top_k(&features, top_k) {
        Ok(recommendations) => {
            let pairs: Vec<(Vec<usize>, Vec<usize>)> = recommendations
                .into_iter()
                .zip(chunk.iter())
                .map(|(rec, post)| (rec, post.hashtags.clone()))
                .collect();
            mean_f1_at_k(&pairs)
        }
        Err(_) => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet_data::twitter::StreamSpec;

    fn small_stream() -> HashtagStream {
        HashtagStream::generate(
            &StreamSpec {
                days: 4,
                posts_per_hour: 30,
                num_users: 20,
                vocab_size: 30,
                feature_dim: 12,
                trend_lifetime_hours: 5.0,
                concurrent_trends: 4,
            },
            17,
        )
    }

    #[test]
    fn comparison_produces_scores_for_most_hours() {
        let stream = small_stream();
        let result = run_online_vs_standard(&stream, OnlineFlConfig::default());
        // 4 days = 2 shards x 48 hours, minus the first hour of each shard.
        assert!(result.chunks.len() >= 90, "chunks {}", result.chunks.len());
        assert!(result
            .chunks
            .iter()
            .all(|c| c.online_f1 >= 0.0 && c.online_f1 <= 1.0));
    }

    #[test]
    fn online_fl_beats_standard_fl_on_temporal_data() {
        let stream = small_stream();
        let result = run_online_vs_standard(&stream, OnlineFlConfig::default());
        assert!(
            result.mean_online() > result.mean_standard(),
            "online {} should beat standard {}",
            result.mean_online(),
            result.mean_standard()
        );
        assert!(result.quality_boost() > 1.0);
    }

    #[test]
    fn online_fl_beats_most_popular_baseline() {
        let stream = small_stream();
        let result = run_online_vs_standard(&stream, OnlineFlConfig::default());
        assert!(result.mean_online() > result.mean_most_popular());
    }

    #[test]
    fn empty_result_statistics_are_safe() {
        let empty = OnlineVsStandardResult::default();
        assert_eq!(empty.mean_online(), 0.0);
        assert!(empty.quality_boost().is_infinite());
    }
}
