//! # fleet-profiler
//!
//! I-Prof — the FLeet paper's lightweight, SLO-driven workload profiler
//! (§2.2) — together with the MAUI baseline it is compared against (§3.3).
//!
//! Given the device state observable on stock Android
//! ([`fleet_device::DeviceFeatures`]), I-Prof predicts the per-sample slope α
//! of the (linear) relation between mini-batch size and computation time or
//! energy, and inverts it (Eq. 1 of the paper) to propose the largest
//! mini-batch size that still meets the Service Level Objective:
//!
//! ```text
//! n̂ = max(1, SLO / α̂)
//! ```
//!
//! Two estimators are combined:
//!
//! * a **cold-start global model** — ordinary least squares over device
//!   features, pre-trained offline on calibration devices and periodically
//!   re-trained — used for the first request of every device model, and
//! * a **personalised model per device model** — an online
//!   passive-aggressive regressor with an ε-insensitive loss
//!   ([`passive_aggressive::PassiveAggressiveRegressor`]) — bootstrapped from
//!   the first observation and refined with every subsequent learning task.
//!
//! [`maui::Maui`] implements the comparison profiler: a single linear
//! regression on the mini-batch size alone (the paper's adaptation of MAUI).

#![forbid(unsafe_code)]

pub mod eval;
pub mod iprof;
pub mod linreg;
pub mod maui;
pub mod passive_aggressive;
pub mod slo;
pub mod training;

pub use iprof::{BatchPrediction, IProf, IProfState, SlopePredictorState};
pub use maui::Maui;
pub use slo::Slo;

use fleet_device::DeviceFeatures;

/// Common interface of the workload profilers compared in §3.3, so the
/// experiment harnesses can alternate requests between them (the paper uses a
/// round-robin dispatcher for exactly this purpose).
pub trait WorkloadProfiler {
    /// Human-readable name used in experiment output.
    fn name(&self) -> &'static str;

    /// Predicts the mini-batch size for a request from `device_model` with the
    /// given observable `features`.
    fn predict(&mut self, device_model: &str, features: &DeviceFeatures) -> usize;

    /// Feeds back the measured execution of a learning task so the profiler
    /// can refine its estimators.
    fn observe(
        &mut self,
        device_model: &str,
        features: &DeviceFeatures,
        batch_size: usize,
        computation_seconds: f32,
        energy_pct: f32,
    );
}
