//! The reporting interface instrumented components emit through.
//!
//! The trait is deliberately tiny and every method has a no-op default, so
//! the serving hot paths (transport server, `FleetServer`, simulation) pay
//! one `Option` branch when telemetry is disabled — no clock reads, no
//! atomics, no allocation. Durations are reported as differences of
//! [`TelemetrySink::now_ns`] timestamps: the *sink* owns the clock (this
//! crate is the workspace's one wall-clock-exempt scope), instrumented
//! crates never touch `Instant` themselves.

use std::fmt;
use std::sync::Arc;

/// Monotonic event counters a sink can aggregate. The set is closed and
/// indexable so a recorder can keep a flat atomic array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Task requests that reached admission.
    Requests,
    /// Requests answered with an assignment.
    Assignments,
    /// Requests rejected with `Overloaded` (backpressure).
    RejectedOverloaded,
    /// Requests rejected with `BatchTooSmall`.
    RejectedBatchTooSmall,
    /// Requests rejected with `TooSimilar`.
    RejectedTooSimilar,
    /// Uploaded results that reached classification.
    Results,
    /// Results classified `Applied`.
    Applied,
    /// Results classified `Duplicate`.
    Duplicates,
    /// Results classified `Expired`.
    Expired,
    /// Results classified `Unsolicited`.
    Unsolicited,
    /// Submissions that advanced the model (an apply trigger fired).
    ModelUpdates,
    /// Client-side retries (reconnects / re-requests after a rejection).
    Retries,
    /// Transport connections accepted.
    ConnectionsOpened,
    /// Transport connections closed (any reason).
    ConnectionsClosed,
    /// Leases reclaimed (expiry or disconnect).
    TasksReclaimed,
    /// Write-ahead journal records appended.
    JournalAppends,
    /// Durable checkpoints written.
    Checkpoints,
    /// Simulation rounds completed.
    SimRounds,
}

impl Counter {
    /// Every counter, in report order.
    pub const ALL: [Counter; 18] = [
        Counter::Requests,
        Counter::Assignments,
        Counter::RejectedOverloaded,
        Counter::RejectedBatchTooSmall,
        Counter::RejectedTooSimilar,
        Counter::Results,
        Counter::Applied,
        Counter::Duplicates,
        Counter::Expired,
        Counter::Unsolicited,
        Counter::ModelUpdates,
        Counter::Retries,
        Counter::ConnectionsOpened,
        Counter::ConnectionsClosed,
        Counter::TasksReclaimed,
        Counter::JournalAppends,
        Counter::Checkpoints,
        Counter::SimRounds,
    ];

    /// Stable snake_case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Requests => "requests",
            Counter::Assignments => "assignments",
            Counter::RejectedOverloaded => "rejected_overloaded",
            Counter::RejectedBatchTooSmall => "rejected_batch_too_small",
            Counter::RejectedTooSimilar => "rejected_too_similar",
            Counter::Results => "results",
            Counter::Applied => "applied",
            Counter::Duplicates => "duplicates",
            Counter::Expired => "expired",
            Counter::Unsolicited => "unsolicited",
            Counter::ModelUpdates => "model_updates",
            Counter::Retries => "retries",
            Counter::ConnectionsOpened => "connections_opened",
            Counter::ConnectionsClosed => "connections_closed",
            Counter::TasksReclaimed => "tasks_reclaimed",
            Counter::JournalAppends => "journal_appends",
            Counter::Checkpoints => "checkpoints",
            Counter::SimRounds => "sim_rounds",
        }
    }
}

/// Latency distributions a sink can record into. Closed and indexable like
/// [`Counter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Latency {
    /// Client-observed request→response wire exchange.
    RequestExchange,
    /// Client-observed result→ack wire exchange.
    SubmitExchange,
    /// Server-side frame handling: decode, core work, reply written.
    HandleFrame,
}

impl Latency {
    /// Every latency metric, in report order.
    pub const ALL: [Latency; 3] = [
        Latency::RequestExchange,
        Latency::SubmitExchange,
        Latency::HandleFrame,
    ];

    /// Stable snake_case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Latency::RequestExchange => "request_exchange",
            Latency::SubmitExchange => "submit_exchange",
            Latency::HandleFrame => "handle_frame",
        }
    }
}

/// The reporting interface. All methods default to no-ops; implementors
/// must be cheap and must tolerate concurrent callers.
pub trait TelemetrySink: Send + Sync {
    /// A monotonic timestamp in nanoseconds, from an epoch the sink picks.
    /// Instrumented code reports durations as differences of these; the
    /// no-op default returns 0, so disabled telemetry never reads a clock.
    fn now_ns(&self) -> u64 {
        0
    }

    /// Records one latency sample, in nanoseconds.
    fn record_latency(&self, metric: Latency, nanos: u64) {
        let _ = (metric, nanos);
    }

    /// Adds `delta` to a counter.
    fn add(&self, counter: Counter, delta: u64) {
        let _ = (counter, delta);
    }

    /// Reports the observed pending-buffer depth of a shard.
    fn queue_depth(&self, shard: usize, depth: u64) {
        let _ = (shard, depth);
    }

    /// Reports `delta` gradient applications attributed to a shard.
    fn shard_applies(&self, shard: usize, delta: u64) {
        let _ = (shard, delta);
    }
}

/// The do-nothing sink (every trait default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {}

/// A cheap, cloneable handle instrumented components store. Disabled by
/// default; [`TelemetryHandle::get`] is the hot-path gate — one `Option`
/// branch when telemetry is off.
#[derive(Clone, Default)]
pub struct TelemetryHandle {
    sink: Option<Arc<dyn TelemetrySink>>,
}

impl TelemetryHandle {
    /// A handle reporting into `sink`.
    pub fn new(sink: Arc<dyn TelemetrySink>) -> Self {
        Self { sink: Some(sink) }
    }

    /// The disabled handle (same as `Default`).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether a sink is attached.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The sink, if attached. Instrumentation gates on this.
    #[inline]
    pub fn get(&self) -> Option<&dyn TelemetrySink> {
        self.sink.as_deref()
    }
}

impl fmt::Debug for TelemetryHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_enabled() {
            "TelemetryHandle(enabled)"
        } else {
            "TelemetryHandle(disabled)"
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_indices_match_all_order() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "{:?}", c);
        }
        for (i, l) in Latency::ALL.iter().enumerate() {
            assert_eq!(*l as usize, i, "{:?}", l);
        }
    }

    #[test]
    fn disabled_handle_reports_nothing() {
        let handle = TelemetryHandle::disabled();
        assert!(!handle.is_enabled());
        assert!(handle.get().is_none());
        // The no-op sink's defaults are callable and inert.
        let noop = NoopSink;
        assert_eq!(noop.now_ns(), 0);
        noop.add(Counter::Requests, 1);
        noop.record_latency(Latency::HandleFrame, 5);
    }
}
