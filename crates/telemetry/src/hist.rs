//! HDR-style fixed-bucket histograms for latency and depth distributions.
//!
//! The bucket layout is log-linear with [`SUB_BITS`] significant bits:
//! values below 2^SUB_BITS get one bucket each (exact), and every further
//! power-of-two range is split into 2^SUB_BITS equal sub-buckets, so a
//! recorded value is represented with a relative error of at most
//! `1 / 2^SUB_BITS` (≈ 3.1%). The whole `u64` range fits in a fixed array
//! of [`BUCKET_COUNT`] counters allocated once at construction:
//! [`Histogram::record`] is two shifts, a mask and an increment — no
//! allocation, no branching on history — and [`Histogram::merge`] is a
//! plain element-wise add, so aggregation across threads or sweep points is
//! exact and order-independent (deterministic by construction, unlike
//! sampling reservoirs).
//!
//! Percentile queries return the **upper bound** of the bucket holding the
//! rank, clamped to the exactly-tracked `[min, max]` — so
//! `value_at_percentile(p)` is always ≥ the true order statistic and within
//! the bucket's relative error above it. The property tests pit this
//! against a naive sort-based reference.

/// Significant bits of resolution (sub-bucket precision).
const SUB_BITS: u32 = 5;
/// Sub-buckets per power-of-two range.
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Total fixed bucket count covering all of `u64`.
pub const BUCKET_COUNT: usize = SUB_COUNT + (64 - SUB_BITS as usize) * SUB_COUNT;

/// Bucket index of a value (see the module docs for the layout).
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < SUB_COUNT as u64 {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros();
        let sub = ((value >> (exp - SUB_BITS)) as usize) & (SUB_COUNT - 1);
        SUB_COUNT + (exp - SUB_BITS) as usize * SUB_COUNT + sub
    }
}

/// Largest value mapping to the bucket (inclusive upper bound).
fn bucket_upper_bound(index: usize) -> u64 {
    if index < SUB_COUNT {
        index as u64
    } else {
        let offset = index - SUB_COUNT;
        let exp = SUB_BITS + (offset / SUB_COUNT) as u32;
        let sub = (offset % SUB_COUNT) as u64;
        let width = 1u64 << (exp - SUB_BITS);
        (1u64 << exp) + sub * width + (width - 1)
    }
}

/// A fixed-bucket log-linear histogram of `u64` samples (typically
/// nanoseconds). See the module docs for precision and determinism.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Box<[u64; BUCKET_COUNT]>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram. The single allocation lives here; recording is
    /// allocation-free.
    pub fn new() -> Self {
        Self {
            counts: vec![0u64; BUCKET_COUNT]
                .into_boxed_slice()
                .try_into()
                .expect("BUCKET_COUNT-sized box"),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`: exactly equivalent to having recorded both
    /// sample streams into one histogram, in any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at the given percentile (0 < `pct` ≤ 100): the upper bound
    /// of the bucket holding the `ceil(pct/100 · count)`-th smallest sample,
    /// clamped to the exact `[min, max]`. Returns 0 when empty.
    pub fn value_at_percentile(&self, pct: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((pct / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.total);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_upper_bound(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// A plain-data copy of the summary statistics.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            p50: self.value_at_percentile(50.0),
            p99: self.value_at_percentile(99.0),
            p999: self.value_at_percentile(99.9),
        }
    }
}

/// Summary statistics of a [`Histogram`], as plain data for reports.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Exact mean.
    pub mean: f64,
    /// Exact minimum.
    pub min: u64,
    /// Exact maximum.
    pub max: u64,
    /// 50th percentile (bucket upper bound).
    pub p50: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// 99.9th percentile (bucket upper bound).
    pub p999: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The naive reference: `sorted[ceil(p/100·n) − 1]`.
    fn naive_percentile(sorted: &[u64], pct: f64) -> u64 {
        let rank = ((pct / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank.min(sorted.len()) - 1]
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.value_at_percentile(50.0), 15);
        assert_eq!(h.value_at_percentile(100.0), 31);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.value_at_percentile(99.0), 0);
    }

    #[test]
    fn bucket_bounds_invert_the_index() {
        // Every bucket's upper bound maps back to that bucket, and the
        // successor value starts the next bucket.
        for index in 0..BUCKET_COUNT {
            let hi = bucket_upper_bound(index);
            assert_eq!(bucket_index(hi), index, "upper bound of {index}");
            if hi < u64::MAX {
                assert_eq!(bucket_index(hi + 1), index + 1, "successor of {index}");
            } else {
                assert_eq!(index, BUCKET_COUNT - 1);
            }
        }
    }

    #[test]
    fn extreme_values_fit() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.value_at_percentile(100.0), u64::MAX);
    }

    #[test]
    fn percentile_relative_error_is_bounded() {
        // Deterministic pseudo-random stream; the percentile must sit within
        // one sub-bucket (1/32 relative) above the sorted reference.
        let mut h = Histogram::new();
        let mut values = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x % 50_000_000;
            values.push(v);
            h.record(v);
        }
        values.sort_unstable();
        for pct in [50.0, 90.0, 99.0, 99.9, 100.0] {
            let reference = naive_percentile(&values, pct);
            let approx = h.value_at_percentile(pct);
            assert!(approx >= reference, "p{pct}: {approx} < {reference}");
            assert!(
                approx as f64 <= reference as f64 * (1.0 + 1.0 / 32.0) + 1.0,
                "p{pct}: {approx} too far above {reference}"
            );
        }
    }

    proptest::proptest! {
        /// For arbitrary value streams, every reported percentile sits at
        /// or above the sort-based reference and within one sub-bucket
        /// (1/32 relative) of it — the histogram's accuracy contract.
        #[test]
        fn percentiles_match_sorted_reference(
            values in proptest::collection::vec(0u64..u64::MAX / 2, 1..500),
            pcts in proptest::collection::vec(0.1f64..100.0, 1..8),
        ) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            for &pct in &pcts {
                let reference = naive_percentile(&sorted, pct);
                let approx = h.value_at_percentile(pct);
                proptest::prop_assert!(
                    approx >= reference,
                    "p{}: {} < reference {}",
                    pct, approx, reference
                );
                proptest::prop_assert!(
                    approx as f64 <= reference as f64 * (1.0 + 1.0 / 32.0) + 1.0,
                    "p{}: {} too far above reference {}",
                    pct, approx, reference
                );
            }
        }

        /// Merging arbitrary partitions of a stream is exactly recording
        /// the whole stream — deterministic aggregation, no drift.
        #[test]
        fn merge_is_partition_invariant(
            values in proptest::collection::vec(0u64..u64::MAX / 2, 1..300),
            split in 0usize..300,
        ) {
            let cut = split.min(values.len());
            let mut whole = Histogram::new();
            let mut left = Histogram::new();
            let mut right = Histogram::new();
            for (i, &v) in values.iter().enumerate() {
                whole.record(v);
                if i < cut {
                    left.record(v);
                } else {
                    right.record(v);
                }
            }
            left.merge(&right);
            proptest::prop_assert_eq!(left.snapshot(), whole.snapshot());
        }
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [3u64, 999, 1_000_000, 42, 7_777_777_777, 0] {
            whole.record(v);
        }
        for v in [3u64, 999, 1_000_000] {
            a.record(v);
        }
        for v in [42u64, 7_777_777_777, 0] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), whole.snapshot());
        assert_eq!(a.counts, whole.counts);
    }
}
