//! Loss functions.
//!
//! FLeet's image-classification workloads train with softmax cross-entropy;
//! this module provides it together with the gradient with respect to the
//! logits, which seeds the backward pass through a
//! [`crate::model::Sequential`] model.

use crate::tensor::Tensor;
use crate::{MlError, Result};

/// Numerically-stable softmax over the rows of a `[batch, classes]` tensor.
///
/// # Panics
///
/// Panics if the tensor is not 2-D.
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().len(), 2, "softmax requires a 2-D tensor");
    let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
    let mut out = vec![0.0f32; batch * classes];
    for i in 0..batch {
        let row = &logits.data()[i * classes..(i + 1) * classes];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        for j in 0..classes {
            out[i * classes + j] = exps[j] / sum;
        }
    }
    Tensor::from_vec(out, &[batch, classes])
}

/// Softmax cross-entropy loss for integer class labels.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Creates the loss function.
    pub fn new() -> Self {
        Self
    }

    /// Computes the mean loss over the batch and the gradient with respect to
    /// the logits.
    ///
    /// `logits` has shape `[batch, classes]`; `labels` holds one class index
    /// per example.
    ///
    /// # Errors
    ///
    /// Returns an error when the batch sizes disagree, the batch is empty or a
    /// label is out of range.
    pub fn forward(&self, logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
        if logits.shape().len() != 2 {
            return Err(MlError::ShapeMismatch {
                expected: vec![labels.len(), 0],
                actual: logits.shape().to_vec(),
                context: "SoftmaxCrossEntropy::forward".to_string(),
            });
        }
        let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
        if batch != labels.len() || batch == 0 {
            return Err(MlError::InvalidArgument(format!(
                "batch size mismatch: logits have {batch} rows, {} labels given",
                labels.len()
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
            return Err(MlError::InvalidArgument(format!(
                "label {bad} out of range for {classes} classes"
            )));
        }
        let probs = softmax(logits);
        let mut loss = 0.0f32;
        let mut grad = probs.clone();
        for (i, &label) in labels.iter().enumerate() {
            let p = probs.at2(i, label).max(1e-12);
            loss -= p.ln();
            *grad.at2_mut(i, label) -= 1.0;
        }
        let scale = 1.0 / batch as f32;
        Ok((loss * scale, grad.scale(scale)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let p = softmax(&logits);
        for i in 0..2 {
            let s: f32 = (0..3).map(|j| p.at2(i, j)).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let b = Tensor::from_vec(vec![101.0, 102.0, 103.0], &[1, 3]);
        let pa = softmax(&a);
        let pb = softmax(&b);
        for (x, y) in pa.data().iter().zip(pb.data().iter()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn uniform_logits_give_log_classes_loss() {
        let loss_fn = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros(&[4, 10]);
        let labels = vec![0, 3, 5, 9];
        let (loss, _) = loss_fn.forward(&logits, &labels).unwrap();
        assert!((loss - (10.0f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let loss_fn = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![2.0, -1.0, 0.5, 0.0, 1.0, -0.5], &[2, 3]);
        let (_, grad) = loss_fn.forward(&logits, &[0, 2]).unwrap();
        for i in 0..2 {
            let s: f32 = (0..3).map(|j| grad.at2(i, j)).sum();
            assert!(s.abs() < 1e-5, "row {i} gradient sums to {s}");
        }
    }

    #[test]
    fn perfect_prediction_has_small_loss() {
        let loss_fn = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![100.0, 0.0, 0.0], &[1, 3]);
        let (loss, _) = loss_fn.forward(&logits, &[0]).unwrap();
        assert!(loss < 1e-3);
    }

    #[test]
    fn label_out_of_range_errors() {
        let loss_fn = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros(&[1, 3]);
        assert!(loss_fn.forward(&logits, &[3]).is_err());
    }

    #[test]
    fn batch_mismatch_errors() {
        let loss_fn = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros(&[2, 3]);
        assert!(loss_fn.forward(&logits, &[0]).is_err());
        assert!(loss_fn.forward(&Tensor::zeros(&[0, 3]), &[]).is_err());
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let loss_fn = SoftmaxCrossEntropy::new();
        let mut logits = Tensor::from_vec(vec![0.3, -0.7, 1.2], &[1, 3]);
        let labels = [2usize];
        let (_, grad) = loss_fn.forward(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for j in 0..3 {
            let orig = logits.at2(0, j);
            *logits.at2_mut(0, j) = orig + eps;
            let (plus, _) = loss_fn.forward(&logits, &labels).unwrap();
            *logits.at2_mut(0, j) = orig - eps;
            let (minus, _) = loss_fn.forward(&logits, &labels).unwrap();
            *logits.at2_mut(0, j) = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (grad.at2(0, j) - numeric).abs() < 1e-3,
                "logit {j}: analytic {} vs numeric {numeric}",
                grad.at2(0, j)
            );
        }
    }
}
