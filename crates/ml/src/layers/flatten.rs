//! Flatten adapter between convolutional and dense layers.

use crate::layer::Layer;
use crate::tensor::Tensor;
use crate::{MlError, Result};

/// Flattens `[batch, d1, d2, ...]` inputs into `[batch, d1*d2*...]`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a new flatten layer.
    pub fn new() -> Self {
        Self { input_shape: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &str {
        "flatten"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if input.shape().is_empty() {
            return Err(MlError::InvalidArgument(
                "Flatten::forward requires at least a 1-D tensor".to_string(),
            ));
        }
        let batch = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        self.input_shape = Some(input.shape().to_vec());
        Ok(input.reshape(&[batch, rest]))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let shape = self.input_shape.as_ref().ok_or_else(|| {
            MlError::InvalidArgument("Flatten::backward called before forward".to_string())
        })?;
        Ok(grad_output.reshape(shape))
    }

    fn parameters(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn gradients(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_gradients(&mut self) {}

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattens_and_restores() {
        let mut f = Flatten::new();
        let input = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]);
        let out = f.forward(&input).unwrap();
        assert_eq!(out.shape(), &[2, 12]);
        let back = f.backward(&out).unwrap();
        assert_eq!(back.shape(), &[2, 3, 2, 2]);
        assert_eq!(back.data(), input.data());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut f = Flatten::new();
        assert!(f.backward(&Tensor::zeros(&[1, 4])).is_err());
    }
}
