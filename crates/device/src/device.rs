//! A stateful simulated mobile device executing learning tasks.

use crate::allocation::CoreAllocation;
use crate::features::DeviceFeatures;
use crate::profile::DeviceProfile;
use crate::thermal::ThermalModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Result of executing one learning task on a device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskExecution {
    /// Mini-batch size that was processed.
    pub batch_size: usize,
    /// Wall-clock computation time in seconds.
    pub computation_seconds: f32,
    /// Energy consumed, as a percentage of the battery capacity.
    pub energy_pct: f32,
    /// Energy consumed in milliwatt-hours.
    pub energy_mwh: f32,
    /// Device temperature when the task started, in °C.
    pub start_temperature: f32,
}

/// A simulated handset: static profile + dynamic thermal/battery/memory state.
///
/// The latency and energy of a task are linear in the mini-batch size with a
/// device-specific slope that worsens as the device heats up, plus
/// multiplicative measurement noise — the structure measured in Fig. 4 of the
/// paper.
#[derive(Debug, Clone)]
pub struct Device {
    profile: DeviceProfile,
    thermal: ThermalModel,
    allocation: CoreAllocation,
    battery_pct: f32,
    rng: StdRng,
    tasks_executed: u64,
}

impl Device {
    /// Creates a device from a profile with FLeet's default core allocation,
    /// full battery and ambient temperature.
    pub fn new(profile: DeviceProfile, seed: u64) -> Self {
        let allocation = CoreAllocation::fleet_policy(&profile);
        Self {
            thermal: ThermalModel::typical(),
            allocation,
            battery_pct: 100.0,
            rng: StdRng::seed_from_u64(seed),
            tasks_executed: 0,
            profile,
        }
    }

    /// Overrides the core allocation (used by the CALOREE comparison).
    pub fn set_allocation(&mut self, allocation: CoreAllocation) {
        self.allocation = allocation;
    }

    /// The current core allocation.
    pub fn allocation(&self) -> CoreAllocation {
        self.allocation
    }

    /// The static device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Remaining battery percentage.
    pub fn battery_pct(&self) -> f32 {
        self.battery_pct
    }

    /// Number of learning tasks executed so far.
    pub fn tasks_executed(&self) -> u64 {
        self.tasks_executed
    }

    /// Current temperature in °C.
    pub fn temperature(&self) -> f32 {
        self.thermal.temperature()
    }

    /// The stock-Android feature snapshot sent to the server with a learning
    /// task request (step 1 of Fig. 2).
    pub fn features(&mut self) -> DeviceFeatures {
        // Available memory fluctuates with foreground app pressure.
        let available_fraction: f32 = self.rng.gen_range(0.25..0.65);
        DeviceFeatures {
            available_memory_mb: self.profile.total_memory_mb * available_fraction,
            total_memory_mb: self.profile.total_memory_mb,
            temperature_celsius: self.thermal.temperature(),
            sum_max_freq_ghz: self.profile.sum_max_freq_ghz(),
            energy_per_cpu_second: self.profile.energy_per_cpu_second(),
        }
    }

    /// The true (noise-free) seconds-per-sample slope at the current
    /// temperature and allocation. Exposed for tests and for building oracle
    /// baselines.
    pub fn true_latency_slope(&self) -> f32 {
        let thermal_penalty = 1.0 + self.profile.thermal_sensitivity * self.thermal.excess();
        self.profile.base_secs_per_sample * thermal_penalty
            / self.allocation.relative_speed(&self.profile)
    }

    /// The true (noise-free) battery-percent-per-sample slope at the current
    /// temperature and allocation.
    pub fn true_energy_slope(&self) -> f32 {
        let thermal_penalty = 1.0 + 0.5 * self.profile.thermal_sensitivity * self.thermal.excess();
        self.profile.base_energy_pct_per_sample
            * thermal_penalty
            * self.allocation.relative_energy(&self.profile)
    }

    /// Executes a learning task over `batch_size` samples, updating the
    /// thermal and battery state and returning the measured latency/energy.
    ///
    /// A `batch_size` of zero returns a zero-cost execution.
    pub fn execute_task(&mut self, batch_size: usize) -> TaskExecution {
        let start_temperature = self.thermal.temperature();
        if batch_size == 0 {
            return TaskExecution {
                batch_size,
                computation_seconds: 0.0,
                energy_pct: 0.0,
                energy_mwh: 0.0,
                start_temperature,
            };
        }
        let noise = |rng: &mut StdRng, sigma: f32| -> f32 {
            // Multiplicative log-ish noise, clamped to stay positive.
            1.0 + rng.gen_range(-sigma..sigma)
        };
        let latency = self.true_latency_slope()
            * batch_size as f32
            * noise(&mut self.rng, self.profile.measurement_noise);
        let energy_pct = self.true_energy_slope()
            * batch_size as f32
            * noise(&mut self.rng, self.profile.measurement_noise);
        let energy_mwh = energy_pct / 100.0 * self.profile.battery_mwh;

        self.thermal.heat(latency);
        self.battery_pct = (self.battery_pct - energy_pct).max(0.0);
        self.tasks_executed += 1;

        TaskExecution {
            batch_size,
            computation_seconds: latency,
            energy_pct,
            energy_mwh,
            start_temperature,
        }
    }

    /// Lets the device idle (and cool down) for `seconds`.
    pub fn idle(&mut self, seconds: f32) {
        self.thermal.cool(seconds);
    }

    /// Recharges the battery to 100 % and cools back to ambient.
    pub fn recharge(&mut self) {
        self.battery_pct = 100.0;
        self.thermal.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::by_name;
    use proptest::prelude::*;

    fn device(name: &str) -> Device {
        Device::new(by_name(name).unwrap(), 7)
    }

    #[test]
    fn latency_and_energy_scale_linearly() {
        let mut d = device("Galaxy S7");
        let small = d.execute_task(100);
        d.recharge();
        d.idle(1e6);
        let mut d2 = device("Galaxy S7");
        let large = d2.execute_task(1000);
        // Within noise bounds, 10x the work takes ~10x the time and energy.
        let ratio_t = large.computation_seconds / small.computation_seconds;
        let ratio_e = large.energy_pct / small.energy_pct;
        assert!((7.0..13.0).contains(&ratio_t), "latency ratio {ratio_t}");
        assert!((7.0..13.0).contains(&ratio_e), "energy ratio {ratio_e}");
    }

    #[test]
    fn zero_batch_is_free() {
        let mut d = device("Galaxy S7");
        let exec = d.execute_task(0);
        assert_eq!(exec.computation_seconds, 0.0);
        assert_eq!(exec.energy_pct, 0.0);
        assert_eq!(d.battery_pct(), 100.0);
    }

    #[test]
    fn devices_are_heterogeneous() {
        let mut fast = device("Honor 10");
        let mut slow = device("Xperia E3");
        let f = fast.execute_task(500);
        let s = slow.execute_task(500);
        assert!(
            s.computation_seconds > 5.0 * f.computation_seconds,
            "slow {} vs fast {}",
            s.computation_seconds,
            f.computation_seconds
        );
    }

    #[test]
    fn sustained_load_heats_and_slows_the_device() {
        let mut d = device("Honor 10");
        let cold_slope = d.true_latency_slope();
        for _ in 0..30 {
            d.execute_task(2000);
        }
        assert!(d.temperature() > 31.0);
        assert!(d.true_latency_slope() > cold_slope);
        // Cooling down restores the slope.
        d.idle(1e5);
        assert!((d.true_latency_slope() - cold_slope).abs() / cold_slope < 0.01);
    }

    #[test]
    fn battery_drains_and_recharges() {
        let mut d = device("Galaxy S4 mini");
        for _ in 0..20 {
            d.execute_task(1000);
        }
        assert!(d.battery_pct() < 100.0);
        d.recharge();
        assert_eq!(d.battery_pct(), 100.0);
        assert_eq!(d.temperature(), 30.0);
    }

    #[test]
    fn features_reflect_profile_and_state() {
        let mut d = device("Galaxy S7");
        let f = d.features();
        assert_eq!(f.total_memory_mb, d.profile().total_memory_mb);
        assert!(f.available_memory_mb < f.total_memory_mb);
        assert_eq!(f.sum_max_freq_ghz, d.profile().sum_max_freq_ghz());
        assert_eq!(f.temperature_celsius, 30.0);
    }

    #[test]
    fn energy_mwh_consistent_with_pct() {
        let mut d = device("Galaxy S7");
        let exec = d.execute_task(500);
        let expected = exec.energy_pct / 100.0 * d.profile().battery_mwh;
        assert!((exec.energy_mwh - expected).abs() < 1e-3);
    }

    #[test]
    fn execution_is_deterministic_per_seed() {
        let mut a = Device::new(by_name("Pixel").unwrap(), 3);
        let mut b = Device::new(by_name("Pixel").unwrap(), 3);
        assert_eq!(a.execute_task(200), b.execute_task(200));
    }

    proptest! {
        #[test]
        fn prop_latency_energy_positive_and_monotone(batch in 1usize..3000, seed in 0u64..20) {
            let mut d = Device::new(by_name("Galaxy S6").unwrap(), seed);
            let exec = d.execute_task(batch);
            prop_assert!(exec.computation_seconds > 0.0);
            prop_assert!(exec.energy_pct > 0.0);
            prop_assert!(exec.energy_mwh > 0.0);
        }

        #[test]
        fn prop_battery_never_negative(batches in proptest::collection::vec(1usize..5000, 1..30)) {
            let mut d = Device::new(by_name("Moto G (2nd Gen)").unwrap(), 1);
            for b in batches {
                d.execute_task(b);
                prop_assert!(d.battery_pct() >= 0.0);
            }
        }
    }
}
