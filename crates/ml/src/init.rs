//! Weight initialisation schemes.
//!
//! The paper's CNNs (Table 1) use standard initialisation; we provide uniform,
//! Xavier/Glorot and He initialisers, all seeded for reproducibility.

use crate::tensor::Tensor;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Weight initialisation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Initializer {
    /// All weights zero (useful for biases and tests).
    Zeros,
    /// Uniform in `[-scale, scale]` where the scale is fixed at construction.
    UniformSymmetric,
    /// Glorot/Xavier uniform: `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
    #[default]
    Xavier,
    /// He/Kaiming uniform: `U(-sqrt(6/fan_in), +sqrt(6/fan_in))`, suited to ReLU.
    He,
}

impl Initializer {
    /// Builds a tensor of the given shape, using `fan_in`/`fan_out` to size the
    /// distribution and `seed` for reproducibility.
    pub fn init(&self, shape: &[usize], fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
        let len: usize = shape.iter().product();
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f32> = match self {
            Initializer::Zeros => vec![0.0; len],
            Initializer::UniformSymmetric => {
                let dist = Uniform::new_inclusive(-0.05f32, 0.05f32);
                (0..len).map(|_| dist.sample(&mut rng)).collect()
            }
            Initializer::Xavier => {
                let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                let dist = Uniform::new_inclusive(-bound, bound);
                (0..len).map(|_| dist.sample(&mut rng)).collect()
            }
            Initializer::He => {
                let bound = (6.0 / fan_in.max(1) as f32).sqrt();
                let dist = Uniform::new_inclusive(-bound, bound);
                (0..len).map(|_| dist.sample(&mut rng)).collect()
            }
        };
        Tensor::from_vec(data, shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_all_zero() {
        let t = Initializer::Zeros.init(&[4, 4], 4, 4, 0);
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn xavier_within_bound() {
        let fan_in = 10;
        let fan_out = 20;
        let bound = (6.0f32 / 30.0).sqrt();
        let t = Initializer::Xavier.init(&[fan_in, fan_out], fan_in, fan_out, 7);
        assert!(t.data().iter().all(|v| v.abs() <= bound + 1e-6));
        // Not all values identical.
        assert!(t.data().iter().any(|&v| (v - t.data()[0]).abs() > 1e-9));
    }

    #[test]
    fn he_within_bound() {
        let bound = (6.0f32 / 16.0).sqrt();
        let t = Initializer::He.init(&[16, 8], 16, 8, 3);
        assert!(t.data().iter().all(|v| v.abs() <= bound + 1e-6));
    }

    #[test]
    fn seeded_init_is_deterministic() {
        let a = Initializer::Xavier.init(&[8, 8], 8, 8, 99);
        let b = Initializer::Xavier.init(&[8, 8], 8, 8, 99);
        let c = Initializer::Xavier.init(&[8, 8], 8, 8, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_symmetric_small() {
        let t = Initializer::UniformSymmetric.init(&[32], 32, 32, 1);
        assert!(t.data().iter().all(|v| v.abs() <= 0.05 + 1e-6));
    }
}
