//! Concrete [`crate::layer::Layer`] implementations.
//!
//! The paper's Table 1 models are built from convolution, max-pooling and
//! fully-connected layers with ReLU activations; this module provides exactly
//! those blocks plus a flatten adapter.

mod activation;
mod conv;
mod dense;
mod flatten;
mod pool;

pub use activation::Relu;
pub use conv::{Conv2d, ConvPath};
pub use dense::Dense;
pub use flatten::Flatten;
pub use pool::MaxPool2d;
