//! Synthetic temporal hashtag stream.
//!
//! The paper's §3.1 collects 2.6 M geo-located tweets over 13 days, divides
//! them into 2-day shards and 1-hour chunks, and shows that Online FL (model
//! updated every hour) beats Standard FL (model updated every day) because
//! hashtag popularity is short-lived. We cannot redistribute that crawl, so
//! this module generates a stream with the same essential property — hashtag
//! popularity life-cycles much shorter than a day — while remaining fully
//! deterministic and laptop-sized (see DESIGN.md, substitution table).
//!
//! Each [`Post`] carries a context feature vector (what the recommender sees)
//! and the set of hashtags the user actually attached (the ground truth for
//! the F1-score @ top-5 metric). The context features are a noisy linear
//! image of the *currently trending* topics, so a model trained on fresh data
//! can map context to today's hashtags while a day-old model keeps predicting
//! yesterday's.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One synthetic post (tweet).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Post {
    /// Time of the post, in hours since the start of the stream.
    pub timestamp_hours: f64,
    /// Id of the user who produced the post.
    pub user_id: usize,
    /// Context features visible to the recommender.
    pub features: Vec<f32>,
    /// Ground-truth hashtags attached to the post (indices into the hashtag
    /// vocabulary), first entry is the "primary" hashtag used as the training
    /// label.
    pub hashtags: Vec<usize>,
}

/// Configuration of the synthetic stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Total duration of the stream in days (the paper uses 13).
    pub days: usize,
    /// Number of posts generated per hour.
    pub posts_per_hour: usize,
    /// Number of users producing posts.
    pub num_users: usize,
    /// Size of the hashtag vocabulary.
    pub vocab_size: usize,
    /// Dimensionality of the context feature vector.
    pub feature_dim: usize,
    /// Mean lifetime of a trending hashtag in hours. Small values (a few
    /// hours) make the data "highly temporal" as in the paper.
    pub trend_lifetime_hours: f64,
    /// Number of hashtags trending at any point in time.
    pub concurrent_trends: usize,
}

impl Default for StreamSpec {
    fn default() -> Self {
        Self {
            days: 13,
            posts_per_hour: 60,
            num_users: 50,
            vocab_size: 100,
            feature_dim: 16,
            trend_lifetime_hours: 6.0,
            concurrent_trends: 5,
        }
    }
}

impl StreamSpec {
    /// Total number of hours covered by the stream.
    pub fn total_hours(&self) -> usize {
        self.days * 24
    }
}

/// The generated stream, with helpers to slice it into the paper's shards
/// (2 days) and chunks (1 hour).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HashtagStream {
    spec: StreamSpec,
    posts: Vec<Post>,
}

impl HashtagStream {
    /// Generates a stream deterministically from a seed.
    ///
    /// # Panics
    ///
    /// Panics if the spec has zero users, zero vocabulary, zero feature
    /// dimension or zero concurrent trends.
    pub fn generate(spec: &StreamSpec, seed: u64) -> Self {
        assert!(spec.num_users > 0, "num_users must be positive");
        assert!(spec.vocab_size > 0, "vocab_size must be positive");
        assert!(spec.feature_dim > 0, "feature_dim must be positive");
        assert!(
            spec.concurrent_trends > 0,
            "concurrent_trends must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);

        // Each hashtag is associated with a fixed direction in feature space;
        // posts about a trending hashtag have features near that direction.
        let directions: Vec<Vec<f32>> = (0..spec.vocab_size)
            .map(|_| {
                (0..spec.feature_dim)
                    .map(|_| rng.gen_range(-1.0f32..1.0))
                    .collect()
            })
            .collect();

        // Trend schedule: a set of currently trending hashtags, each replaced
        // after an exponentially distributed lifetime.
        let mut trending: Vec<usize> = (0..spec.concurrent_trends)
            .map(|_| rng.gen_range(0..spec.vocab_size))
            .collect();
        let mut expiry: Vec<f64> = (0..spec.concurrent_trends)
            .map(|_| sample_exponential(&mut rng, spec.trend_lifetime_hours))
            .collect();

        let mut posts = Vec::new();
        for hour in 0..spec.total_hours() {
            // Refresh expired trends.
            for slot in 0..spec.concurrent_trends {
                if (hour as f64) >= expiry[slot] {
                    trending[slot] = rng.gen_range(0..spec.vocab_size);
                    expiry[slot] =
                        hour as f64 + sample_exponential(&mut rng, spec.trend_lifetime_hours);
                }
            }
            for _ in 0..spec.posts_per_hour {
                let slot = rng.gen_range(0..spec.concurrent_trends);
                let primary = trending[slot];
                // Secondary hashtag: another trending tag half of the time.
                let mut hashtags = vec![primary];
                if rng.gen_bool(0.5) {
                    let other = trending[rng.gen_range(0..spec.concurrent_trends)];
                    if other != primary {
                        hashtags.push(other);
                    }
                }
                let features: Vec<f32> = directions[primary]
                    .iter()
                    .map(|&d| d + rng.gen_range(-0.3f32..0.3))
                    .collect();
                posts.push(Post {
                    timestamp_hours: hour as f64 + rng.gen_range(0.0..1.0),
                    user_id: rng.gen_range(0..spec.num_users),
                    features,
                    hashtags,
                });
            }
        }
        posts.sort_by(|a, b| {
            a.timestamp_hours
                .partial_cmp(&b.timestamp_hours)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Self {
            spec: spec.clone(),
            posts,
        }
    }

    /// The stream specification.
    pub fn spec(&self) -> &StreamSpec {
        &self.spec
    }

    /// All posts, ordered by timestamp.
    pub fn posts(&self) -> &[Post] {
        &self.posts
    }

    /// Posts with `start_hour <= timestamp < end_hour`.
    pub fn window(&self, start_hour: f64, end_hour: f64) -> Vec<&Post> {
        self.posts
            .iter()
            .filter(|p| p.timestamp_hours >= start_hour && p.timestamp_hours < end_hour)
            .collect()
    }

    /// Posts of one 1-hour chunk (the paper's evaluation granularity).
    pub fn chunk(&self, hour: usize) -> Vec<&Post> {
        self.window(hour as f64, hour as f64 + 1.0)
    }

    /// The hour ranges `(start, end)` of each 2-day shard, as in §3.1.
    pub fn shards(&self) -> Vec<(usize, usize)> {
        let shard_hours = 48;
        (0..self.spec.total_hours())
            .step_by(shard_hours)
            .map(|start| (start, (start + shard_hours).min(self.spec.total_hours())))
            .collect()
    }

    /// Groups a set of posts into per-user mini-batches (the paper groups
    /// training data by user id, so each gradient comes from a single user).
    pub fn group_by_user<'a>(&self, posts: &[&'a Post]) -> Vec<(usize, Vec<&'a Post>)> {
        let mut by_user: Vec<Vec<&Post>> = vec![Vec::new(); self.spec.num_users];
        for &p in posts {
            by_user[p.user_id].push(p);
        }
        by_user
            .into_iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .collect()
    }
}

fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> StreamSpec {
        StreamSpec {
            days: 2,
            posts_per_hour: 10,
            num_users: 5,
            vocab_size: 20,
            feature_dim: 8,
            trend_lifetime_hours: 4.0,
            concurrent_trends: 3,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = small_spec();
        assert_eq!(
            HashtagStream::generate(&spec, 1),
            HashtagStream::generate(&spec, 1)
        );
        assert_ne!(
            HashtagStream::generate(&spec, 1).posts()[0],
            HashtagStream::generate(&spec, 2).posts()[0]
        );
    }

    #[test]
    fn post_count_matches_spec() {
        let spec = small_spec();
        let stream = HashtagStream::generate(&spec, 3);
        assert_eq!(
            stream.posts().len(),
            spec.total_hours() * spec.posts_per_hour
        );
    }

    #[test]
    fn posts_are_time_ordered_and_in_range() {
        let stream = HashtagStream::generate(&small_spec(), 4);
        let mut prev = 0.0;
        for p in stream.posts() {
            assert!(p.timestamp_hours >= prev);
            assert!(p.timestamp_hours < 48.0);
            assert!(p.user_id < 5);
            assert!(!p.hashtags.is_empty());
            assert!(p.hashtags.iter().all(|&h| h < 20));
            prev = p.timestamp_hours;
        }
    }

    #[test]
    fn chunks_partition_the_stream() {
        let stream = HashtagStream::generate(&small_spec(), 5);
        let total: usize = (0..48).map(|h| stream.chunk(h).len()).sum();
        assert_eq!(total, stream.posts().len());
    }

    #[test]
    fn shards_cover_all_hours() {
        let stream = HashtagStream::generate(&small_spec(), 6);
        let shards = stream.shards();
        assert_eq!(shards, vec![(0, 48)]);
        let spec13 = StreamSpec {
            days: 13,
            posts_per_hour: 1,
            ..small_spec()
        };
        let stream13 = HashtagStream::generate(&spec13, 6);
        let shards13 = stream13.shards();
        assert_eq!(shards13.len(), 7);
        assert_eq!(shards13.last().unwrap().1, 13 * 24);
    }

    #[test]
    fn group_by_user_covers_all_posts() {
        let stream = HashtagStream::generate(&small_spec(), 7);
        let chunk = stream.chunk(3);
        let grouped = stream.group_by_user(&chunk);
        let total: usize = grouped.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, chunk.len());
        for (user, posts) in &grouped {
            assert!(posts.iter().all(|p| p.user_id == *user));
        }
    }

    #[test]
    fn hashtag_popularity_is_temporal() {
        // The dominant hashtag of hour 0 should usually differ from the
        // dominant hashtag two days later — the property Figure 6 relies on.
        let spec = StreamSpec {
            days: 4,
            posts_per_hour: 50,
            ..small_spec()
        };
        let stream = HashtagStream::generate(&spec, 11);
        let top_of = |hour: usize| -> usize {
            let mut counts = vec![0usize; spec.vocab_size];
            for p in stream.chunk(hour) {
                counts[p.hashtags[0]] += 1;
            }
            (0..spec.vocab_size).max_by_key(|&i| counts[i]).unwrap()
        };
        let early = top_of(0);
        let late = top_of(72);
        // Not a hard guarantee for every seed, but this seed is fixed.
        assert_ne!(early, late, "trending hashtag should change over days");
    }
}
