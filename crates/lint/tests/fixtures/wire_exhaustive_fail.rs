// Fixture (scanned as a codec file): the silent-drift class. `extra` was
// added to the struct and the encoder, but the decoder was never updated —
// and `encode_orphan` has no decoder at all. Expect two wire-exhaustive
// findings.

pub struct Frame {
    pub version: u32,
    pub payload: Vec<u8>,
    pub extra: u64,
}

pub fn encode_frame(f: &Frame, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&f.version.to_le_bytes());
    buf.extend_from_slice(&(f.payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(&f.payload);
    buf.extend_from_slice(&f.extra.to_le_bytes());
}

pub fn decode_frame(buf: &[u8]) -> Result<Frame, String> {
    let version = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    let payload = buf[12..].to_vec();
    Ok(Frame::with_defaults(version, payload))
}

pub struct Orphan {
    pub id: u64,
}

pub fn encode_orphan(o: &Orphan, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&o.id.to_le_bytes());
}
