//! Kill-restart tests of the durable transport: a server torn down as a
//! crash would be ([`TransportServer::abort`] — no drain, no final
//! checkpoint) must come back from disk with step/lease/task-id continuity,
//! classify retransmitted pre-crash uploads `Duplicate`, and finish the
//! schedule on the uninterrupted run's digest bit-for-bit.

mod common;

use common::{base_config, build_workers, digest, fresh_server, uds_endpoint};
use fleet_server::protocol::TaskResponse;
use fleet_server::{FleetServerConfig, ResultDisposition};
use fleet_transport::{Endpoint, FsyncPolicy, TransportConfig, TransportServer, WorkerClient};
use std::path::{Path, PathBuf};

/// A fresh durable directory under the system temp dir.
fn durable_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fleet-durable-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Tight-cadence durability options (checkpoint every step) so restart
/// exercises both checkpoint restore *and* journal replay.
fn durable_config(dir: &Path, checkpoint_every: u64) -> TransportConfig {
    TransportConfig::builder()
        .durable(dir.to_path_buf())
        .checkpoint_every(checkpoint_every)
        .fsync(FsyncPolicy::Never)
        .build()
        .expect("durable config is valid")
}

/// The long-lease config the crash tests run under: leases must outlive the
/// crash, not expire across it.
fn long_lease_config() -> FleetServerConfig {
    base_config()
        .to_builder()
        .lease_min_rounds(1 << 32)
        .build()
        .expect("long-lease config is valid")
}

/// The reference trajectory: the same schedule through the in-process wire
/// entry points, no transport, no crash.
fn in_process_digest(workers: usize, rounds: usize) -> u64 {
    let mut server = fresh_server(long_lease_config());
    let mut fleet = build_workers(workers);
    for _ in 0..rounds {
        for worker in fleet.iter_mut() {
            match server.handle_request_wire(worker.request_wire()).unwrap() {
                TaskResponse::Assignment(assignment) => {
                    let raw = worker.execute_wire(&assignment).unwrap();
                    server.handle_result_wire(raw).unwrap();
                }
                TaskResponse::Rejected(reason) => panic!("unexpected rejection: {reason:?}"),
            }
        }
    }
    digest(server.parameters())
}

fn bind_durable(endpoint: &Endpoint, dir: &Path, checkpoint_every: u64) -> TransportServer {
    // A crash-style abort leaves the UDS socket file behind, exactly as a
    // real SIGKILL would; the restarting process owns the cleanup.
    if let Endpoint::Uds(path) = endpoint {
        let _ = std::fs::remove_file(path);
    }
    TransportServer::bind(
        endpoint,
        fresh_server(long_lease_config()),
        durable_config(dir, checkpoint_every),
    )
    .expect("bind durable server")
}

#[test]
fn crash_restart_resumes_the_digest_and_dedupes_the_replayed_upload() {
    let dir = durable_dir("restart");
    let endpoint = uds_endpoint("durable-restart");
    let reference = in_process_digest(2, 2);

    let mut fleet = build_workers(2);

    // Round 1 against the first server incarnation, keeping worker 0's raw
    // result bytes — the upload a crashed-and-revived worker retransmits.
    let server = bind_durable(&endpoint, &dir, 1);
    let endpoint = server.endpoint().clone();
    let mut replayed_upload = Vec::new();
    {
        let mut clients: Vec<WorkerClient> = (0..fleet.len())
            .map(|_| WorkerClient::new(endpoint.clone()))
            .collect();
        for (i, (worker, client)) in fleet.iter_mut().zip(clients.iter_mut()).enumerate() {
            match client.request(&worker.request()).expect("request") {
                TaskResponse::Assignment(assignment) => {
                    let raw = worker.execute_wire(&assignment).unwrap().to_vec();
                    let ack = client.submit_raw(&raw).expect("submit");
                    assert_eq!(ack.disposition, ResultDisposition::Applied);
                    if i == 0 {
                        replayed_upload = raw;
                    }
                }
                TaskResponse::Rejected(reason) => panic!("unexpected rejection: {reason:?}"),
            }
        }
        assert_eq!(server.steps(), 2);
        for client in clients.iter_mut() {
            client.disconnect();
        }
    }
    server.abort();

    // Second incarnation: fresh FleetServer, recovered purely from disk.
    let server = bind_durable(&endpoint, &dir, 1);
    assert_eq!(server.steps(), 2, "step counter must survive the crash");

    let mut clients: Vec<WorkerClient> = (0..fleet.len())
        .map(|_| WorkerClient::new(endpoint.clone()))
        .collect();

    // The pre-crash upload, retransmitted bit-for-bit after the restart,
    // must classify Duplicate — never double-apply.
    let ack = clients[0].submit_raw(&replayed_upload).expect("resubmit");
    assert_eq!(ack.disposition, ResultDisposition::Duplicate);
    assert!(!ack.model_updated);
    assert_eq!(server.steps(), 2, "a duplicate is not a step");

    // Round 2 proceeds as if the crash never happened.
    for (worker, client) in fleet.iter_mut().zip(clients.iter_mut()) {
        match client.request(&worker.request()).expect("request") {
            TaskResponse::Assignment(assignment) => {
                let result = worker.execute(&assignment).unwrap();
                let ack = client.submit(&result).expect("submit");
                assert_eq!(ack.disposition, ResultDisposition::Applied);
            }
            TaskResponse::Rejected(reason) => panic!("unexpected rejection: {reason:?}"),
        }
    }
    let state = server.shutdown().expect("shutdown");
    assert_eq!(
        digest(&state.parameter_server.parameters),
        reference,
        "kill-restart must reproduce the uninterrupted digest bit-for-bit"
    );

    let _ = std::fs::remove_dir_all(&dir);
    if let Endpoint::Uds(path) = &endpoint {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn lease_straddling_a_checkpoint_survives_the_restart() {
    let dir = durable_dir("lease");
    let endpoint = uds_endpoint("durable-lease");
    let mut fleet = build_workers(2);

    // Worker 0 takes a lease and goes quiet; worker 1 completes a full
    // exchange, which (checkpoint_every = 1) seals a checkpoint with worker
    // 0's lease still outstanding — the lease straddles the checkpoint.
    let server = bind_durable(&endpoint, &dir, 1);
    let endpoint = server.endpoint().clone();
    // `slow` holds its lease (and its connection) right through the crash:
    // abort() freezes the journal before force-closing connections, so the
    // in-memory reclaim the close triggers is never journaled — exactly what
    // a real SIGKILL leaves behind. The lease must come back outstanding.
    let mut slow = WorkerClient::new(endpoint.clone());
    let straddling = {
        let assignment = match slow.request(&fleet[0].request()).expect("request") {
            TaskResponse::Assignment(a) => a,
            TaskResponse::Rejected(reason) => panic!("unexpected rejection: {reason:?}"),
        };
        let mut other = WorkerClient::new(endpoint.clone());
        match other.request(&fleet[1].request()).expect("request") {
            TaskResponse::Assignment(a) => {
                let result = fleet[1].execute(&a).unwrap();
                assert_eq!(
                    other.submit(&result).expect("submit").disposition,
                    ResultDisposition::Applied
                );
            }
            TaskResponse::Rejected(reason) => panic!("unexpected rejection: {reason:?}"),
        }
        other.disconnect();
        assignment
    };
    server.abort();
    drop(slow);

    let server = bind_durable(&endpoint, &dir, 1);
    let mut client = WorkerClient::new(endpoint.clone());
    let status = client.status().expect("status");
    assert_eq!(status.steps, 1);
    assert_eq!(
        status.outstanding, 1,
        "the straddling lease must be outstanding after recovery"
    );

    // The revived worker finishes its pre-crash task: same task id, applied
    // exactly once.
    let result = fleet[0].execute(&straddling).unwrap();
    let ack = client.submit(&result).expect("submit");
    assert_eq!(ack.disposition, ResultDisposition::Applied);
    assert_eq!(client.status().expect("status").outstanding, 0);

    server.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
    if let Endpoint::Uds(path) = &endpoint {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn restart_after_disk_faults_never_panics_and_serves() {
    // Every deterministic disk-fault scenario — torn journal tail, corrupted
    // checkpoint CRC, vanished newest checkpoint — must leave a directory
    // the next bind recovers from without panicking.
    use fleet_durability::DiskFaultPlan;

    let plan = DiskFaultPlan::new(0xF1EE7);
    for case in 0..6u64 {
        let dir = durable_dir(&format!("fault-{case}"));
        let endpoint = uds_endpoint(&format!("durable-fault-{case}"));
        let mut fleet = build_workers(1);

        let server = bind_durable(&endpoint, &dir, 1);
        let endpoint = server.endpoint().clone();
        {
            let mut client = WorkerClient::new(endpoint.clone());
            for _ in 0..3 {
                match client.request(&fleet[0].request()).expect("request") {
                    TaskResponse::Assignment(a) => {
                        let result = fleet[0].execute(&a).unwrap();
                        assert_eq!(
                            client.submit(&result).expect("submit").disposition,
                            ResultDisposition::Applied
                        );
                    }
                    TaskResponse::Rejected(reason) => panic!("unexpected rejection: {reason:?}"),
                }
            }
            client.disconnect();
        }
        server.abort();

        let fault = plan.inject(&dir, case).expect("inject");
        let server = bind_durable(&endpoint, &dir, 1);
        let steps = server.steps();
        assert!(
            steps <= 3,
            "case {case} ({fault:?}): recovered steps {steps} exceed history"
        );
        // Whatever was lost, the recovered server serves: a fresh worker
        // turn completes against it.
        let mut fresh = build_workers(1);
        let mut client = WorkerClient::new(server.endpoint().clone());
        match client.request(&fresh[0].request()).expect("request") {
            TaskResponse::Assignment(a) => {
                let result = fresh[0].execute(&a).unwrap();
                client.submit(&result).expect("submit");
            }
            TaskResponse::Rejected(reason) => panic!("unexpected rejection: {reason:?}"),
        }
        server.shutdown().expect("shutdown");
        let _ = std::fs::remove_dir_all(&dir);
        if let Endpoint::Uds(path) = &endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}
