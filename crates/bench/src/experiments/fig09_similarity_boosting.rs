//! Figure 9: long-tail staleness — every gradient touching class 0 is a
//! straggler with staleness 4·τ_thres = 48. AdaSGD's similarity boosting lets
//! the model learn class 0 anyway; DynSGD (no boosting) lags. Also reports
//! the CDF of the gradient scaling factors (Fig. 9b).

use crate::experiments::common;
use crate::{ExperimentWriter, Scale};
use fleet_core::{AdaSgd, Aggregator, DynSgd, Ssgd};
use fleet_server::{AsyncSimulation, SimulationConfig, StalenessDistribution, TrainingHistory};

fn config(scale: Scale) -> SimulationConfig {
    SimulationConfig::builder()
        .steps(scale.pick(400, 2500))
        .learning_rate(0.03)
        .batch_size(scale.pick(50, 100))
        .staleness(StalenessDistribution::d1())
        .class_straggler(0, 48)
        .track_class(0)
        .eval_every(scale.pick(60, 100))
        .eval_examples(800)
        .seed(13)
        .build()
        .expect("fig09 config is valid")
}

fn run_one<A: Aggregator>(world: &common::World, scale: Scale, aggregator: A) -> TrainingHistory {
    let mut cfg = config(scale);
    if aggregator.name() == "SSGD" {
        cfg.staleness = StalenessDistribution::None;
        cfg.class_straggler = None;
    }
    let sim = AsyncSimulation::new(&world.train, &world.test, &world.users, cfg);
    let mut model = common::model(world.train.num_classes(), 2);
    sim.run(&mut model, aggregator)
}

/// Runs the Fig. 9 experiment (class-0 accuracy + dampening-factor CDF).
pub fn run(scale: Scale) {
    let mut out = ExperimentWriter::new("fig09_similarity_boosting");
    out.comment("Figure 9a: accuracy for class 0 when all class-0 gradients have staleness 48");
    let world = common::mnist_non_iid(scale.pick(2000, 6000), 100, 77);

    // τ_thres is pinned to 12 (the D1 value) exactly as in the paper, so the
    // injected 48-step stragglers do not inflate the percentile estimate.
    let runs = vec![
        (
            "AdaSGD".to_string(),
            run_one(
                &world,
                scale,
                AdaSgd::new(10, 99.7).with_fixed_tau_thres(12),
            ),
        ),
        (
            "AdaSGD (no boost)".to_string(),
            run_one(
                &world,
                scale,
                AdaSgd::new(10, 99.7)
                    .with_fixed_tau_thres(12)
                    .without_similarity_boost(),
            ),
        ),
        ("DynSGD".to_string(), run_one(&world, scale, DynSgd::new())),
        (
            "SSGD (ideal)".to_string(),
            run_one(&world, scale, Ssgd::new()),
        ),
    ];

    out.row("algorithm,step,class0_accuracy,overall_accuracy");
    for (name, history) in &runs {
        for e in &history.evals {
            out.row(format!(
                "{name},{},{:.4},{:.4}",
                e.step,
                e.class_accuracy.unwrap_or(0.0),
                e.accuracy
            ));
        }
    }

    out.comment("Figure 9b: CDF of the gradient scaling factors");
    out.row("algorithm,scaling_factor_percentile,scaling_factor");
    for (name, history) in &runs {
        if name.starts_with("SSGD") {
            continue;
        }
        let mut factors = history.scaling_factors.clone();
        factors.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        for pct in [1, 5, 10, 25, 50, 75, 90, 95, 99] {
            let idx = ((pct as f64 / 100.0) * (factors.len().saturating_sub(1)) as f64) as usize;
            if let Some(f) = factors.get(idx) {
                out.row(format!("{name},{pct},{f:.5}"));
            }
        }
    }
    out.finish();
}
