//! Shared helpers for the workspace-level integration tests (see `tests/`).

use fleet_data::partition::{non_iid_shards, UserPartition};
use fleet_data::synthetic::{generate, SyntheticSpec};
use fleet_data::Dataset;
use fleet_ml::models::mlp_classifier;
use fleet_ml::Sequential;

/// Builds a small non-IID federated classification world used by several
/// integration tests: 10 classes, 32 features, `examples` examples split over
/// `users` users.
pub fn small_world(examples: usize, users: usize, seed: u64) -> (Dataset, Dataset, UserPartition) {
    let data = generate(&SyntheticSpec::vector(10, 32, examples), seed);
    let (train, test) = data.split(0.2);
    let partition = non_iid_shards(&train, users, 2, seed + 1);
    (train, test, partition)
}

/// A model matching [`small_world`] datasets.
pub fn small_model(seed: u64) -> Sequential {
    mlp_classifier(32, &[32], 10, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_consistent_shapes() {
        let (train, test, users) = small_world(500, 10, 1);
        assert_eq!(train.num_classes(), 10);
        assert_eq!(train.feature_len(), 32);
        assert!(!test.is_empty());
        assert_eq!(users.len(), 10);
        let model = small_model(0);
        assert!(model.parameter_count() > 0);
    }
}
