//! Torn-frame / garbage-bytes fuzzing against a live server: every prefix
//! of a valid frame, with and without random tails, is thrown at a real
//! connection. The invariant under test is the robustness contract — a bad
//! peer kills its own connection, never the server, and clean connections
//! keep working throughout.

mod common;

use common::{base_config, build_workers, digest, fresh_server, uds_endpoint};
use fleet_server::protocol::TaskResponse;
use fleet_server::ResultDisposition;
use fleet_transport::{
    frame, FrameKind, Stream, TransportConfig, TransportServer, WorkerClient, MAX_FRAME_LEN,
};
use std::io::Write;
use std::time::Duration;

/// Tiny deterministic xorshift so the "random" tails are reproducible.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| (self.next() & 0xff) as u8).collect()
    }
}

/// One clean protocol exchange; proves the server is alive and consistent.
fn clean_exchange(endpoint: &fleet_transport::Endpoint, worker: &mut fleet_server::Worker) {
    let mut client = WorkerClient::new(endpoint.clone());
    match client.request(&worker.request()).expect("request") {
        TaskResponse::Assignment(a) => {
            let ack = client
                .submit(&worker.execute(&a).expect("execute"))
                .expect("submit");
            assert_eq!(ack.disposition, ResultDisposition::Applied);
        }
        TaskResponse::Rejected(r) => panic!("rejected: {r:?}"),
    }
}

#[test]
fn every_prefix_of_a_valid_frame_leaves_the_server_standing() {
    let server = TransportServer::bind(
        &uds_endpoint("fuzz"),
        fresh_server(base_config()),
        TransportConfig::builder()
            // Keep the fuzz loop brisk: a torn prefix parks its connection
            // until the frame deadline lapses, and the deadline threads all
            // resolve concurrently.
            .read_budget(Duration::from_millis(200))
            .build()
            .expect("fuzz config is valid"),
    )
    .expect("bind");
    let endpoint = server.endpoint().clone();
    let mut fleet = build_workers(1);

    // A genuine request frame, exactly as a well-behaved client sends it.
    let payload = fleet[0].request_wire().to_vec();
    let mut valid = Vec::new();
    frame::write_frame(&mut valid, FrameKind::Request, &payload).expect("frame");

    let mut rng = XorShift(0x5eed_f1ee7);
    for cut in 0..valid.len() {
        // The bare prefix (peer died mid-send) ...
        let mut conn = Stream::connect(&endpoint).expect("connect");
        conn.write_all(&valid[..cut]).expect("prefix");
        drop(conn);

        // ... and the prefix with a garbage tail (corruption in flight).
        let mut conn = Stream::connect(&endpoint).expect("connect");
        let mut corrupted = valid[..cut].to_vec();
        let tail_len = 1 + (rng.next() as usize % 32);
        corrupted.extend(rng.bytes(tail_len));
        // The write may fail once the server cuts the connection mid-tail;
        // that is the contract working, not a test failure.
        let _ = conn.write_all(&corrupted);
        drop(conn);

        // Every 16th offset, prove a full clean exchange still works.
        if cut % 16 == 0 {
            clean_exchange(&endpoint, &mut fleet[0]);
        }
    }

    // The server survived the whole barrage and still advances the model.
    let before = server.steps();
    clean_exchange(&endpoint, &mut fleet[0]);
    assert_eq!(server.steps(), before + 1);
    let state = server.shutdown().expect("shutdown");
    assert_ne!(
        digest(&state.parameter_server.parameters),
        digest(&common::model_parameters()),
        "the clean exchanges interleaved with the fuzzing must have applied"
    );
}

#[test]
fn hostile_headers_get_an_error_frame_then_the_boot() {
    let server = TransportServer::bind(
        &uds_endpoint("hostile"),
        fresh_server(base_config()),
        TransportConfig::default(),
    )
    .expect("bind");
    let endpoint = server.endpoint().clone();
    let mut fleet = build_workers(1);

    let hostile: Vec<(&str, Vec<u8>)> = vec![
        ("oversized length", {
            let mut raw = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec();
            raw.push(FrameKind::Request.as_byte());
            raw
        }),
        ("zero length", 0u32.to_le_bytes().to_vec()),
        ("unknown kind", {
            let mut raw = 2u32.to_le_bytes().to_vec();
            raw.extend_from_slice(&[250, 0]);
            raw
        }),
        ("well-framed garbage payload", {
            let mut raw = Vec::new();
            frame::write_frame(&mut raw, FrameKind::Request, &[0xde, 0xad, 0xbe, 0xef])
                .expect("frame");
            raw
        }),
        ("server-to-worker kind from a worker", {
            let mut raw = Vec::new();
            frame::write_frame(&mut raw, FrameKind::Ack, &[1, 2, 3]).expect("frame");
            raw
        }),
    ];
    for (what, bytes) in hostile {
        let mut conn = Stream::connect(&endpoint).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        conn.write_all(&bytes).expect(what);
        // The server answers with an Error frame, then closes.
        let (kind, reply) = frame::read_frame(&mut conn, MAX_FRAME_LEN)
            .unwrap_or_else(|e| panic!("{what}: expected an Error frame, got {e:?}"));
        assert_eq!(kind, FrameKind::Error, "{what}");
        assert!(!reply.is_empty(), "{what}: the diagnostic names the fault");
        assert!(
            matches!(
                frame::read_frame(&mut conn, MAX_FRAME_LEN),
                Err(frame::FrameError::Closed)
            ),
            "{what}: the connection must be closed after the Error frame"
        );
        // And the server is still there for honest peers.
        clean_exchange(&endpoint, &mut fleet[0]);
    }
    server.shutdown().expect("shutdown");
}
