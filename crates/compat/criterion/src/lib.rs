//! Offline micro-benchmark harness exposing the `criterion` API subset the
//! workspace benches use (`bench_function`, `bench_with_input`,
//! `criterion_group!`, `criterion_main!`, `black_box`, `BenchmarkId`).
//!
//! Timing model: a short warm-up, then adaptive batches until the measurement
//! budget (`FLEET_BENCH_TIME_MS`, default 300 ms per benchmark) is spent.
//! Reports mean ns/iter on stdout and, when `FLEET_BENCH_JSON` names a file,
//! writes every result of the process to it as machine-readable JSON — this is
//! how `BENCH_kernels.json` is produced for the perf trajectory (see
//! `scripts/ci.sh`).

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (including the `BenchmarkId` parameter, if any).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Total iterations measured (excluding warm-up).
    pub iterations: u64,
}

static ALL_RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Identifier combining a group name and a parameter, as in criterion.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            full: format!("{}/{parameter}", name.into()),
        }
    }
}

/// Drives timed iterations of one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    measured_ns: f64,
    iterations: u64,
    budget: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records its mean cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: let allocators/caches settle and estimate per-iter cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < self.budget / 10 && warmup_iters < 1_000_000 {
            black_box(f());
            warmup_iters += 1;
        }
        let est_ns =
            (warmup_start.elapsed().as_nanos() as f64 / warmup_iters.max(1) as f64).max(1.0);
        let batch = ((10_000_000.0 / est_ns).ceil() as u64).clamp(1, 1_000_000);

        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.budget {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
        }
        self.measured_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        self.iterations = iters;
    }
}

/// The benchmark registry for one group run.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    fn run_one(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        let budget_ms = std::env::var("FLEET_BENCH_TIME_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        let mut bencher = Bencher {
            measured_ns: 0.0,
            iterations: 0,
            budget: Duration::from_millis(budget_ms),
        };
        f(&mut bencher);
        let result = BenchResult {
            name: name.to_string(),
            mean_ns: bencher.measured_ns,
            iterations: bencher.iterations,
        };
        println!(
            "bench {:<48} {:>14.1} ns/iter ({} iters)",
            result.name, result.mean_ns, result.iterations
        );
        self.results.push(result);
    }

    /// Benchmarks a closure under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, |b| f(b));
        self
    }

    /// Benchmarks a closure over an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(&id.full.clone(), |b| f(b, input));
        self
    }

    /// Publishes this group's results; called by `criterion_main!`.
    pub fn finalize(self) {
        let mut all = ALL_RESULTS.lock().unwrap();
        all.extend(self.results);
        if let Ok(path) = std::env::var("FLEET_BENCH_JSON") {
            let json = render_json(&all);
            if let Err(err) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {path}: {err}");
            }
        }
    }
}

/// ISA features the host CPU reports, for the bench metadata. Perf numbers
/// are only comparable between hosts whose feature lists match, so the list
/// rides along in every JSON artifact.
fn detected_isa_features() -> Vec<&'static str> {
    #[cfg(target_arch = "x86_64")]
    {
        let mut features = Vec::new();
        if std::arch::is_x86_feature_detected!("sse2") {
            features.push("sse2");
        }
        if std::arch::is_x86_feature_detected!("avx") {
            features.push("avx");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            features.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            features.push("fma");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            features.push("avx512f");
        }
        features
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Vec::new()
    }
}

/// Escapes a string for embedding in a JSON document: backslash, quote, and
/// control characters — env values and bench names are arbitrary bytes, and
/// one stray `\` must not invalidate the whole perf artifact.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a JSON string field whose value may be an absent env var.
fn json_env(name: &str) -> String {
    match std::env::var(name) {
        Ok(v) => format!("\"{}\"", json_escape(&v)),
        Err(_) => "null".to_string(),
    }
}

fn render_json(results: &[BenchResult]) -> String {
    // Self-describing metadata: a bench artifact from a single-core host or
    // a SIMD-disabled sweep must say so, or its numbers will be compared
    // against runs from a different configuration.
    let features = detected_isa_features()
        .iter()
        .map(|f| format!("\"{f}\""))
        .collect::<Vec<_>>()
        .join(", ");
    let parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Whether the workspace's fan-outs (shard application, kernel rows,
    // simulation rounds) ran inline during this record: FLEET_NUM_THREADS
    // wins when set (mirroring fleet_parallel::max_threads), else the host's
    // parallelism decides. A single-core artifact's multi-shard/multi-thread
    // numbers measure the serial path — flag it so downstream comparisons
    // (scripts/bench_compare.py) can say so instead of misreading flat
    // scaling curves.
    let effective_threads = std::env::var("FLEET_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(parallelism);
    let fan_out_inline = effective_threads <= 1;
    let mut out = String::from("{\n  \"schema\": \"fleet-bench-v2\",\n  \"meta\": {\n");
    let _ = writeln!(
        out,
        "    \"fleet_num_threads\": {},\n    \"fleet_simd\": {},\n    \"available_parallelism\": {parallelism},\n    \"fan_out_inline\": {fan_out_inline},\n    \"isa_features\": [{features}]\n  }},",
        json_env("FLEET_NUM_THREADS"),
        json_env("FLEET_SIMD"),
    );
    out.push_str("  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}}}{comma}",
            json_escape(&r.name),
            r.mean_ns,
            r.iterations
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
            c.finalize();
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("FLEET_BENCH_TIME_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].mean_ns >= 0.0);
        assert!(c.results[0].iterations > 0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let json = render_json(&[BenchResult {
            name: "matmul".into(),
            mean_ns: 12.5,
            iterations: 100,
        }]);
        assert!(json.contains("\"fleet-bench-v2\""));
        assert!(json.contains("\"matmul\""));
        assert!(json.contains("\"fleet_num_threads\""));
        assert!(json.contains("\"isa_features\""));
        assert!(json.contains("\"available_parallelism\""));
        assert!(json.contains("\"fan_out_inline\""));
        assert!(json.ends_with("}\n"));
    }
}
