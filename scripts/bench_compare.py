#!/usr/bin/env python3
"""Compare a fresh fleet-bench JSON artifact against a committed baseline.

Usage:
    bench_compare.py BASELINE.json FRESH.json [--max-slowdown R]

Exits non-zero when any benchmark present in both files slowed down by more
than the threshold (relative: fresh_mean / baseline_mean > R). Benchmarks
present on only one side are reported but never fail the gate (they are new
or retired, not regressed). Stdlib only — this runs inside the CI container.

The threshold defaults to 1.5 (50% slowdown) and can be overridden with
--max-slowdown or the FLEET_BENCH_MAX_SLOWDOWN environment variable; bench
smokes run with short measurement windows on shared CI hosts, so tight
thresholds would flake.
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    benchmarks = {b["name"]: float(b["mean_ns"]) for b in doc.get("benchmarks", [])}
    return doc, benchmarks


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=float(os.environ.get("FLEET_BENCH_MAX_SLOWDOWN", "1.5")),
        help="maximum allowed fresh/baseline mean ratio (default 1.5)",
    )
    args = parser.parse_args()

    base_doc, base = load(args.baseline)
    fresh_doc, fresh = load(args.fresh)

    meta = fresh_doc.get("meta", {})
    if meta.get("fan_out_inline", meta.get("available_parallelism") == 1):
        print(
            "bench_compare: NOTE: this host runs the shard/kernel fan-out "
            "inline (single effective core), so multi-shard and multi-thread "
            "numbers measure the serial path — absolute comparisons against "
            "multi-core baselines are meaningless (see the PR 2 caveat in "
            "ROADMAP.md)."
        )
    base_meta = base_doc.get("meta", {})
    for key in ("available_parallelism", "fleet_num_threads", "fleet_simd"):
        if base_meta.get(key) != meta.get(key):
            print(
                f"bench_compare: NOTE: meta '{key}' differs "
                f"(baseline={base_meta.get(key)!r}, fresh={meta.get(key)!r}); "
                "ratios may reflect configuration, not code."
            )

    failures = []
    for name in sorted(set(base) | set(fresh)):
        if name not in base:
            print(f"bench_compare: new benchmark {name}: {fresh[name]:.1f} ns (no baseline)")
            continue
        if name not in fresh:
            print(f"bench_compare: benchmark {name} retired (baseline {base[name]:.1f} ns)")
            continue
        if base[name] <= 0.0:
            print(f"bench_compare: skipping {name}: non-positive baseline mean")
            continue
        ratio = fresh[name] / base[name]
        marker = "OK"
        if ratio > args.max_slowdown:
            marker = "REGRESSION"
            failures.append((name, ratio))
        print(
            f"bench_compare: {marker:>10} {name}: {base[name]:.1f} -> "
            f"{fresh[name]:.1f} ns ({ratio:.2f}x)"
        )

    if failures:
        worst = max(failures, key=lambda f: f[1])
        print(
            f"bench_compare: FAIL: {len(failures)} benchmark(s) exceeded the "
            f"{args.max_slowdown:.2f}x slowdown threshold "
            f"(worst: {worst[0]} at {worst[1]:.2f}x)"
        )
        return 1
    print(f"bench_compare: all shared benchmarks within {args.max_slowdown:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
