//! No-op stand-in for `serde`'s derive macros.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as forward
//! declarations of wire-format intent — nothing actually serializes through
//! serde yet (the real wire codec lives in `fleet_server::wire`). This crate
//! keeps those derives compiling in a network-less build by expanding them to
//! nothing. When a registry is reachable, point the workspace `serde` entry
//! back at crates.io and everything keeps working unchanged.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Expands to nothing; accepts any item `serde::Serialize` would.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts any item `serde::Deserialize` would.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
