// Fixture: things that *look* like unsafe sites but are not. Expect zero
// findings and an empty unsafe inventory.

// The word unsafe { } in a comment is prose, not code.

pub fn strings_and_docs() -> &'static str {
    let _raw = r#"unsafe { transmute() } inside a raw string"#;
    let _bytes = b"unsafe { } in a byte string";
    "unsafe { *ptr }"
}

/* Block comments mentioning unsafe impl Send are prose too,
   /* even nested ones: unsafe trait X {} */
   still prose. */

/// Function *pointer types* are types, not sites with bodies to justify.
pub struct Table {
    pub call: Option<unsafe fn(*const (), usize)>,
}
