//! Regenerates the corresponding table/figure of the paper. Pass `--quick`
//! for a fast smoke-test configuration.
fn main() {
    fleet_bench::experiments::fig09_similarity_boosting::run(fleet_bench::Scale::from_args());
}
