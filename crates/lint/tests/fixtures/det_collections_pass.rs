// Fixture: hash maps used in order-insensitive ways, plus one justified
// iteration. Expect zero findings (one suppressed).

use std::collections::{HashMap, HashSet};

pub struct Registry {
    models: HashMap<u64, String>,
}

impl Registry {
    pub fn lookups(&self, id: u64) -> (bool, usize, Option<&String>) {
        // Point queries and size checks never observe iteration order.
        (self.models.contains_key(&id), self.models.len(), self.models.get(&id))
    }

    pub fn sorted_export(&self) -> Vec<(u64, String)> {
        let mut out: Vec<(u64, String)> = self
            // lint:allow(det-collections): sorted by key on the next line
            // before anything can observe the hash order.
            .models
            .iter()
            .map(|(&k, v)| (k, v.clone()))
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }
}

pub fn membership(xs: &[u64]) -> usize {
    let seen: HashSet<u64> = xs.iter().copied().collect();
    xs.iter().filter(|x| seen.contains(x)).count()
}
