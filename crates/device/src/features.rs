//! Device state observable through the stock Android API.
//!
//! I-Prof's design constraint (§2.2 of the paper) is to use only measurements
//! available without root access: available memory, total memory, temperature
//! and the sum of the maximum CPU frequencies, plus the energy consumed per
//! non-idle CPU second for the energy predictor.

use serde::{Deserialize, Serialize};

/// A snapshot of the device state sent with every learning-task request
/// (step 1 of the protocol in Fig. 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceFeatures {
    /// Memory currently available, in MB.
    pub available_memory_mb: f32,
    /// Total device memory, in MB.
    pub total_memory_mb: f32,
    /// Battery/SoC temperature in degrees Celsius.
    pub temperature_celsius: f32,
    /// Sum of the maximum frequency over all CPU cores, in GHz.
    pub sum_max_freq_ghz: f32,
    /// Energy consumed per non-idle CPU second, as a fraction of battery
    /// capacity per second (the extra feature used by the energy predictor).
    pub energy_per_cpu_second: f32,
}

impl DeviceFeatures {
    /// Feature vector used by the computation-time predictor:
    /// `[1, available_memory_gb, total_memory_gb, temperature/100, sum_max_freq_ghz, 1/sum_max_freq_ghz]`.
    ///
    /// The leading 1 is the intercept; the reciprocal-frequency feature lets a
    /// linear model capture the inverse relation between clock speed and the
    /// per-sample computation time.
    pub fn latency_features(&self) -> Vec<f32> {
        vec![
            1.0,
            self.available_memory_mb / 1024.0,
            self.total_memory_mb / 1024.0,
            self.temperature_celsius / 100.0,
            self.sum_max_freq_ghz,
            1.0 / self.sum_max_freq_ghz.max(0.1),
        ]
    }

    /// Feature vector used by the energy predictor: the latency features plus
    /// the energy-per-CPU-second feature (scaled to a comparable magnitude).
    pub fn energy_features(&self) -> Vec<f32> {
        let mut f = self.latency_features();
        f.push(self.energy_per_cpu_second * 1000.0);
        f
    }

    /// Number of entries in [`DeviceFeatures::latency_features`].
    pub const LATENCY_DIM: usize = 6;
    /// Number of entries in [`DeviceFeatures::energy_features`].
    pub const ENERGY_DIM: usize = 7;
}

impl Default for DeviceFeatures {
    fn default() -> Self {
        Self {
            available_memory_mb: 2048.0,
            total_memory_mb: 4096.0,
            temperature_celsius: 30.0,
            sum_max_freq_ghz: 10.0,
            energy_per_cpu_second: 2e-5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_feature_dimension() {
        let f = DeviceFeatures::default();
        assert_eq!(f.latency_features().len(), DeviceFeatures::LATENCY_DIM);
        assert_eq!(f.latency_features()[0], 1.0);
    }

    #[test]
    fn energy_features_extend_latency_features() {
        let f = DeviceFeatures::default();
        let lat = f.latency_features();
        let en = f.energy_features();
        assert_eq!(en.len(), DeviceFeatures::ENERGY_DIM);
        assert_eq!(&en[..lat.len()], lat.as_slice());
    }

    #[test]
    fn reciprocal_frequency_is_guarded() {
        let f = DeviceFeatures {
            sum_max_freq_ghz: 0.0,
            ..DeviceFeatures::default()
        };
        assert!(f.latency_features()[5].is_finite());
    }

    #[test]
    fn hotter_device_changes_features() {
        let cold = DeviceFeatures::default();
        let hot = DeviceFeatures {
            temperature_celsius: 45.0,
            ..cold
        };
        assert_ne!(cold.latency_features(), hot.latency_features());
    }
}
