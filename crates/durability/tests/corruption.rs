//! Corruption fuzz for the durable store, mirroring the transport's
//! `torn_frames.rs`: for *every* truncation offset of every on-disk file and
//! for every planned bit flip, recovery must never panic and must land on a
//! valid prior state — a checkpoint that was actually written and a record
//! suffix that is a contiguous prefix of the actual history.

use fleet_durability::{
    DiskFault, DiskFaultPlan, DurabilityOptions, DurableStore, EventKind, FsyncPolicy,
    JournalRecord, Recovered,
};
use std::fs;
use std::path::{Path, PathBuf};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fleet-corrupt-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn options(dir: &Path) -> DurabilityOptions {
    let mut options = DurabilityOptions::new(dir.to_path_buf());
    options.fsync = FsyncPolicy::Never;
    options
}

fn payload(tag: u64) -> Vec<u8> {
    (0..16)
        .map(|i| (tag as u8).wrapping_mul(31).wrapping_add(i))
        .collect()
}

/// Builds the reference timeline: checkpoint gen 1 (empty), records 1..=5,
/// checkpoint gen 2, records 6..=9. Returns (directory, expected records).
fn build_timeline(tag: &str) -> (PathBuf, Vec<JournalRecord>) {
    let dir = scratch(tag);
    let (mut store, recovered) = DurableStore::open(&options(&dir)).unwrap();
    assert_eq!(
        recovered,
        Recovered {
            checkpoint: None,
            records: Vec::new()
        }
    );
    store.begin(bytes::Bytes::from(payload(100)), 0, 0).unwrap();
    let mut records = Vec::new();
    for seq in 1..=5u64 {
        let kind = if seq % 2 == 0 {
            EventKind::Result
        } else {
            EventKind::Request
        };
        store
            .append(kind, bytes::Bytes::from(payload(seq)))
            .unwrap();
        records.push(JournalRecord {
            seq,
            kind,
            payload: bytes::Bytes::from(payload(seq)),
        });
    }
    store
        .checkpoint(bytes::Bytes::from(payload(200)), 5)
        .unwrap();
    for seq in 6..=9u64 {
        store
            .append(EventKind::Request, bytes::Bytes::from(payload(seq)))
            .unwrap();
        records.push(JournalRecord {
            seq,
            kind: EventKind::Request,
            payload: bytes::Bytes::from(payload(seq)),
        });
    }
    (dir, records)
}

/// The validity predicate every corrupted recovery must satisfy: the
/// recovered checkpoint is one of the two actually written, and the records
/// chain contiguously from it as a prefix of the true history.
fn assert_valid_prior_state(recovered: &Recovered, truth: &[JournalRecord], context: &str) {
    let base_seq = match &recovered.checkpoint {
        None => 0,
        Some(doc) => {
            match doc.generation {
                1 => {
                    assert_eq!(doc.seq, 0, "{context}: gen 1 covers seq 0");
                    assert_eq!(
                        doc.payload.to_vec(),
                        payload(100),
                        "{context}: gen 1 payload"
                    );
                }
                2 => {
                    assert_eq!(doc.seq, 5, "{context}: gen 2 covers seq 5");
                    assert_eq!(
                        doc.payload.to_vec(),
                        payload(200),
                        "{context}: gen 2 payload"
                    );
                }
                other => panic!("{context}: recovered unwritten generation {other}"),
            }
            doc.seq
        }
    };
    for (i, record) in recovered.records.iter().enumerate() {
        let seq = base_seq + 1 + i as u64;
        assert_eq!(record.seq, seq, "{context}: gap in recovered records");
        let truth_record = &truth[seq as usize - 1];
        assert_eq!(
            record, truth_record,
            "{context}: recovered record diverges from history"
        );
    }
}

/// Copies the timeline into a fresh directory with one file replaced.
fn with_mutated_file(src: &Path, victim: &str, content: &[u8], tag: &str) -> PathBuf {
    let dir = scratch(tag);
    fs::create_dir_all(&dir).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == victim {
            fs::write(dir.join(&name), content).unwrap();
        } else {
            fs::copy(entry.path(), dir.join(&name)).unwrap();
        }
    }
    dir
}

fn timeline_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = fs::read_dir(dir)
        .unwrap()
        .map(|entry| {
            let entry = entry.unwrap();
            let name = entry.file_name().to_string_lossy().into_owned();
            let raw = fs::read(entry.path()).unwrap();
            (name, raw)
        })
        .collect();
    files.sort();
    files
}

#[test]
fn truncation_at_every_offset_of_every_file_recovers_validly() {
    let (dir, truth) = build_timeline("trunc-src");
    for (name, raw) in timeline_files(&dir) {
        for len in 0..raw.len() {
            let scratch_dir = with_mutated_file(&dir, &name, &raw[..len], "trunc-scratch");
            let (_store, recovered) = DurableStore::open(&options(&scratch_dir))
                .unwrap_or_else(|err| panic!("{name} truncated to {len}: open failed: {err}"));
            assert_valid_prior_state(&recovered, &truth, &format!("{name} truncated to {len}"));
            fs::remove_dir_all(&scratch_dir).unwrap();
        }
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_flips_in_every_byte_recover_validly() {
    let (dir, truth) = build_timeline("flip-src");
    let plan = DiskFaultPlan::new(0xB17F11B5);
    for (name, raw) in timeline_files(&dir) {
        for byte in 0..raw.len() {
            let mut flipped = raw.clone();
            flipped[byte] ^= plan.corruption_mask(byte as u64);
            let scratch_dir = with_mutated_file(&dir, &name, &flipped, "flip-scratch");
            let (_store, recovered) = DurableStore::open(&options(&scratch_dir))
                .unwrap_or_else(|err| panic!("{name} flipped at {byte}: open failed: {err}"));
            assert_valid_prior_state(&recovered, &truth, &format!("{name} flipped at {byte}"));
            fs::remove_dir_all(&scratch_dir).unwrap();
        }
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn planned_fault_scenarios_recover_and_reopen() {
    // Drive the store through DiskFaultPlan::inject for a spread of cases:
    // whatever the planned fault, recovery must land on a valid prior state
    // and the store must accept a fresh generation afterwards.
    let plan = DiskFaultPlan::new(42);
    let mut seen = [false; 3];
    for case in 0..24u64 {
        let (dir, truth) = build_timeline(&format!("plan-{case}"));
        let fault = plan.inject(&dir, case).unwrap();
        match fault {
            DiskFault::TornTail => seen[0] = true,
            DiskFault::CorruptCrc => seen[1] = true,
            DiskFault::MissingNewest => seen[2] = true,
        }
        let (mut store, recovered) = DurableStore::open(&options(&dir)).unwrap();
        assert_valid_prior_state(&recovered, &truth, &format!("case {case} ({fault:?})"));
        // The store stays writable after the fault: a new generation seals
        // the recovered state and the next open sees it.
        store
            .begin(bytes::Bytes::from(payload(300)), recovered.last_seq(), 0)
            .unwrap();
        let (_store, reopened) = DurableStore::open(&options(&dir)).unwrap();
        assert_eq!(reopened.checkpoint.unwrap().payload.to_vec(), payload(300));
        assert!(reopened.records.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
    assert_eq!(
        seen,
        [true, true, true],
        "all three scenarios must be exercised"
    );
}
