//! In-memory labelled dataset.

use fleet_ml::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A labelled classification dataset held in memory.
///
/// Features are stored flat (`examples x feature_len`); `feature_shape`
/// records the per-example shape (e.g. `[1, 8, 8]` for image data) so that
/// batches can be reassembled into the tensor layout a CNN expects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Vec<f32>,
    labels: Vec<usize>,
    feature_shape: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` is not `labels.len() * product(feature_shape)`
    /// or if a label is `>= num_classes`.
    pub fn new(
        features: Vec<f32>,
        labels: Vec<usize>,
        feature_shape: Vec<usize>,
        num_classes: usize,
    ) -> Self {
        let per_example: usize = feature_shape.iter().product();
        assert_eq!(
            features.len(),
            labels.len() * per_example,
            "feature length {} does not match {} examples of shape {:?}",
            features.len(),
            labels.len(),
            feature_shape
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range for {num_classes} classes"
        );
        Self {
            features,
            labels,
            feature_shape,
            num_classes,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Shape of one example's features.
    pub fn feature_shape(&self) -> &[usize] {
        &self.feature_shape
    }

    /// Number of feature values per example.
    pub fn feature_len(&self) -> usize {
        self.feature_shape.iter().product()
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The label of example `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn label(&self, index: usize) -> usize {
        self.labels[index]
    }

    /// Features of example `index` as a flat slice.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn example(&self, index: usize) -> &[f32] {
        let len = self.feature_len();
        &self.features[index * len..(index + 1) * len]
    }

    /// Builds a batch tensor (`[batch, ...feature_shape]`) and label vector
    /// from example indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let len = self.feature_len();
        let mut data = Vec::with_capacity(indices.len() * len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.example(i));
            labels.push(self.labels[i]);
        }
        let mut shape = vec![indices.len()];
        shape.extend_from_slice(&self.feature_shape);
        (Tensor::from_vec(data, &shape), labels)
    }

    /// Splits into `(train, test)` where `test_fraction` of the examples
    /// (rounded down) go to the test set, keeping the original order.
    ///
    /// # Panics
    ///
    /// Panics if `test_fraction` is not within `[0, 1]`.
    pub fn split(&self, test_fraction: f32) -> (Dataset, Dataset) {
        assert!(
            (0.0..=1.0).contains(&test_fraction),
            "test_fraction must be in [0, 1]"
        );
        let test_len = (self.len() as f32 * test_fraction) as usize;
        let train_len = self.len() - test_len;
        let per = self.feature_len();
        let train = Dataset::new(
            self.features[..train_len * per].to_vec(),
            self.labels[..train_len].to_vec(),
            self.feature_shape.clone(),
            self.num_classes,
        );
        let test = Dataset::new(
            self.features[train_len * per..].to_vec(),
            self.labels[train_len..].to_vec(),
            self.feature_shape.clone(),
            self.num_classes,
        );
        (train, test)
    }

    /// Returns a new dataset containing only the given example indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let per = self.feature_len();
        let mut features = Vec::with_capacity(indices.len() * per);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            features.extend_from_slice(self.example(i));
            labels.push(self.labels[i]);
        }
        Dataset::new(
            features,
            labels,
            self.feature_shape.clone(),
            self.num_classes,
        )
    }

    /// Counts examples per class.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
            vec![0, 1, 0, 1],
            vec![2],
            2,
        )
    }

    #[test]
    fn basic_accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.feature_len(), 2);
        assert_eq!(d.example(1), &[2.0, 3.0]);
        assert_eq!(d.label(3), 1);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_lengths_panic() {
        Dataset::new(vec![1.0, 2.0, 3.0], vec![0, 1], vec![2], 2);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn out_of_range_label_panics() {
        Dataset::new(vec![1.0, 2.0], vec![5], vec![2], 2);
    }

    #[test]
    fn batch_builds_tensor() {
        let d = toy();
        let (x, y) = d.batch(&[0, 2]);
        assert_eq!(x.shape(), &[2, 2]);
        assert_eq!(x.data(), &[0.0, 1.0, 4.0, 5.0]);
        assert_eq!(y, vec![0, 0]);
    }

    #[test]
    fn split_preserves_total() {
        let d = toy();
        let (train, test) = d.split(0.25);
        assert_eq!(train.len(), 3);
        assert_eq!(test.len(), 1);
        assert_eq!(test.example(0), &[6.0, 7.0]);
    }

    #[test]
    fn subset_extracts_examples() {
        let d = toy();
        let s = d.subset(&[3, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.example(0), &[6.0, 7.0]);
        assert_eq!(s.labels(), &[1, 0]);
    }

    #[test]
    fn class_counts_sum_to_len() {
        let d = toy();
        let counts = d.class_counts();
        assert_eq!(counts, vec![2, 2]);
        assert_eq!(counts.iter().sum::<usize>(), d.len());
    }
}
