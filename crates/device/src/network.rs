//! Network latency models.
//!
//! §3.1 of the paper estimates the model download + gradient upload time at
//! 1.1 s over 4G LTE and 3.8 s over 3G HSPA+, and assumes an exponentially
//! distributed round-trip latency per model update (computation + network)
//! when deriving the staleness distribution of Fig. 7.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Cellular technology of a worker's connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkKind {
    /// 4G LTE: ~1.1 s for the model transfer of the paper's 123 k-parameter model.
    Lte4G,
    /// 3G HSPA+: ~3.8 s for the same transfer.
    Hspa3G,
}

impl NetworkKind {
    /// Transfer seconds for the paper's reference model (download + upload).
    pub fn reference_transfer_seconds(&self) -> f64 {
        match self {
            NetworkKind::Lte4G => 1.1,
            NetworkKind::Hspa3G => 3.8,
        }
    }

    /// Transfer seconds scaled to an arbitrary number of model parameters
    /// (the reference is the paper's 123,330-parameter RNN).
    pub fn transfer_seconds(&self, num_parameters: usize) -> f64 {
        const REFERENCE_PARAMETERS: f64 = 123_330.0;
        self.reference_transfer_seconds() * (num_parameters as f64 / REFERENCE_PARAMETERS)
    }
}

/// Exponential round-trip latency sampler used for the staleness study.
///
/// The round-trip is `minimum + Exp(mean - minimum)`: the paper uses a minimum
/// of 7.1 s (6 s computation + 1.1 s 4G transfer) and a mean of 8.45 s (the
/// average of the 4G and 3G cases).
#[derive(Debug, Clone)]
pub struct RoundTripModel {
    minimum_seconds: f64,
    mean_seconds: f64,
    rng: StdRng,
}

impl RoundTripModel {
    /// Creates a sampler with the given minimum and mean (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `mean_seconds < minimum_seconds` or `minimum_seconds < 0`.
    pub fn new(minimum_seconds: f64, mean_seconds: f64, seed: u64) -> Self {
        assert!(minimum_seconds >= 0.0, "minimum must be non-negative");
        assert!(
            mean_seconds >= minimum_seconds,
            "mean must be at least the minimum"
        );
        Self {
            minimum_seconds,
            mean_seconds,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The paper's §3.1 configuration: minimum 7.1 s, mean 8.45 s.
    pub fn paper_defaults(seed: u64) -> Self {
        Self::new(7.1, 8.45, seed)
    }

    /// Draws one round-trip latency in seconds.
    pub fn sample(&mut self) -> f64 {
        let excess_mean = self.mean_seconds - self.minimum_seconds;
        if excess_mean <= 0.0 {
            return self.minimum_seconds;
        }
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        self.minimum_seconds - excess_mean * u.ln()
    }

    /// The configured minimum latency.
    pub fn minimum_seconds(&self) -> f64 {
        self.minimum_seconds
    }

    /// The configured mean latency.
    pub fn mean_seconds(&self) -> f64 {
        self.mean_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_transfer_times_match_paper() {
        assert_eq!(NetworkKind::Lte4G.reference_transfer_seconds(), 1.1);
        assert_eq!(NetworkKind::Hspa3G.reference_transfer_seconds(), 3.8);
    }

    #[test]
    fn transfer_scales_with_model_size() {
        let t_small = NetworkKind::Lte4G.transfer_seconds(123_330 / 2);
        let t_ref = NetworkKind::Lte4G.transfer_seconds(123_330);
        assert!((t_ref - 1.1).abs() < 1e-9);
        assert!((t_small - 0.55).abs() < 1e-9);
    }

    #[test]
    fn samples_respect_minimum() {
        let mut m = RoundTripModel::paper_defaults(1);
        for _ in 0..1000 {
            assert!(m.sample() >= 7.1);
        }
    }

    #[test]
    fn sample_mean_close_to_configured_mean() {
        let mut m = RoundTripModel::paper_defaults(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| m.sample()).sum::<f64>() / n as f64;
        assert!((mean - 8.45).abs() < 0.15, "mean was {mean}");
    }

    #[test]
    fn degenerate_model_returns_minimum() {
        let mut m = RoundTripModel::new(5.0, 5.0, 3);
        assert_eq!(m.sample(), 5.0);
    }

    #[test]
    #[should_panic(expected = "mean must be at least the minimum")]
    fn invalid_mean_panics() {
        RoundTripModel::new(10.0, 5.0, 0);
    }
}
