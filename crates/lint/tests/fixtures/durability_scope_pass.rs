// Fixture (scanned as a durability source file): the durability crate is
// fully scoped for the wall-clock rule, so an fsync-adjacent timing read
// needs a per-site justified marker. Expect zero live findings and one
// suppression.

pub fn fsync_with_stall_warning(file: &std::fs::File) -> std::io::Result<()> {
    // lint:allow(wall-clock): fsync latency telemetry only — the measured
    // duration is logged, never fed into recovery or replay decisions.
    let started = std::time::Instant::now();
    file.sync_all()?;
    let _stalled_for = started.elapsed();
    Ok(())
}
