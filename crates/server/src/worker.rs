//! The FLeet worker runtime: executes learning tasks on a (simulated) mobile
//! device against locally collected data.

use crate::protocol::{TaskAssignment, TaskRequest, TaskResult};
use crate::wire;
use bytes::Bytes;
use fleet_data::sampling::MiniBatchSampler;
use fleet_data::{Dataset, LabelDistribution};
use fleet_device::Device;
use fleet_ml::{MlError, Sequential};
use std::sync::Arc;

/// A worker: one user's device, local data, and model replica.
///
/// The worker never ships its raw data anywhere — it only reveals label
/// indices/counts with its requests and flat gradients with its results
/// (the privacy contract of §2.1).
#[derive(Debug)]
pub struct Worker {
    id: u64,
    device: Device,
    dataset: Arc<Dataset>,
    local_indices: Vec<usize>,
    sampler: MiniBatchSampler,
    model: Sequential,
}

impl Worker {
    /// Creates a worker.
    ///
    /// `model` must have the same architecture as the server's global model;
    /// its parameters are overwritten by every assignment.
    pub fn new(
        id: u64,
        device: Device,
        dataset: Arc<Dataset>,
        local_indices: Vec<usize>,
        model: Sequential,
        seed: u64,
    ) -> Self {
        Self {
            id,
            device,
            dataset,
            local_indices,
            sampler: MiniBatchSampler::new(seed),
            model,
        }
    }

    /// The worker's identifier.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The simulated device the worker runs on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Mutable access to the device (e.g. to let it idle or recharge).
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// Number of locally available samples.
    pub fn available_samples(&self) -> usize {
        self.local_indices.len()
    }

    /// Label distribution of the worker's full local dataset.
    pub fn local_label_distribution(&self) -> LabelDistribution {
        let labels: Vec<usize> = self
            .local_indices
            .iter()
            .map(|&i| self.dataset.label(i))
            .collect();
        LabelDistribution::from_labels(&labels, self.dataset.num_classes())
    }

    /// Builds the learning-task request (step 1 of Fig. 2).
    pub fn request(&mut self) -> TaskRequest {
        TaskRequest {
            worker_id: self.id,
            device_model: self.device.profile().name.clone(),
            device_features: self.device.features(),
            label_distribution: self.local_label_distribution(),
            available_samples: self.local_indices.len(),
        }
    }

    /// Builds the learning-task request already encoded for the wire: the
    /// bytes a real device would put on the network for step 1.
    pub fn request_wire(&mut self) -> Bytes {
        wire::encode_request(&self.request())
    }

    /// Executes an assignment and returns the result encoded for the wire
    /// (step 5 as the device actually ships it).
    ///
    /// # Errors
    ///
    /// Returns an [`MlError`] when the assigned parameters do not match the
    /// worker's model architecture or the local data is unusable.
    pub fn execute_wire(&mut self, assignment: &TaskAssignment) -> Result<Bytes, MlError> {
        Ok(wire::encode_result(&self.execute(assignment)?))
    }

    /// Executes an assignment (step 5): samples a mini-batch of the requested
    /// size, computes the gradient against the assigned model parameters, and
    /// simulates the computation on the device to obtain latency and energy.
    ///
    /// # Errors
    ///
    /// Returns an [`MlError`] when the assigned parameters do not match the
    /// worker's model architecture or the local data is unusable.
    pub fn execute(&mut self, assignment: &TaskAssignment) -> Result<TaskResult, MlError> {
        if self.local_indices.is_empty() {
            return Err(MlError::InvalidArgument(
                "worker has no local data".to_string(),
            ));
        }
        self.model.set_parameters(&assignment.model_parameters)?;
        let batch_indices = self
            .sampler
            .sample(&self.local_indices, assignment.mini_batch_size.max(1));
        let (inputs, labels) = self.dataset.batch(&batch_indices);
        let (_, gradient) = self.model.compute_gradient(&inputs, &labels)?;
        let execution = self.device.execute_task(batch_indices.len());
        Ok(TaskResult {
            worker_id: self.id,
            model_version: assignment.model_version,
            gradient,
            label_distribution: LabelDistribution::from_labels(&labels, self.dataset.num_classes()),
            num_samples: batch_indices.len(),
            computation_seconds: execution.computation_seconds,
            energy_pct: execution.energy_pct,
            // Echo the per-shard vector clock the assignment carried (empty
            // for lockstep servers), so an `ApplyMode::PerShard` server can
            // attribute per-shard staleness to this gradient.
            read_clock: (!assignment.shard_clocks.is_empty())
                .then(|| assignment.shard_clocks.clone()),
            // Echo the task id so the server can deduplicate retransmissions
            // and match the result to its lease.
            task_id: Some(assignment.task_id),
        })
    }
}

/// Deterministic bounded-retry policy for a worker whose request was shed
/// with [`crate::protocol::RejectionReason::Overloaded`]: exponential backoff
/// (`base · 2^attempt`, capped) with no jitter, so a simulated run schedules
/// retries identically every time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Backoff of the first retry, in logical rounds.
    pub base_rounds: u64,
    /// Upper bound on any single backoff.
    pub max_backoff_rounds: u64,
    /// Retries before the worker gives the task up.
    pub max_attempts: u32,
}

impl RetryPolicy {
    /// The default policy: backoffs 1, 2, 4, 8 rounds, then give up.
    pub fn new() -> Self {
        Self {
            base_rounds: 1,
            max_backoff_rounds: 8,
            max_attempts: 4,
        }
    }

    /// Backoff before retry number `attempt` (0-based), or `None` when the
    /// attempts are exhausted and the worker should drop the task.
    pub fn backoff_rounds(&self, attempt: u32) -> Option<u64> {
        if attempt >= self.max_attempts {
            return None;
        }
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        Some(
            self.base_rounds
                .saturating_mul(factor)
                .min(self.max_backoff_rounds),
        )
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet_data::synthetic::{generate, SyntheticSpec};
    use fleet_device::profile::by_name;
    use fleet_ml::models::mlp_classifier;

    fn worker() -> Worker {
        let dataset = Arc::new(generate(&SyntheticSpec::vector(4, 6, 80), 1));
        let indices: Vec<usize> = (0..40).collect();
        let model = mlp_classifier(6, &[8], 4, 0);
        Worker::new(
            7,
            Device::new(by_name("Galaxy S7").unwrap(), 3),
            dataset,
            indices,
            model,
            11,
        )
    }

    fn assignment(worker: &Worker, batch: usize) -> TaskAssignment {
        // Build a compatible parameter vector from a fresh replica.
        let replica = mlp_classifier(6, &[8], 4, 5);
        let _ = worker;
        TaskAssignment {
            task_id: 21,
            model_parameters: replica.parameters(),
            model_version: 3,
            shard_clocks: Vec::new(),
            mini_batch_size: batch,
        }
    }

    #[test]
    fn request_carries_label_distribution_and_device_state() {
        let mut w = worker();
        let req = w.request();
        assert_eq!(req.worker_id, 7);
        assert_eq!(req.device_model, "Galaxy S7");
        assert_eq!(req.available_samples, 40);
        let sum: f32 = req.label_distribution.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn execute_produces_gradient_and_costs() {
        let mut w = worker();
        let a = assignment(&w, 16);
        let result = w.execute(&a).unwrap();
        assert_eq!(result.worker_id, 7);
        assert_eq!(result.model_version, 3);
        assert_eq!(result.num_samples, 16);
        assert!(result.gradient.l2_norm() > 0.0);
        assert!(result.computation_seconds > 0.0);
        assert!(result.energy_pct > 0.0);
    }

    #[test]
    fn execute_caps_batch_at_available_data_without_failing() {
        let mut w = worker();
        let a = assignment(&w, 1000);
        let result = w.execute(&a).unwrap();
        assert_eq!(result.num_samples, 1000); // sampled with replacement
    }

    #[test]
    fn execute_rejects_mismatched_parameters() {
        let mut w = worker();
        let a = TaskAssignment {
            task_id: 0,
            model_parameters: vec![0.0; 3],
            model_version: 0,
            shard_clocks: Vec::new(),
            mini_batch_size: 8,
        };
        assert!(w.execute(&a).is_err());
    }

    #[test]
    fn worker_with_no_data_errors() {
        let dataset = Arc::new(generate(&SyntheticSpec::vector(4, 6, 10), 1));
        let model = mlp_classifier(6, &[8], 4, 0);
        let mut w = Worker::new(
            1,
            Device::new(by_name("Pixel").unwrap(), 1),
            dataset,
            Vec::new(),
            model,
            1,
        );
        let a = TaskAssignment {
            task_id: 0,
            model_parameters: mlp_classifier(6, &[8], 4, 0).parameters(),
            model_version: 0,
            shard_clocks: Vec::new(),
            mini_batch_size: 8,
        };
        assert!(w.execute(&a).is_err());
    }

    #[test]
    fn wire_request_and_result_roundtrip() {
        let mut w = worker();
        let request = crate::wire::decode_request(w.request_wire()).unwrap();
        assert_eq!(request.worker_id, 7);
        assert_eq!(request.device_model, "Galaxy S7");

        let a = assignment(&w, 8);
        let encoded = w.execute_wire(&a).unwrap();
        let result = crate::wire::decode_result(encoded).unwrap();
        assert_eq!(result.worker_id, 7);
        assert_eq!(result.model_version, 3);
        assert_eq!(result.num_samples, 8);
    }

    #[test]
    fn shard_clocks_are_echoed_as_read_clock() {
        let mut w = worker();
        let mut a = assignment(&w, 8);
        assert_eq!(w.execute(&a).unwrap().read_clock, None);
        a.shard_clocks = vec![4, 2, 3];
        let result = w.execute(&a).unwrap();
        assert_eq!(result.read_clock.as_deref(), Some(&[4, 2, 3][..]));
        // And it survives the wire roundtrip.
        let raw = w.execute_wire(&a).unwrap();
        let decoded = crate::wire::decode_result(raw).unwrap();
        assert_eq!(decoded.read_clock.as_deref(), Some(&[4, 2, 3][..]));
    }

    #[test]
    fn results_echo_the_assignments_task_id() {
        let mut w = worker();
        let a = assignment(&w, 8);
        assert_eq!(w.execute(&a).unwrap().task_id, Some(21));
        // And it survives the wire roundtrip (v3 bytes).
        let raw = w.execute_wire(&a).unwrap();
        let decoded = crate::wire::decode_result(raw).unwrap();
        assert_eq!(decoded.task_id, Some(21));
    }

    #[test]
    fn retry_backoff_doubles_then_caps_then_gives_up() {
        let policy = RetryPolicy::new();
        assert_eq!(policy.backoff_rounds(0), Some(1));
        assert_eq!(policy.backoff_rounds(1), Some(2));
        assert_eq!(policy.backoff_rounds(2), Some(4));
        assert_eq!(policy.backoff_rounds(3), Some(8));
        assert_eq!(policy.backoff_rounds(4), None);

        let capped = RetryPolicy {
            base_rounds: 3,
            max_backoff_rounds: 5,
            max_attempts: 64,
        };
        assert_eq!(capped.backoff_rounds(0), Some(3));
        assert_eq!(capped.backoff_rounds(1), Some(5));
        assert_eq!(
            capped.backoff_rounds(63),
            Some(5),
            "shift must not overflow"
        );
    }

    #[test]
    fn retry_policy_is_deterministic() {
        let a = RetryPolicy::new();
        let b = RetryPolicy::default();
        for attempt in 0..6 {
            assert_eq!(a.backoff_rounds(attempt), b.backoff_rounds(attempt));
        }
    }

    #[test]
    fn repeated_tasks_drain_battery() {
        let mut w = worker();
        let a = assignment(&w, 64);
        for _ in 0..5 {
            w.execute(&a).unwrap();
        }
        assert!(w.device().battery_pct() < 100.0);
        assert_eq!(w.device().tasks_executed(), 5);
    }
}
