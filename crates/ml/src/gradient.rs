//! Flat gradient container exchanged between FLeet workers and the server.
//!
//! In the FLeet protocol (Fig. 2 of the paper, step 5) the worker sends back a
//! single gradient computed on its local mini-batch; the server then scales it
//! by the staleness-aware dampening factor and applies it to the model
//! (Eq. 3). [`Gradient`] is that unit of exchange: a flat `f32` vector with the
//! arithmetic needed by the aggregation algorithms.

use serde::{Deserialize, Serialize};

/// A flat gradient (or parameter-delta) vector.
///
/// # Example
///
/// ```
/// use fleet_ml::gradient::Gradient;
///
/// let mut g = Gradient::from_vec(vec![3.0, 4.0]);
/// assert_eq!(g.l2_norm(), 5.0);
/// g.scale_in_place(0.5);
/// assert_eq!(g.as_slice(), &[1.5, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Gradient {
    values: Vec<f32>,
}

impl Gradient {
    /// Creates a zero gradient with `len` entries.
    pub fn zeros(len: usize) -> Self {
        Self {
            values: vec![0.0; len],
        }
    }

    /// Creates a gradient from a flat vector.
    pub fn from_vec(values: Vec<f32>) -> Self {
        Self { values }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the gradient has no entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Immutable view of the entries.
    pub fn as_slice(&self) -> &[f32] {
        &self.values
    }

    /// Mutable view of the entries.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Consumes the gradient, returning the flat vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.values
    }

    /// Returns a copy scaled by `factor`.
    pub fn scaled(&self, factor: f32) -> Gradient {
        Gradient {
            values: self.values.iter().map(|v| v * factor).collect(),
        }
    }

    /// Scales every entry in place.
    pub fn scale_in_place(&mut self, factor: f32) {
        for v in &mut self.values {
            *v *= factor;
        }
    }

    /// Adds `other * factor` to this gradient in place.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn add_scaled(&mut self, other: &Gradient, factor: f32) {
        assert_eq!(
            self.values.len(),
            other.values.len(),
            "gradient length mismatch: {} vs {}",
            self.values.len(),
            other.values.len()
        );
        for (a, b) in self.values.iter_mut().zip(other.values.iter()) {
            *a += b * factor;
        }
    }

    /// L2 norm of the gradient.
    pub fn l2_norm(&self) -> f32 {
        self.values.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Clips the gradient in place so that its L2 norm is at most `max_norm`,
    /// returning the factor that was applied (1.0 when no clipping occurred).
    ///
    /// This is the per-gradient clipping used by the differentially-private
    /// training setup of the paper's §3.2 (via `fleet-dp`).
    pub fn clip_l2(&mut self, max_norm: f32) -> f32 {
        let norm = self.l2_norm();
        if norm > max_norm && norm > 0.0 {
            let factor = max_norm / norm;
            self.scale_in_place(factor);
            factor
        } else {
            1.0
        }
    }

    /// Mean of the absolute values (useful as a cheap noise diagnostic).
    pub fn mean_abs(&self) -> f32 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().map(|v| v.abs()).sum::<f32>() / self.values.len() as f32
        }
    }

    /// Element-wise average of a non-empty set of gradients (FedAvg-style).
    ///
    /// Returns `None` when `gradients` is empty or lengths are inconsistent.
    pub fn average(gradients: &[Gradient]) -> Option<Gradient> {
        let first = gradients.first()?;
        let len = first.len();
        if gradients.iter().any(|g| g.len() != len) {
            return None;
        }
        let mut acc = Gradient::zeros(len);
        for g in gradients {
            acc.add_scaled(g, 1.0);
        }
        acc.scale_in_place(1.0 / gradients.len() as f32);
        Some(acc)
    }
}

impl FromIterator<f32> for Gradient {
    fn from_iter<T: IntoIterator<Item = f32>>(iter: T) -> Self {
        Gradient {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_len() {
        let g = Gradient::zeros(5);
        assert_eq!(g.len(), 5);
        assert!(!g.is_empty());
        assert_eq!(g.l2_norm(), 0.0);
    }

    #[test]
    fn scaled_and_in_place_agree() {
        let g = Gradient::from_vec(vec![1.0, -2.0, 3.0]);
        let mut h = g.clone();
        h.scale_in_place(0.25);
        assert_eq!(g.scaled(0.25), h);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut acc = Gradient::zeros(3);
        acc.add_scaled(&Gradient::from_vec(vec![1.0, 1.0, 1.0]), 2.0);
        acc.add_scaled(&Gradient::from_vec(vec![0.0, 1.0, 2.0]), -1.0);
        assert_eq!(acc.as_slice(), &[2.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn add_scaled_length_mismatch_panics() {
        let mut a = Gradient::zeros(2);
        a.add_scaled(&Gradient::zeros(3), 1.0);
    }

    #[test]
    fn clip_reduces_norm() {
        let mut g = Gradient::from_vec(vec![3.0, 4.0]);
        let factor = g.clip_l2(1.0);
        assert!((factor - 0.2).abs() < 1e-6);
        assert!((g.l2_norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn clip_noop_when_small() {
        let mut g = Gradient::from_vec(vec![0.3, 0.4]);
        let factor = g.clip_l2(1.0);
        assert_eq!(factor, 1.0);
        assert!((g.l2_norm() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn average_of_two() {
        let a = Gradient::from_vec(vec![1.0, 3.0]);
        let b = Gradient::from_vec(vec![3.0, 5.0]);
        let avg = Gradient::average(&[a, b]).unwrap();
        assert_eq!(avg.as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn average_rejects_empty_and_mismatched() {
        assert!(Gradient::average(&[]).is_none());
        let a = Gradient::zeros(2);
        let b = Gradient::zeros(3);
        assert!(Gradient::average(&[a, b]).is_none());
    }

    #[test]
    fn from_iterator_collects() {
        let g: Gradient = (0..4).map(|i| i as f32).collect();
        assert_eq!(g.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    proptest! {
        #[test]
        fn prop_clip_never_exceeds_bound(values in proptest::collection::vec(-50.0f32..50.0, 1..64), bound in 0.1f32..10.0) {
            let mut g = Gradient::from_vec(values);
            g.clip_l2(bound);
            prop_assert!(g.l2_norm() <= bound * 1.001);
        }

        #[test]
        fn prop_scale_then_norm(values in proptest::collection::vec(-10.0f32..10.0, 1..64), k in 0.0f32..4.0) {
            let g = Gradient::from_vec(values);
            let scaled = g.scaled(k);
            prop_assert!((scaled.l2_norm() - k * g.l2_norm()).abs() < 1e-2);
        }

        #[test]
        fn prop_average_is_bounded_by_extremes(values in proptest::collection::vec(-10.0f32..10.0, 4..32)) {
            let a = Gradient::from_vec(values.clone());
            let b = Gradient::from_vec(values.iter().map(|v| v * 3.0).collect());
            let avg = Gradient::average(&[a.clone(), b.clone()]).unwrap();
            for i in 0..values.len() {
                let lo = a.as_slice()[i].min(b.as_slice()[i]) - 1e-4;
                let hi = a.as_slice()[i].max(b.as_slice()[i]) + 1e-4;
                prop_assert!(avg.as_slice()[i] >= lo && avg.as_slice()[i] <= hi);
            }
        }
    }
}
