//! 2-D convolution layer, lowered to the SIMD micro-kernel engine.
//!
//! # The im2col engine
//!
//! The paper's Table 1 workloads are CNNs, so `Conv2d` is where the dominant
//! FLOPs of the benchmark models live. The default [`ConvPath::Im2col`] path
//! routes them through [`crate::kernels`]:
//!
//! * **Forward** lowers each batch image into a persistent, layer-owned
//!   im2col workspace — one `[K × N]` column matrix per image, where
//!   `K = in_channels · kernel²` patch rows in `(ic, ky, kx)`-ascending order
//!   and `N = oh · ow` output positions — and computes
//!   `out_b = W · cols_b + bias` with the register-tiled
//!   [`crate::kernels::matmul`] (`W` reshaped `[out_channels, K]`).
//! * **Backward** reuses the *same* workspace: `dW += dY_b · cols_bᵀ` via the
//!   fused [`crate::kernels::matmul_nt_acc`] straight into the gradient
//!   buffer (layers with few output channels compute the bit-identical
//!   transposed product instead — see [`GW_TRANSPOSE_MAX_OC`]), and
//!   `d(cols_b) = Wᵀ · dY_b` via [`crate::kernels::matmul_tn_acc`] followed
//!   by a col2im scatter-add into `grad_input`. As the first layer of a
//!   model the input-gradient GEMM + scatter is skipped entirely
//!   ([`Layer::backward_input_unneeded`]).
//!
//! After the first step no per-call allocations remain: the column
//! workspace, the `d(cols)` scratch (thread-local, one per persistent pool
//! worker) and the forward/backward output buffers (recycled by
//! [`crate::model::Sequential`] via [`Layer::recycle_output`] /
//! [`Layer::recycle_grad`]) all persist across steps.
//!
//! # Determinism
//!
//! The im2col path inherits the kernel engine's bit-for-bit determinism
//! contract. The `(ic, ky, kx)`-ascending patch-row order makes the GEMM's
//! ascending-`k` accumulation visit the very same `(input, weight)` products
//! in the very same order as the direct loop nest, so each output element is
//! one fixed fused-multiply-add chain — identical across thread counts and
//! both [`crate::kernels::Isa`] dispatch paths. Batch parallelism (gated on a
//! work threshold, like the kernels' own fan-out) splits *whole images*
//! across the persistent pool; per-image work is independent, so the
//! partition cannot reassociate anything. The direct path rounds each
//! product and add separately (no FMA) and seeds rows with the bias instead
//! of adding it last, so direct and im2col agree to tolerance, not bits —
//! the property tests at the bottom of this file pin that parity across
//! strides, remainder shapes, one-hot and NaN/Inf inputs.

use std::cell::RefCell;

use crate::init::Initializer;
use crate::kernels;
use crate::layer::Layer;
use crate::tensor::Tensor;
use crate::{MlError, Result};

/// Output-channel bound under which the weight gradient is computed as the
/// transposed product `d(Wᵀ) = cols_b · dY_bᵀ` (then transpose-added into the
/// gradient buffer) instead of `dW += dY_b · cols_bᵀ`: with few output
/// channels the direct orientation has too few rows to amortise any blocking
/// and re-streams the whole column matrix, while the transposed orientation
/// keeps the handful of `dY` rows L1-resident and streams `cols` once. The
/// two orientations are *bit-identical* — `dot(x, y) == dot(y, x)` because
/// IEEE multiplication commutes lane by lane — so this is purely a traffic
/// decision keyed on the layer shape.
const GW_TRANSPOSE_MAX_OC: usize = 12;

// The bit-identity argument above holds only while *both* orientations stay
// on the commutative blocked-dot path: the direct orientation needs
// `out_c < NT_PACK_MIN_ROWS` (else its rows take the fused-chain tiles) and
// the transposed orientation needs `out_c < NR` (else its columns do).
// Retuning either kernel constant past this bound must be caught at compile
// time, because the im2col parity suite is tolerance-based and would not
// notice the orientations drifting apart in the low bits.
const _: () = assert!(
    GW_TRANSPOSE_MAX_OC <= kernels::NT_PACK_MIN_ROWS && GW_TRANSPOSE_MAX_OC <= kernels::NR,
    "transposed weight-gradient orientation would leave the blocked-dot path"
);

/// Which convolution algorithm a [`Conv2d`] layer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConvPath {
    /// Lower to column matrices and run the blocked GEMM kernels (default).
    #[default]
    Im2col,
    /// The seed repository's direct loop nest, kept as the reference/baseline
    /// implementation (like `kernels::matmul_naive`) for parity tests and
    /// benchmarks.
    Direct,
}

thread_local! {
    /// Per-thread `d(cols)` scratch for the backward pass. Pool workers are
    /// persistent, so after warm-up the backward fan-out never allocates.
    static DCOLS_BUF: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` on this thread's `d(cols)` scratch, grown to at least `len`.
fn with_dcols<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    DCOLS_BUF.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        f(&mut buf[..len])
    })
}

/// A 2-D convolution over `[batch, in_channels, height, width]` inputs with
/// stride support and no padding ("valid" convolution), as in the paper's
/// Table 1 topologies.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    /// Weights with shape `[out_channels, in_channels, kernel, kernel]` —
    /// row-major, so also a `[out_channels, K]` GEMM operand as stored.
    weights: Tensor,
    bias: Tensor,
    grad_weights: Tensor,
    grad_bias: Tensor,
    cached_input: Option<Tensor>,
    path: ConvPath,
    /// Whole-batch im2col workspace: `batch` consecutive `[K × N]` column
    /// matrices, lowered by the latest im2col forward and reused by the
    /// backward weight-gradient GEMM.
    cols: Vec<f32>,
    /// Batch size the workspace currently holds, or `usize::MAX` when it is
    /// stale (no im2col forward yet, or a direct forward ran since).
    cols_batch: usize,
    /// Scratch for the transposed weight-gradient product (small-`oc`
    /// layers; see [`GW_TRANSPOSE_MAX_OC`]).
    gwt_scratch: Vec<f32>,
    /// Recycled forward-output allocation (see [`Layer::recycle_output`]).
    out_spare: Vec<f32>,
    /// Recycled input-gradient allocation (see [`Layer::recycle_grad`]).
    grad_spare: Vec<f32>,
}

impl Conv2d {
    /// Creates a convolution layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        init: Initializer,
        seed: u64,
    ) -> Self {
        assert!(kernel > 0, "kernel size must be positive");
        assert!(stride > 0, "stride must be positive");
        let fan_in = in_channels * kernel * kernel;
        let fan_out = out_channels * kernel * kernel;
        let weights = init.init(
            &[out_channels, in_channels, kernel, kernel],
            fan_in,
            fan_out,
            seed,
        );
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            weights,
            bias: Tensor::zeros(&[out_channels]),
            grad_weights: Tensor::zeros(&[out_channels, in_channels, kernel, kernel]),
            grad_bias: Tensor::zeros(&[out_channels]),
            cached_input: None,
            path: ConvPath::default(),
            cols: Vec::new(),
            cols_batch: usize::MAX,
            gwt_scratch: Vec::new(),
            out_spare: Vec::new(),
            grad_spare: Vec::new(),
        }
    }

    /// Selects the convolution algorithm. Set it before `forward`: `backward`
    /// dispatches on the same flag and the im2col backward consumes the
    /// workspace the matching forward lowered.
    pub fn set_path(&mut self, path: ConvPath) {
        self.path = path;
    }

    /// The currently selected convolution algorithm.
    pub fn path(&self) -> ConvPath {
        self.path
    }

    /// Output spatial size for an input spatial size, or `None` if the input
    /// is smaller than the kernel.
    pub fn output_size(&self, input: usize) -> Option<usize> {
        if input < self.kernel {
            None
        } else {
            Some((input - self.kernel) / self.stride + 1)
        }
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize, usize)> {
        let shape = input.shape();
        if shape.len() != 4 || shape[1] != self.in_channels {
            return Err(MlError::ShapeMismatch {
                expected: vec![0, self.in_channels, 0, 0],
                actual: shape.to_vec(),
                context: "Conv2d::forward".to_string(),
            });
        }
        let (h, w) = (shape[2], shape[3]);
        let oh = self.output_size(h).ok_or_else(|| {
            MlError::InvalidArgument(format!(
                "input height {h} smaller than kernel {}",
                self.kernel
            ))
        })?;
        let ow = self.output_size(w).ok_or_else(|| {
            MlError::InvalidArgument(format!(
                "input width {w} smaller than kernel {}",
                self.kernel
            ))
        })?;
        Ok((shape[0], oh, ow))
    }

    /// Validates a backward call (forward ran, gradient shape matches) and
    /// returns `(batch, oh, ow)`.
    fn check_backward(&self, grad_output: &Tensor) -> Result<(usize, usize, usize)> {
        let input = self.cached_input.as_ref().ok_or_else(|| {
            MlError::InvalidArgument("Conv2d::backward called before forward".to_string())
        })?;
        let (batch, oh, ow) = self.check_input(input)?;
        let expected = vec![batch, self.out_channels, oh, ow];
        if grad_output.shape() != expected.as_slice() {
            return Err(MlError::ShapeMismatch {
                expected,
                actual: grad_output.shape().to_vec(),
                context: "Conv2d::backward".to_string(),
            });
        }
        Ok((batch, oh, ow))
    }

    /// Takes the recycled output allocation, resized for `len` elements.
    fn take_out_buf(&mut self, len: usize) -> Vec<f32> {
        let mut out = std::mem::take(&mut self.out_spare);
        out.resize(len, 0.0);
        out
    }

    /// im2col forward: lower every image, then one GEMM + bias broadcast per
    /// image, both phases batch-parallel above the work threshold.
    fn forward_im2col(&mut self, input: &Tensor, batch: usize, oh: usize, ow: usize) -> Tensor {
        let (h, w) = (input.shape()[2], input.shape()[3]);
        let (in_c, out_c, kernel, stride) = (
            self.in_channels,
            self.out_channels,
            self.kernel,
            self.stride,
        );
        let kk = in_c * kernel * kernel;
        let n = oh * ow;
        let cols_len = batch * kk * n;
        if self.cols.len() != cols_len {
            self.cols.resize(cols_len, 0.0);
        }
        self.cols_batch = batch;
        let parallel = batch * out_c * kk * n >= kernels::PAR_FLOP_THRESHOLD;

        // Phase 1: lower images into the workspace (disjoint per image).
        let in_data = input.data();
        let img_len = in_c * h * w;
        let lower = |first_image: usize, chunk: &mut [f32]| {
            for (i, cols_b) in chunk.chunks_mut(kk * n).enumerate() {
                let img = &in_data[(first_image + i) * img_len..][..img_len];
                im2col_image(img, cols_b, in_c, h, w, kernel, stride, oh, ow);
            }
        };
        if parallel {
            fleet_parallel::parallel_chunks_mut(&mut self.cols, kk * n, lower);
        } else {
            lower(0, &mut self.cols);
        }

        // Phase 2: out_b = W · cols_b + bias (disjoint per image, workspace
        // now read-only).
        let mut out = self.take_out_buf(batch * out_c * n);
        let w_data = self.weights.data();
        let bias = self.bias.data();
        let cols = &self.cols;
        let gemm = |first_image: usize, chunk: &mut [f32]| {
            for (i, out_b) in chunk.chunks_mut(out_c * n).enumerate() {
                let b = first_image + i;
                kernels::matmul(w_data, &cols[b * kk * n..][..kk * n], out_b, out_c, kk, n);
                for (row, &bv) in out_b.chunks_mut(n).zip(bias) {
                    for o in row {
                        *o += bv;
                    }
                }
            }
        };
        if parallel {
            fleet_parallel::parallel_chunks_mut(&mut out, out_c * n, gemm);
        } else {
            gemm(0, &mut out);
        }
        Tensor::from_vec(out, &[batch, out_c, oh, ow])
    }

    /// The seed repository's direct loop nest, kept verbatim as the
    /// reference/baseline path (bias hoisted out of the channel loop).
    fn forward_direct(&mut self, input: &Tensor, batch: usize, oh: usize, ow: usize) -> Tensor {
        let (h, w) = (input.shape()[2], input.shape()[3]);
        let (in_c, out_c, kernel, stride) = (
            self.in_channels,
            self.out_channels,
            self.kernel,
            self.stride,
        );
        // A direct forward invalidates the im2col workspace for backward.
        self.cols_batch = usize::MAX;
        let mut out = self.take_out_buf(batch * out_c * oh * ow);
        let in_data = input.data();
        let w_data = self.weights.data();
        let bias_data = self.bias.data();
        for b in 0..batch {
            for oc in 0..out_c {
                let bias = bias_data[oc];
                for oy in 0..oh {
                    let out_row = &mut out[((b * out_c + oc) * oh + oy) * ow..][..ow];
                    out_row.fill(bias);
                    // Accumulate one (ic, ky, kx) weight at a time across the
                    // whole output row — for stride 1 that is a contiguous
                    // axpy over the input row, which vectorises over `ox`
                    // (the long dimension) instead of the tiny kernel width.
                    // The (ic, ky, kx)-ascending order matches the im2col
                    // GEMM's per-element summation order exactly.
                    for ic in 0..in_c {
                        for ky in 0..kernel {
                            let iy = oy * stride + ky;
                            let in_row = &in_data[((b * in_c + ic) * h + iy) * w..][..w];
                            let w_row =
                                &w_data[((oc * in_c + ic) * kernel + ky) * kernel..][..kernel];
                            for (kx, &wv) in w_row.iter().enumerate() {
                                if stride == 1 {
                                    for (o, &x) in out_row.iter_mut().zip(&in_row[kx..kx + ow]) {
                                        *o += wv * x;
                                    }
                                } else {
                                    for (ox, o) in out_row.iter_mut().enumerate() {
                                        *o += wv * in_row[ox * stride + kx];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(out, &[batch, out_c, oh, ow])
    }

    /// im2col backward: `d(cols) = Wᵀ·dY` + col2im scatter per image
    /// (batch-parallel), then `dW += dY·colsᵀ` and the bias row sums
    /// accumulated in image order. With `need_input_grad` unset (first layer
    /// of a model) the whole input-gradient GEMM + scatter phase is skipped
    /// and `None` is returned.
    fn backward_im2col(
        &mut self,
        grad_output: &Tensor,
        batch: usize,
        oh: usize,
        ow: usize,
        need_input_grad: bool,
    ) -> Result<Option<Tensor>> {
        let input = self.cached_input.as_ref().expect("checked by backward");
        let (h, w) = (input.shape()[2], input.shape()[3]);
        let (in_c, out_c, kernel, stride) = (
            self.in_channels,
            self.out_channels,
            self.kernel,
            self.stride,
        );
        let kk = in_c * kernel * kernel;
        let n = oh * ow;
        if self.cols_batch != batch {
            return Err(MlError::InvalidArgument(
                "Conv2d::backward: im2col workspace is stale (the preceding forward \
                 did not run the im2col path on this batch)"
                    .to_string(),
            ));
        }
        let go = grad_output.data();
        let w_data = self.weights.data();
        let img_len = in_c * h * w;
        let grad_input = if need_input_grad {
            let mut grad_input = std::mem::take(&mut self.grad_spare);
            grad_input.resize(input.len(), 0.0);
            grad_input.fill(0.0);
            // Per-image input gradients: dcols_b = Wᵀ·dY_b, scattered back
            // to image geometry. Disjoint per image, so batch-parallel.
            let scatter = |first_image: usize, chunk: &mut [f32]| {
                for (i, gi_b) in chunk.chunks_mut(img_len).enumerate() {
                    let b = first_image + i;
                    with_dcols(kk * n, |dcols| {
                        dcols.fill(0.0);
                        kernels::matmul_tn_acc(
                            w_data,
                            &go[b * out_c * n..][..out_c * n],
                            dcols,
                            kk,
                            out_c,
                            n,
                        );
                        col2im_add(dcols, gi_b, in_c, h, w, kernel, stride, oh, ow);
                    });
                }
            };
            if batch * kk * out_c * n >= kernels::PAR_FLOP_THRESHOLD {
                fleet_parallel::parallel_chunks_mut(&mut grad_input, img_len, scatter);
            } else {
                scatter(0, &mut grad_input);
            }
            Some(Tensor::from_vec(grad_input, input.shape()))
        } else {
            None
        };

        // dW/db accumulate serially in image order over the forward-lowered
        // workspace (the fan-out inside the GEMM still parallelises large
        // products); the fused accumulating kernel extends the existing
        // gradient chains in place. Small-`oc` layers compute the product
        // transposed — bit-identical, far less memory traffic (see
        // [`GW_TRANSPOSE_MAX_OC`]).
        let transposed = out_c < GW_TRANSPOSE_MAX_OC && kk >= out_c;
        if transposed {
            self.gwt_scratch.resize(kk * out_c, 0.0);
        }
        let gw = self.grad_weights.data_mut();
        let gb = self.grad_bias.data_mut();
        for b in 0..batch {
            let go_b = &go[b * out_c * n..][..out_c * n];
            let cols_b = &self.cols[b * kk * n..][..kk * n];
            if transposed {
                kernels::matmul_nt(cols_b, go_b, &mut self.gwt_scratch, kk, n, out_c);
                for (i, gw_row) in gw.chunks_mut(kk).enumerate() {
                    for (j, g) in gw_row.iter_mut().enumerate() {
                        *g += self.gwt_scratch[j * out_c + i];
                    }
                }
            } else {
                kernels::matmul_nt_acc(go_b, cols_b, gw, out_c, n, kk);
            }
            for (g, row) in gb.iter_mut().zip(go_b.chunks(n)) {
                let mut sum = *g;
                for &v in row {
                    sum += v;
                }
                *g = sum;
            }
        }
        Ok(grad_input)
    }

    /// The seed repository's direct backward loop nest, kept as the
    /// reference path (note its `g == 0.0` skip, which the GEMM path does
    /// not have — see the module docs).
    fn backward_direct(
        &mut self,
        grad_output: &Tensor,
        batch: usize,
        oh: usize,
        ow: usize,
    ) -> Result<Tensor> {
        let (in_c, out_c, kernel, stride) = (
            self.in_channels,
            self.out_channels,
            self.kernel,
            self.stride,
        );
        // Disjoint field borrows: the cached input is read while the gradient
        // buffers are written, so no clone of the input is needed.
        let input = self.cached_input.as_ref().expect("checked by backward");
        let (h, w) = (input.shape()[2], input.shape()[3]);
        let mut grad_input = std::mem::take(&mut self.grad_spare);
        grad_input.resize(input.len(), 0.0);
        grad_input.fill(0.0);
        let in_data = input.data();
        let go = grad_output.data();
        let w_data = self.weights.data();
        let gw = self.grad_weights.data_mut();
        let gb = self.grad_bias.data_mut();
        for b in 0..batch {
            for oc in 0..out_c {
                for oy in 0..oh {
                    let go_row = &go[((b * out_c + oc) * oh + oy) * ow..][..ow];
                    for (ox, &g) in go_row.iter().enumerate() {
                        // ReLU upstream makes zero gradients common enough
                        // that this skip pays for itself in the scalar nest
                        // (the GEMM path profits more from dense FMA tiles).
                        if g == 0.0 {
                            continue;
                        }
                        gb[oc] += g;
                        for ic in 0..in_c {
                            for ky in 0..kernel {
                                let iy = oy * stride + ky;
                                let base = ((b * in_c + ic) * h + iy) * w + ox * stride;
                                let in_patch = &in_data[base..base + kernel];
                                let wbase = ((oc * in_c + ic) * kernel + ky) * kernel;
                                let gw_row = &mut gw[wbase..wbase + kernel];
                                let w_row = &w_data[wbase..wbase + kernel];
                                let gi_patch = &mut grad_input[base..base + kernel];
                                for kx in 0..kernel {
                                    gw_row[kx] += g * in_patch[kx];
                                    gi_patch[kx] += g * w_row[kx];
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(Tensor::from_vec(grad_input, input.shape()))
    }
}

/// Lowers one `[in_c, h, w]` image into a `[K × N]` column matrix with patch
/// rows in `(ic, ky, kx)`-ascending order: `cols[p][oy*ow + ox] =
/// img[ic][oy*stride + ky][ox*stride + kx]`. Stride-1 rows are straight
/// `memcpy`s of input-row windows.
#[allow(clippy::too_many_arguments)]
fn im2col_image(
    img: &[f32],
    cols: &mut [f32],
    in_c: usize,
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
    oh: usize,
    ow: usize,
) {
    let n = oh * ow;
    let mut p = 0;
    for ic in 0..in_c {
        for ky in 0..kernel {
            for kx in 0..kernel {
                let col_row = &mut cols[p * n..(p + 1) * n];
                for oy in 0..oh {
                    let iy = oy * stride + ky;
                    let in_row = &img[(ic * h + iy) * w..][..w];
                    let dst = &mut col_row[oy * ow..(oy + 1) * ow];
                    if stride != 1 {
                        for (ox, d) in dst.iter_mut().enumerate() {
                            *d = in_row[ox * stride + kx];
                        }
                    } else if ow < 32 {
                        // Short rows (late conv layers shrink to a few
                        // positions): a scalar copy loop beats the overhead
                        // of one memcpy call per row.
                        for (d, &x) in dst.iter_mut().zip(&in_row[kx..kx + ow]) {
                            *d = x;
                        }
                    } else {
                        dst.copy_from_slice(&in_row[kx..kx + ow]);
                    }
                }
                p += 1;
            }
        }
    }
}

/// Scatter-adds a `[K × N]` column-gradient matrix back into `[in_c, h, w]`
/// image geometry — the adjoint of [`im2col_image`]. Rows are visited in the
/// same `(ic, ky, kx)`-ascending order and positions in ascending `(oy, ox)`,
/// so overlapping patches accumulate in one fixed order.
#[allow(clippy::too_many_arguments)]
fn col2im_add(
    dcols: &[f32],
    gi: &mut [f32],
    in_c: usize,
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
    oh: usize,
    ow: usize,
) {
    let n = oh * ow;
    let mut p = 0;
    for ic in 0..in_c {
        for ky in 0..kernel {
            for kx in 0..kernel {
                let col_row = &dcols[p * n..(p + 1) * n];
                for oy in 0..oh {
                    let iy = oy * stride + ky;
                    let gi_row = &mut gi[(ic * h + iy) * w..][..w];
                    let src = &col_row[oy * ow..(oy + 1) * ow];
                    if stride == 1 {
                        for (g, &s) in gi_row[kx..kx + ow].iter_mut().zip(src) {
                            *g += s;
                        }
                    } else {
                        for (ox, &s) in src.iter().enumerate() {
                            gi_row[ox * stride + kx] += s;
                        }
                    }
                }
                p += 1;
            }
        }
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let (batch, oh, ow) = self.check_input(input)?;
        let out = match self.path {
            ConvPath::Im2col => self.forward_im2col(input, batch, oh, ow),
            ConvPath::Direct => self.forward_direct(input, batch, oh, ow),
        };
        match &mut self.cached_input {
            Some(cache) => cache.copy_from(input),
            cache => *cache = Some(input.clone()),
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let (batch, oh, ow) = self.check_backward(grad_output)?;
        match self.path {
            ConvPath::Im2col => self
                .backward_im2col(grad_output, batch, oh, ow, true)
                .map(|gi| gi.expect("requested input gradient")),
            ConvPath::Direct => self.backward_direct(grad_output, batch, oh, ow),
        }
    }

    fn backward_input_unneeded(&mut self, grad_output: &Tensor) -> Result<()> {
        let (batch, oh, ow) = self.check_backward(grad_output)?;
        match self.path {
            ConvPath::Im2col => self
                .backward_im2col(grad_output, batch, oh, ow, false)
                .map(|_| ()),
            // The direct reference path stays the seed loop nest verbatim.
            ConvPath::Direct => self.backward_direct(grad_output, batch, oh, ow).map(|_| ()),
        }
    }

    fn parameters(&self) -> Vec<&Tensor> {
        vec![&self.weights, &self.bias]
    }

    fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weights, &mut self.bias]
    }

    fn gradients(&self) -> Vec<&Tensor> {
        vec![&self.grad_weights, &self.grad_bias]
    }

    fn zero_gradients(&mut self) {
        self.grad_weights.fill(0.0);
        self.grad_bias.fill(0.0);
    }

    fn recycle_output(&mut self, output: Tensor) {
        self.out_spare = output.into_vec();
    }

    fn recycle_grad(&mut self, grad: Tensor) {
        self.grad_spare = grad.into_vec();
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_output_shape() {
        let mut conv = Conv2d::new(1, 2, 3, 1, Initializer::Xavier, 0);
        let out = conv.forward(&Tensor::zeros(&[2, 1, 8, 8])).unwrap();
        assert_eq!(out.shape(), &[2, 2, 6, 6]);
    }

    #[test]
    fn forward_with_stride() {
        let mut conv = Conv2d::new(1, 1, 2, 2, Initializer::Xavier, 0);
        let out = conv.forward(&Tensor::zeros(&[1, 1, 6, 6])).unwrap();
        assert_eq!(out.shape(), &[1, 1, 3, 3]);
    }

    #[test]
    fn identity_kernel_extracts_pixels() {
        // A 1x1 kernel with weight 1.0 must reproduce the input.
        let mut conv = Conv2d::new(1, 1, 1, 1, Initializer::Zeros, 0);
        conv.weights = Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]);
        let input = Tensor::from_vec((0..9).map(|v| v as f32).collect(), &[1, 1, 3, 3]);
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn known_convolution_value() {
        // 2x2 all-ones kernel over a 2x2 input sums the input.
        let mut conv = Conv2d::new(1, 1, 2, 1, Initializer::Zeros, 0);
        conv.weights = Tensor::ones(&[1, 1, 2, 2]);
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.data(), &[10.0]);
    }

    #[test]
    fn input_smaller_than_kernel_errors() {
        let mut conv = Conv2d::new(1, 1, 5, 1, Initializer::Xavier, 0);
        assert!(conv.forward(&Tensor::zeros(&[1, 1, 3, 3])).is_err());
    }

    #[test]
    fn wrong_channel_count_errors() {
        let mut conv = Conv2d::new(3, 1, 2, 1, Initializer::Xavier, 0);
        assert!(conv.forward(&Tensor::zeros(&[1, 1, 4, 4])).is_err());
    }

    #[test]
    fn gradient_matches_finite_difference() {
        for path in [ConvPath::Im2col, ConvPath::Direct] {
            let mut conv = Conv2d::new(1, 1, 2, 1, Initializer::Xavier, 5);
            conv.set_path(path);
            let input = Tensor::from_vec(
                vec![0.2, -0.5, 0.1, 0.7, 0.3, -0.2, 0.9, 0.4, -0.6],
                &[1, 1, 3, 3],
            );
            let eps = 1e-2f32;
            conv.zero_gradients();
            let out = conv.forward(&input).unwrap();
            conv.backward(&Tensor::ones(out.shape())).unwrap();
            let analytic = conv.gradients()[0].data()[0];

            let original = conv.weights.data()[0];
            conv.weights.data_mut()[0] = original + eps;
            let plus = conv.forward(&input).unwrap().sum();
            conv.weights.data_mut()[0] = original - eps;
            let minus = conv.forward(&input).unwrap().sum();
            conv.weights.data_mut()[0] = original;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-2,
                "{path:?}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn backward_shapes_grad_input_like_input() {
        let mut conv = Conv2d::new(2, 3, 2, 1, Initializer::Xavier, 1);
        let input = Tensor::zeros(&[2, 2, 5, 5]);
        let out = conv.forward(&input).unwrap();
        let grad_in = conv.backward(&Tensor::ones(out.shape())).unwrap();
        assert_eq!(grad_in.shape(), input.shape());
    }

    #[test]
    fn parameter_count_matches_formula() {
        let conv = Conv2d::new(3, 16, 3, 1, Initializer::Xavier, 0);
        assert_eq!(conv.parameter_count(), 16 * 3 * 3 * 3 + 16);
    }

    #[test]
    fn gw_orientations_are_bit_identical_below_transpose_bound() {
        // The GW_TRANSPOSE_MAX_OC gate claims dW is *bit*-identical whether
        // it is accumulated directly (dY·colsᵀ) or as the transposed product
        // (cols·dYᵀ, transpose-added). Pin that for a sweep of small-oc
        // shapes on both kernel entry points the two branches use.
        use crate::kernels;
        for &(oc, kk, n) in &[(1usize, 25usize, 36usize), (8, 25, 576), (11, 50, 49)] {
            assert!(oc < GW_TRANSPOSE_MAX_OC);
            let go: Vec<f32> = (0..oc * n).map(|i| (i as f32 * 0.37).sin()).collect();
            let cols: Vec<f32> = (0..kk * n).map(|i| (i as f32 * 0.13).cos()).collect();
            let seed: Vec<f32> = (0..oc * kk).map(|i| (i as f32 * 0.71).sin()).collect();

            let mut direct = seed.clone();
            kernels::matmul_nt_acc(&go, &cols, &mut direct, oc, n, kk);

            let mut gwt = vec![0.0f32; kk * oc];
            kernels::matmul_nt(&cols, &go, &mut gwt, kk, n, oc);
            let mut transposed = seed;
            for (i, row) in transposed.chunks_mut(kk).enumerate() {
                for (j, g) in row.iter_mut().enumerate() {
                    *g += gwt[j * oc + i];
                }
            }

            let direct_bits: Vec<u32> = direct.iter().map(|v| v.to_bits()).collect();
            let transposed_bits: Vec<u32> = transposed.iter().map(|v| v.to_bits()).collect();
            assert_eq!(direct_bits, transposed_bits, "oc={oc} kk={kk} n={n}");
        }
    }

    #[test]
    fn backward_after_path_flip_errors_instead_of_using_stale_workspace() {
        let mut conv = Conv2d::new(1, 1, 2, 1, Initializer::Xavier, 0);
        conv.set_path(ConvPath::Direct);
        let input = Tensor::ones(&[1, 1, 3, 3]);
        let out = conv.forward(&input).unwrap();
        conv.set_path(ConvPath::Im2col);
        assert!(conv.backward(&Tensor::ones(out.shape())).is_err());
    }

    #[test]
    fn repeated_forwards_are_bit_identical() {
        // The workspace/output-buffer reuse must not leak state between
        // calls, including across a batch-size change.
        let mut conv = Conv2d::new(2, 3, 3, 1, Initializer::He, 9);
        let big = Tensor::from_vec(
            (0..2 * 2 * 6 * 6)
                .map(|i| (i as f32 * 0.37).sin())
                .collect(),
            &[2, 2, 6, 6],
        );
        let small = Tensor::from_vec(
            (0..2 * 6 * 6).map(|i| (i as f32 * 0.11).cos()).collect(),
            &[1, 2, 6, 6],
        );
        let first = conv.forward(&big).unwrap();
        conv.forward(&small).unwrap();
        let again = conv.forward(&big).unwrap();
        assert_eq!(first, again);
    }
}

/// Direct-vs-im2col parity: the GEMM path must reproduce the reference loop
/// nest across strides, remainder-hostile shapes, one-hot and NaN/Inf inputs
/// — to tolerance, since the direct nest rounds multiply and add separately
/// while the kernels fuse them (same summation order, see the module docs).
/// `scripts/ci.sh` runs this suite under both `FLEET_SIMD` modes.
#[cfg(test)]
mod im2col_parity {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic pseudo-random fill, decorrelated by `salt`.
    fn fill(len: usize, salt: u64) -> Vec<f32> {
        let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 2.0
            })
            .collect()
    }

    fn one_hot(len: usize, every: usize) -> Vec<f32> {
        (0..len)
            .map(|i| if i % every == 0 { 1.0 } else { 0.0 })
            .collect()
    }

    /// Sprinkles NaN and infinities at deterministic positions.
    fn poison(data: &mut [f32]) {
        for (i, v) in data.iter_mut().enumerate() {
            match i % 23 {
                7 => *v = f32::NAN,
                13 => *v = f32::INFINITY,
                19 => *v = f32::NEG_INFINITY,
                _ => {}
            }
        }
    }

    /// NaN-aware closeness: both NaN passes, both same-sign infinite passes,
    /// otherwise relative-plus-absolute tolerance.
    fn assert_close(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            if x.is_nan() && y.is_nan() {
                continue;
            }
            if x.is_infinite() || y.is_infinite() {
                assert!(x == y, "{what}[{i}]: {x} vs {y}");
                continue;
            }
            let tol = 1e-3 + 1e-4 * x.abs().max(y.abs());
            assert!((x - y).abs() <= tol, "{what}[{i}]: {x} vs {y}");
        }
    }

    /// Builds a pair of identically-initialised layers, runs forward and
    /// backward on both paths and asserts output/gradient parity.
    fn assert_parity(
        (in_c, out_c, kernel, stride): (usize, usize, usize, usize),
        (batch, h, w): (usize, usize, usize),
        input_data: Vec<f32>,
        grad_data: Option<Vec<f32>>,
    ) {
        let mut gemm = Conv2d::new(in_c, out_c, kernel, stride, Initializer::He, 33);
        let mut direct = Conv2d::new(in_c, out_c, kernel, stride, Initializer::He, 33);
        direct.set_path(ConvPath::Direct);
        let input = Tensor::from_vec(input_data, &[batch, in_c, h, w]);

        let out_g = gemm.forward(&input).unwrap();
        let out_d = direct.forward(&input).unwrap();
        assert_eq!(out_g.shape(), out_d.shape());
        assert_close(out_g.data(), out_d.data(), "forward");

        let grad = match grad_data {
            Some(data) => Tensor::from_vec(data, out_g.shape()),
            None => Tensor::from_vec(fill(out_g.len(), 77), out_g.shape()),
        };
        gemm.zero_gradients();
        direct.zero_gradients();
        let gi_g = gemm.backward(&grad).unwrap();
        let gi_d = direct.backward(&grad).unwrap();
        assert_close(gi_g.data(), gi_d.data(), "grad_input");
        assert_close(
            gemm.gradients()[0].data(),
            direct.gradients()[0].data(),
            "grad_weights",
        );
        assert_close(
            gemm.gradients()[1].data(),
            direct.gradients()[1].data(),
            "grad_bias",
        );
    }

    proptest! {
        #[test]
        fn parity_across_strides_and_shapes(
            in_c in 1usize..4,
            out_c in 1usize..8,
            kernel in 1usize..5,
            stride in 1usize..4,
            extra_h in 0usize..7,
            extra_w in 0usize..7,
            batch in 1usize..4,
            salt in 0u64..500,
        ) {
            // Remainder-hostile by construction: oh/ow sweep every residue of
            // the kernel tile sizes as extra_h/extra_w vary.
            let h = kernel + extra_h;
            let w = kernel + extra_w;
            let input = fill(batch * in_c * h * w, salt);
            assert_parity((in_c, out_c, kernel, stride), (batch, h, w), input, None);
        }

        #[test]
        fn parity_on_one_hot_inputs(
            stride in 1usize..4,
            every in 1usize..9,
            salt in 0u64..100,
        ) {
            let (in_c, out_c, kernel) = (2, 5, 3);
            let (batch, h, w) = (2, 9, 9);
            let input = one_hot(batch * in_c * h * w, every + salt as usize % 3 + 1);
            assert_parity((in_c, out_c, kernel, stride), (batch, h, w), input, None);
        }

        #[test]
        fn parity_with_nan_and_inf(stride in 1usize..3, salt in 0u64..100) {
            // Non-finite inputs must propagate the same way through both
            // paths. The upstream gradient is kept nonzero everywhere: the
            // direct nest skips g == 0.0 terms while the GEMM adds them, and
            // adding 0·NaN is NaN — a legitimate divergence the contract
            // does not cover (finite zero terms are exact either way).
            let (in_c, out_c, kernel) = (2, 3, 2);
            let (batch, h, w) = (1, 6, 7);
            let mut input = fill(batch * in_c * h * w, salt);
            poison(&mut input);
            let oh = (h - kernel) / stride + 1;
            let ow = (w - kernel) / stride + 1;
            let grad: Vec<f32> = fill(batch * out_c * oh * ow, salt ^ 0xBEEF)
                .into_iter()
                .map(|g| if g.abs() < 1e-3 { 0.5 } else { g })
                .collect();
            assert_parity((in_c, out_c, kernel, stride), (batch, h, w), input, Some(grad));
        }
    }
}
