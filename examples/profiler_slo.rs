//! I-Prof in action: predicting per-device mini-batch sizes so that every
//! learning task lands close to a 3-second computation-time SLO, compared
//! with the MAUI baseline (the Fig. 12 setting, at example scale).
//!
//! Run with: `cargo run -p fleet-examples --example profiler_slo`

use fleet_device::profile::{aws_device_farm_set, catalogue};
use fleet_device::Device;
use fleet_profiler::eval::DeviationStats;
use fleet_profiler::training::{collect_calibration, pretrained_iprof, pretrained_maui};
use fleet_profiler::{Slo, WorkloadProfiler};

fn main() {
    let slo = Slo::latency(3.0);
    println!("SLO: every learning task should take ~3 seconds of computation.\n");

    // Offline calibration on a handful of training devices.
    let training: Vec<_> = catalogue().into_iter().take(10).collect();
    let calibration = collect_calibration(&training, slo, 8, 40, 1);
    println!(
        "Collected {} calibration tasks on {} training devices.",
        calibration.len(),
        training.len()
    );

    let mut iprof = pretrained_iprof(slo, &calibration);
    let mut maui = pretrained_maui(slo, &calibration);

    let mut iprof_latencies = Vec::new();
    let mut maui_latencies = Vec::new();
    println!("\ndevice                | profiler | batch | seconds");
    for profile in aws_device_farm_set().into_iter().take(8) {
        let mut device_i = Device::new(profile.clone(), 11);
        let mut device_m = Device::new(profile.clone(), 11);
        for _ in 0..5 {
            let f = device_i.features();
            let n = iprof.predict(&profile.name, &f);
            let exec = device_i.execute_task(n);
            iprof.observe(
                &profile.name,
                &f,
                n,
                exec.computation_seconds,
                exec.energy_pct,
            );
            iprof_latencies.push(exec.computation_seconds);

            let fm = device_m.features();
            let nm = maui.predict(&profile.name, &fm);
            let em = device_m.execute_task(nm);
            maui.observe(
                &profile.name,
                &fm,
                nm,
                em.computation_seconds,
                em.energy_pct,
            );
            maui_latencies.push(em.computation_seconds);

            device_i.idle(60.0);
            device_m.idle(60.0);
        }
        println!(
            "{:21} | I-Prof   | {:5} | {:.2}",
            profile.name,
            iprof
                .predict_batch(&profile.name, &device_i.features())
                .batch_size,
            iprof_latencies.last().unwrap()
        );
        println!(
            "{:21} | MAUI     | {:5} | {:.2}",
            profile.name,
            maui.predict(&profile.name, &device_m.features()),
            maui_latencies.last().unwrap()
        );
    }

    let iprof_stats = DeviationStats::from_measurements(&iprof_latencies, 3.0);
    let maui_stats = DeviationStats::from_measurements(&maui_latencies, 3.0);
    println!("\n90th-percentile deviation from the 3 s SLO:");
    println!("  I-Prof: {:.2} s   (paper: 0.75 s)", iprof_stats.p90);
    println!("  MAUI  : {:.2} s   (paper: 2.70 s)", maui_stats.p90);
}
