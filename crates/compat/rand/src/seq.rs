//! Sequence-related sampling (`shuffle`).

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let mut a: Vec<u32> = (0..20).collect();
        let mut b: Vec<u32> = (0..20).collect();
        a.shuffle(&mut StdRng::seed_from_u64(5));
        b.shuffle(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
