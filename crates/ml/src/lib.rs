//! # fleet-ml
//!
//! A from-scratch, dependency-light neural-network substrate used by the
//! [FLeet](https://arxiv.org/abs/2006.07273) reproduction.
//!
//! The FLeet paper trains Convolutional Neural Networks (Table 1) and a small
//! recurrent hashtag recommender with mini-batch Stochastic Gradient Descent
//! on mobile devices. This crate provides everything those experiments need:
//!
//! * [`tensor::Tensor`] — a dense row-major `f32` tensor with the handful of
//!   operations required by forward/backward passes,
//! * [`kernels`] — the blocked, thread-parallel matrix kernels behind
//!   [`tensor::Tensor::matmul`] and its fused variants, runtime-dispatched
//!   between AVX2+FMA intrinsics and a bit-identical `mul_add` fallback
//!   (see [`kernels::Isa`]),
//! * [`layer::Layer`] implementations (dense, conv2d, max-pool, ReLU, flatten),
//! * [`loss`] — softmax cross-entropy,
//! * [`model::Sequential`] — a feed-forward model container exposing its
//!   parameters and gradients as flat vectors (the unit exchanged between FLeet
//!   workers and the server),
//! * [`gradient::Gradient`] — the flat gradient container with the arithmetic
//!   used by the aggregation algorithms (scaling, addition, clipping),
//! * [`optimizer::Sgd`] — plain SGD used for the ideal synchronous baseline,
//! * [`models`] — builders for the paper's Table 1 topologies (scaled to run on
//!   a laptop) and a bag-of-words hashtag recommender,
//! * [`metrics`] — accuracy and the F1-score @ top-k used in §3.1.
//!
//! # Kernel architecture
//!
//! Worker-side cost is dominated by the dense/conv forward and backward
//! passes, so the compute layer is organised around three rules:
//!
//! 1. **Raw-slice kernels, fused layouts.** [`kernels`] implements `A·B`,
//!    `Aᵀ·B` (accumulating) and `A·Bᵀ` directly on row-major slices, so the
//!    backward pass never materialises a transpose and weight gradients
//!    accumulate straight into the layer's gradient buffer.
//! 2. **Deterministic parallelism and dispatch.** Large kernels split their
//!    *output rows* across threads (`fleet_parallel`); every output element
//!    is produced by a fixed-order loop whose per-element operations are
//!    fused multiply-adds in both [`kernels::Isa`] variants, so results are
//!    bit-for-bit identical for any thread count *and* either dispatch path.
//!    The async-simulation reproducibility guarantee rests on this.
//! 3. **Caller-owned scratch.** Layers reuse per-layer workspaces instead of
//!    allocating per call: `forward` caches its input via
//!    [`tensor::Tensor::copy_from`] (reusing the buffer), `zero_gradients`
//!    zeroes in place, and the `*_into` tensor methods
//!    ([`tensor::Tensor::matmul_into`], [`tensor::Tensor::matmul_nt_into`],
//!    [`tensor::Tensor::matmul_tn_acc_into`],
//!    [`tensor::Tensor::add_scaled_into`]) write into tensors whose
//!    allocations persist across steps. [`model::Sequential`] closes the
//!    remaining loop by handing every consumed activation and gradient
//!    tensor back to the layer that produced it
//!    ([`layer::Layer::recycle_output`] / [`layer::Layer::recycle_grad`]),
//!    so a training step runs allocation-free after the first pass. The
//!    convention throughout: a `&mut Tensor` out-parameter is resized with
//!    [`tensor::Tensor::resize_for`] (which keeps capacity) and fully
//!    overwritten unless the method name says it accumulates (`_acc_`).
//!
//!    `Conv2d` is the showcase: it lowers batches into a persistent im2col
//!    workspace and runs forward and backward entirely on the fused GEMM
//!    kernels (see `layers::conv`), with the seed loop nest preserved
//!    behind [`layers::ConvPath::Direct`] as the reference/baseline.
//!
//! The seed repository's single-threaded kernel (including its `a == 0.0`
//! sparsity skip, which only pays off for one-hot inputs) survives as
//! [`kernels::matmul_naive`]: the reference for property tests and the
//! baseline for the `ml_kernels` criterion bench.
//!
//! # Example
//!
//! ```
//! use fleet_ml::models::mlp_classifier;
//! use fleet_ml::tensor::Tensor;
//!
//! # fn main() -> Result<(), fleet_ml::MlError> {
//! let mut model = mlp_classifier(4, &[16], 3, 42);
//! let input = Tensor::zeros(&[2, 4]);
//! let logits = model.forward(&input)?;
//! assert_eq!(logits.shape(), &[2, 3]);
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod gradient;
pub mod init;
pub mod kernels;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod models;
pub mod optimizer;
pub mod recommender;
pub mod tensor;

use std::error::Error;
use std::fmt;

/// Error type returned by the fallible public entry points of this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Two tensors (or a tensor and a layer) disagree on shape.
    ShapeMismatch {
        /// Shape the operation expected.
        expected: Vec<usize>,
        /// Shape the operation received.
        actual: Vec<usize>,
        /// Human-readable location of the mismatch.
        context: String,
    },
    /// A parameter vector handed to [`model::Sequential::set_parameters`] has
    /// the wrong length.
    ParameterCountMismatch {
        /// Number of parameters the model holds.
        expected: usize,
        /// Number of parameters provided.
        actual: usize,
    },
    /// An argument was outside its valid domain (empty batch, zero classes, ...).
    InvalidArgument(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::ShapeMismatch {
                expected,
                actual,
                context,
            } => write!(
                f,
                "shape mismatch in {context}: expected {expected:?}, got {actual:?}"
            ),
            MlError::ParameterCountMismatch { expected, actual } => write!(
                f,
                "parameter count mismatch: model has {expected}, got {actual}"
            ),
            MlError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for MlError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MlError>;

pub use gradient::Gradient;
pub use model::Sequential;
pub use tensor::Tensor;
