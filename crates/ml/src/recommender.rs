//! Hashtag recommender used by the Online-vs-Standard-FL experiment (§3.1).
//!
//! The paper trains a small recurrent network over tweet text and evaluates
//! F1-score @ top-5 of the predicted hashtags. Our substitution (see
//! DESIGN.md) keeps the essential structure: a softmax model over the hashtag
//! vocabulary trained online from user mini-batches, whose input is a context
//! feature vector, plus the "most popular" baseline of the paper.

use crate::gradient::Gradient;
use crate::model::Sequential;
use crate::models::mlp_classifier;
use crate::tensor::Tensor;
use crate::Result;

/// A trainable top-k hashtag recommender backed by a softmax classifier.
#[derive(Debug)]
pub struct HashtagRecommender {
    model: Sequential,
    vocab_size: usize,
    feature_dim: usize,
}

impl HashtagRecommender {
    /// Creates a recommender for `vocab_size` hashtags over `feature_dim`
    /// context features. A single hidden layer keeps the parameter count in
    /// the same order of magnitude as the paper's 123 k-parameter RNN.
    pub fn new(feature_dim: usize, vocab_size: usize, hidden: usize, seed: u64) -> Self {
        Self {
            model: mlp_classifier(feature_dim, &[hidden], vocab_size, seed),
            vocab_size,
            feature_dim,
        }
    }

    /// Number of hashtags in the vocabulary.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Dimensionality of the context features.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Total number of model parameters.
    pub fn parameter_count(&self) -> usize {
        self.model.parameter_count()
    }

    /// Flat model parameters (the unit shipped to FLeet workers).
    pub fn parameters(&self) -> Vec<f32> {
        self.model.parameters()
    }

    /// Overwrites the model parameters.
    ///
    /// # Errors
    ///
    /// Returns an error when the length does not match.
    pub fn set_parameters(&mut self, params: &[f32]) -> Result<()> {
        self.model.set_parameters(params)
    }

    /// Computes the gradient of one user mini-batch without applying it
    /// (what a FLeet worker does), returning `(loss, gradient)`.
    ///
    /// # Errors
    ///
    /// Propagates shape/label errors.
    pub fn compute_gradient(
        &mut self,
        features: &Tensor,
        hashtags: &[usize],
    ) -> Result<(f32, Gradient)> {
        self.model.compute_gradient(features, hashtags)
    }

    /// Applies a (possibly dampened) gradient with the given learning rate.
    ///
    /// # Errors
    ///
    /// Returns an error when the gradient length does not match.
    pub fn apply_gradient(&mut self, gradient: &Gradient, learning_rate: f32) -> Result<()> {
        self.model.apply_gradient(gradient, learning_rate)
    }

    /// Trains directly on one mini-batch (gradient + immediate apply).
    ///
    /// # Errors
    ///
    /// Propagates shape/label errors.
    pub fn train_on_batch(
        &mut self,
        features: &Tensor,
        hashtags: &[usize],
        learning_rate: f32,
    ) -> Result<f32> {
        let (loss, grad) = self.compute_gradient(features, hashtags)?;
        self.apply_gradient(&grad, learning_rate)?;
        Ok(loss)
    }

    /// Recommends the top-`k` hashtags for each row of `features`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the forward pass.
    pub fn recommend_top_k(&mut self, features: &Tensor, k: usize) -> Result<Vec<Vec<usize>>> {
        Ok(self.model.forward(features)?.topk_rows(k))
    }
}

/// The paper's baseline recommender: always recommend the `k` globally most
/// popular hashtags seen so far.
#[derive(Debug, Clone, Default)]
pub struct MostPopularRecommender {
    counts: Vec<u64>,
}

impl MostPopularRecommender {
    /// Creates a baseline over a vocabulary of `vocab_size` hashtags.
    pub fn new(vocab_size: usize) -> Self {
        Self {
            counts: vec![0; vocab_size],
        }
    }

    /// Records observed hashtags (training data for the baseline).
    pub fn observe(&mut self, hashtags: &[usize]) {
        for &h in hashtags {
            if h < self.counts.len() {
                self.counts[h] += 1;
            }
        }
    }

    /// The `k` most popular hashtags, most popular first.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.counts.len()).collect();
        idx.sort_by(|&a, &b| self.counts[b].cmp(&self.counts[a]).then(a.cmp(&b)));
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommender_shapes() {
        let mut rec = HashtagRecommender::new(8, 20, 16, 0);
        assert_eq!(rec.vocab_size(), 20);
        assert_eq!(rec.feature_dim(), 8);
        let recs = rec.recommend_top_k(&Tensor::zeros(&[3, 8]), 5).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].len(), 5);
    }

    #[test]
    fn training_learns_dominant_hashtag() {
        let mut rec = HashtagRecommender::new(4, 6, 8, 1);
        // Context feature 0 active => hashtag 2.
        let features = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0], &[1, 4]);
        for _ in 0..100 {
            rec.train_on_batch(&features, &[2], 0.5).unwrap();
        }
        let top = rec.recommend_top_k(&features, 1).unwrap();
        assert_eq!(top[0][0], 2);
    }

    #[test]
    fn parameter_roundtrip() {
        let mut a = HashtagRecommender::new(4, 6, 8, 1);
        let mut b = HashtagRecommender::new(4, 6, 8, 2);
        b.set_parameters(&a.parameters()).unwrap();
        let x = Tensor::ones(&[1, 4]);
        assert_eq!(
            a.recommend_top_k(&x, 3).unwrap(),
            b.recommend_top_k(&x, 3).unwrap()
        );
    }

    #[test]
    fn gradient_then_apply_matches_train_on_batch() {
        let mut a = HashtagRecommender::new(3, 4, 4, 9);
        let mut b = HashtagRecommender::new(3, 4, 4, 9);
        let x = Tensor::from_vec(vec![0.5, -0.5, 1.0], &[1, 3]);
        let (_, g) = a.compute_gradient(&x, &[1]).unwrap();
        a.apply_gradient(&g, 0.1).unwrap();
        b.train_on_batch(&x, &[1], 0.1).unwrap();
        assert_eq!(a.parameters(), b.parameters());
    }

    #[test]
    fn most_popular_tracks_counts() {
        let mut baseline = MostPopularRecommender::new(5);
        baseline.observe(&[1, 1, 1, 3, 3, 4]);
        assert_eq!(baseline.top_k(2), vec![1, 3]);
        // Out-of-range observations are ignored.
        baseline.observe(&[99]);
        assert_eq!(baseline.top_k(1), vec![1]);
    }

    #[test]
    fn most_popular_ties_broken_by_index() {
        let baseline = MostPopularRecommender::new(3);
        assert_eq!(baseline.top_k(3), vec![0, 1, 2]);
    }
}
