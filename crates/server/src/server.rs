//! The FLeet server: glues I-Prof, the controller and AdaSGD together behind
//! the request/result protocol of Fig. 2.

use crate::controller::{Controller, ControllerCounters, ControllerThresholds};
use crate::protocol::{
    RejectionReason, ResultAck, ResultDisposition, TaskAssignment, TaskRequest, TaskResponse,
    TaskResult,
};
use crate::tasks::{TaskTable, TaskTableState};
use crate::wire::{self, WireError};
use bytes::Bytes;
use fleet_core::{
    AdaSgd, ApplyMode, ConfigError, CoreConfig, ParameterServer, ParameterServerState, WorkerUpdate,
};
use fleet_device::NetworkKind;
use fleet_profiler::{IProf, IProfState, Slo, WorkloadProfiler};
use fleet_telemetry::{Counter, TelemetryHandle};
use std::collections::HashMap;

/// Configuration of a [`FleetServer`].
///
/// The learning-rate / K / shards / apply-mode / backpressure cluster lives
/// in the embedded [`CoreConfig`] (shared with the simulation and the load
/// harness); [`FleetServerConfig::builder`] flattens those knobs so callers
/// write `.shards(8)` rather than reaching through `core`.
#[derive(Debug, Clone)]
pub struct FleetServerConfig {
    /// The shared core knobs: learning rate γ, aggregation parameter K,
    /// shard count and apply mode, plus the `max_pending` backpressure bound
    /// (when a shard sits at the bound, new task requests are rejected with
    /// [`RejectionReason::Overloaded`] instead of queueing gradients the
    /// server cannot absorb).
    pub core: CoreConfig,
    /// Expected percentage of non-stragglers (AdaSGD's s%).
    pub s_percentile: f64,
    /// Number of classes of the learning task (for the global label
    /// distribution).
    pub num_classes: usize,
    /// The per-task SLO handed to I-Prof.
    pub slo: Slo,
    /// Controller thresholds.
    pub thresholds: ControllerThresholds,
    /// The network the lease deadline budgets model transfer time for.
    pub network: NetworkKind,
    /// Floor on a task lease, in logical rounds: even an instant prediction
    /// leaves the worker this long before the lease is reclaimed.
    pub lease_min_rounds: u64,
    /// Conversion from predicted wall-clock seconds (compute + transfer) to
    /// logical lease rounds.
    pub lease_rounds_per_second: f64,
}

impl Default for FleetServerConfig {
    fn default() -> Self {
        Self {
            core: CoreConfig::default(),
            s_percentile: 99.7,
            num_classes: 10,
            slo: Slo::paper_latency_default(),
            thresholds: ControllerThresholds::default(),
            network: NetworkKind::Lte4G,
            lease_min_rounds: 4,
            lease_rounds_per_second: 1.0,
        }
    }
}

impl FleetServerConfig {
    /// A builder over the defaults.
    pub fn builder() -> FleetServerConfigBuilder {
        FleetServerConfigBuilder {
            config: FleetServerConfig::default(),
        }
    }

    /// A builder seeded from this configuration.
    pub fn to_builder(&self) -> FleetServerConfigBuilder {
        FleetServerConfigBuilder {
            config: self.clone(),
        }
    }

    /// Checks the combined invariants (core cluster plus the server-level
    /// knobs) and returns the first violation.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.core.validate()?;
        if self.num_classes == 0 {
            return Err(ConfigError::ZeroNumClasses);
        }
        if !(self.s_percentile > 0.0 && self.s_percentile <= 100.0) {
            return Err(ConfigError::SPercentileOutOfRange {
                value: self.s_percentile as f32,
            });
        }
        if !(self.lease_rounds_per_second >= 0.0 && self.lease_rounds_per_second.is_finite()) {
            return Err(ConfigError::LeaseRateInvalid {
                value: self.lease_rounds_per_second,
            });
        }
        Ok(())
    }
}

/// Builder for [`FleetServerConfig`]; `build` validates and returns a typed
/// [`ConfigError`]. Core-cluster setters (`learning_rate`, `aggregation_k`,
/// `shards`, `apply_mode`, `max_pending`) are flattened into this builder.
#[derive(Debug, Clone)]
pub struct FleetServerConfigBuilder {
    config: FleetServerConfig,
}

impl FleetServerConfigBuilder {
    /// Sets the learning rate γ.
    pub fn learning_rate(mut self, value: f32) -> Self {
        self.config.core.learning_rate = value;
        self
    }

    /// Sets the aggregation parameter K.
    pub fn aggregation_k(mut self, value: usize) -> Self {
        self.config.core.aggregation_k = value;
        self
    }

    /// Sets the parameter-server shard count.
    pub fn shards(mut self, value: usize) -> Self {
        self.config.core.shards = value;
        self
    }

    /// Sets the shard apply-scheduling mode.
    pub fn apply_mode(mut self, value: ApplyMode) -> Self {
        self.config.core.apply_mode = value;
        self
    }

    /// Sets the per-shard backpressure bound (0 disables shedding).
    pub fn max_pending(mut self, value: usize) -> Self {
        self.config.core.max_pending = value;
        self
    }

    /// Replaces the whole core cluster at once.
    pub fn core(mut self, value: CoreConfig) -> Self {
        self.config.core = value;
        self
    }

    /// Sets AdaSGD's expected percentage of non-stragglers.
    pub fn s_percentile(mut self, value: f64) -> Self {
        self.config.s_percentile = value;
        self
    }

    /// Sets the number of classes of the learning task.
    pub fn num_classes(mut self, value: usize) -> Self {
        self.config.num_classes = value;
        self
    }

    /// Sets the per-task SLO handed to I-Prof.
    pub fn slo(mut self, value: Slo) -> Self {
        self.config.slo = value;
        self
    }

    /// Sets the controller thresholds.
    pub fn thresholds(mut self, value: ControllerThresholds) -> Self {
        self.config.thresholds = value;
        self
    }

    /// Sets the network model the lease deadline budgets for.
    pub fn network(mut self, value: NetworkKind) -> Self {
        self.config.network = value;
        self
    }

    /// Sets the lease floor in logical rounds.
    pub fn lease_min_rounds(mut self, value: u64) -> Self {
        self.config.lease_min_rounds = value;
        self
    }

    /// Sets the seconds → logical-rounds lease conversion rate.
    pub fn lease_rounds_per_second(mut self, value: f64) -> Self {
        self.config.lease_rounds_per_second = value;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<FleetServerConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// A full checkpoint of a [`FleetServer`]'s mutable state. Restoring it into
/// a server built with the same [`FleetServerConfig`] resumes the run
/// bit-for-bit (see [`FleetServer::restore_checkpoint`]). The binary
/// encoding lives in [`crate::checkpoint`].
#[derive(Debug, Clone, PartialEq)]
pub struct FleetServerState {
    /// Parameter-server state (parameters, pending buffers, clocks,
    /// aggregator).
    pub parameter_server: ParameterServerState,
    /// I-Prof state (global + personalised slope models).
    pub iprof: IProfState,
    /// Controller acceptance counters.
    pub controller: ControllerCounters,
    /// The lease table.
    pub tasks: TaskTableState,
    /// Worker → device-model routing, sorted by worker id so the export is
    /// deterministic regardless of `HashMap` iteration order.
    pub device_models: Vec<(u64, String)>,
}

/// The FLeet middleware server.
#[derive(Debug)]
pub struct FleetServer {
    parameter_server: ParameterServer<AdaSgd>,
    iprof: IProf,
    controller: Controller,
    /// Outstanding-task leases, completed and expired sets (dedup).
    tasks: TaskTable,
    /// Device model of each worker, remembered from its last request so that
    /// result feedback can be routed to the right personalised I-Prof model.
    device_models: HashMap<u64, String>,
    config: FleetServerConfig,
    /// Where protocol events are reported; disabled (one branch per event
    /// site, no clock reads) unless a sink is installed via
    /// [`FleetServer::set_telemetry`].
    telemetry: TelemetryHandle,
}

impl FleetServer {
    /// Creates a server around an initial flat model parameter vector.
    pub fn new(initial_parameters: Vec<f32>, config: FleetServerConfig) -> Self {
        let aggregator = AdaSgd::new(config.num_classes, config.s_percentile);
        let core = CoreConfig {
            shards: config.core.shards.max(1),
            ..config.core.clone()
        };
        Self {
            parameter_server: ParameterServer::from_config(initial_parameters, aggregator, &core),
            iprof: IProf::new(config.slo),
            controller: Controller::new(config.thresholds),
            tasks: TaskTable::new(),
            device_models: HashMap::new(),
            config,
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Installs a telemetry sink; all protocol events from here on are
    /// reported through it. Pass [`TelemetryHandle::disabled`] to turn
    /// reporting back off.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = telemetry;
    }

    /// The server configuration.
    pub fn config(&self) -> &FleetServerConfig {
        &self.config
    }

    /// The current global model parameters.
    pub fn parameters(&self) -> &[f32] {
        self.parameter_server.parameters()
    }

    /// The server's logical clock (number of model updates so far in
    /// lockstep mode; the aggregation-round counter in per-shard mode).
    pub fn clock(&self) -> u64 {
        self.parameter_server.clock()
    }

    /// The per-shard vector clock (see
    /// [`fleet_core::ParameterServer::shard_clocks`]).
    pub fn shard_clocks(&self) -> Vec<u64> {
        self.parameter_server.shard_clocks()
    }

    /// The per-shard staleness attributed to the most recent result
    /// (per-shard mode; empty in lockstep — see
    /// [`fleet_core::ParameterServer::last_shard_staleness`]).
    pub fn last_shard_staleness(&self) -> &[u64] {
        self.parameter_server.last_shard_staleness()
    }

    /// Applies one shard's pending gradients immediately (per-shard mode
    /// only) — the scheduling freedom knob: a deployment can drain a shard
    /// ahead of its K-th submission when e.g. its segment is about to be
    /// handed to pull-heavy workers. See
    /// [`fleet_core::ParameterServer::flush_shard`].
    ///
    /// # Panics
    ///
    /// Panics in lockstep mode or when `shard` is out of range.
    pub fn flush_shard(&mut self, shard: usize) -> bool {
        self.parameter_server.flush_shard(shard)
    }

    /// Access to the controller statistics.
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Mutable access to I-Prof (e.g. to pre-train the cold-start models).
    pub fn iprof_mut(&mut self) -> &mut IProf {
        &mut self.iprof
    }

    /// Handles a learning-task request (steps 1–4 of Fig. 2), plus the
    /// fault-tolerance envelope: expired leases are reclaimed, overload is
    /// shed before admission, and accepted tasks get a lease whose deadline
    /// budgets I-Prof's predicted compute time plus the modelled network
    /// transfer.
    pub fn handle_request(&mut self, request: &TaskRequest) -> TaskResponse {
        let reclaimed = self.tasks.reclaim_expired(self.parameter_server.clock());
        if let Some(sink) = self.telemetry.get() {
            sink.add(Counter::Requests, 1);
            sink.add(Counter::TasksReclaimed, reclaimed.len() as u64);
        }
        self.device_models
            .insert(request.worker_id, request.device_model.clone());

        // Backpressure: shed the task before spending any admission work on
        // it when a shard's pending buffer is already at its bound.
        if let Some(shard) = self.parameter_server.saturated_shard() {
            self.controller.note_overload();
            if let Some(sink) = self.telemetry.get() {
                sink.add(Counter::RejectedOverloaded, 1);
            }
            return TaskResponse::Rejected(RejectionReason::Overloaded { shard });
        }

        // Step 2: I-Prof bounds the workload (and predicts its cost, which
        // sizes the task lease below).
        let prediction = self
            .iprof
            .predict_batch(&request.device_model, &request.device_features);
        let batch = prediction.batch_size;
        // Step 3: AdaSGD computes the similarity with past learning tasks.
        let similarity = self
            .parameter_server
            .aggregator()
            .similarity_of(&request.label_distribution) as f32;
        // Step 4: the controller decides whether the task is worth running.
        match self.controller.admit(batch, similarity) {
            Ok(()) => {
                let task_id = self.tasks.issue(
                    request.worker_id,
                    self.parameter_server.clock(),
                    self.lease_rounds(&prediction),
                );
                if let Some(sink) = self.telemetry.get() {
                    sink.add(Counter::Assignments, 1);
                }
                TaskResponse::Assignment(TaskAssignment {
                    task_id,
                    model_parameters: self.parameter_server.parameters().to_vec(),
                    model_version: self.parameter_server.clock(),
                    // Per-shard servers hand out the vector clock so the
                    // worker can echo it back and get per-shard staleness
                    // attribution; lockstep assignments stay as before
                    // (empty).
                    shard_clocks: match self.config.core.apply_mode {
                        ApplyMode::Lockstep => Vec::new(),
                        ApplyMode::PerShard => self.parameter_server.shard_clocks(),
                    },
                    mini_batch_size: batch,
                })
            }
            Err(reason) => {
                if let Some(sink) = self.telemetry.get() {
                    sink.add(
                        match reason {
                            RejectionReason::BatchTooSmall { .. } => Counter::RejectedBatchTooSmall,
                            RejectionReason::TooSimilar => Counter::RejectedTooSimilar,
                            RejectionReason::Overloaded { .. } => Counter::RejectedOverloaded,
                        },
                        1,
                    );
                }
                TaskResponse::Rejected(reason)
            }
        }
    }

    /// Lease duration for a task: the predicted compute time plus the
    /// network transfer of the model, converted to logical rounds, floored
    /// at [`FleetServerConfig::lease_min_rounds`]. A slow device on a slow
    /// network gets proportionally more time before reclaim.
    fn lease_rounds(&self, prediction: &fleet_profiler::BatchPrediction) -> u64 {
        let transfer = self
            .config
            .network
            .transfer_seconds(self.parameter_server.parameters().len());
        let seconds = prediction.predicted_seconds as f64 + transfer;
        let rounds = (seconds * self.config.lease_rounds_per_second).ceil() as u64;
        rounds.max(self.config.lease_min_rounds).max(1)
    }

    /// Handles a wire-encoded learning-task request: the byte-level entry
    /// point a transport (HTTP body, socket frame) would call.
    ///
    /// # Errors
    ///
    /// Returns the [`WireError`] when the buffer is truncated, has an unknown
    /// version, or contains malformed fields.
    pub fn handle_request_wire(&mut self, raw: Bytes) -> Result<TaskResponse, WireError> {
        Ok(self.handle_request(&wire::decode_request(raw)?))
    }

    /// Handles a wire-encoded worker result: the byte-level entry point a
    /// transport would call for step 5.
    ///
    /// # Errors
    ///
    /// Returns the [`WireError`] when the buffer is truncated, has an unknown
    /// version, or contains malformed fields.
    pub fn handle_result_wire(&mut self, raw: Bytes) -> Result<ResultAck, WireError> {
        Ok(self.handle_result(wire::decode_result(raw)?))
    }

    /// Handles a worker result (step 5): classifies it against the lease
    /// table, and — only when it is the first result for an outstanding
    /// lease — feeds the measured costs back to I-Prof and folds the
    /// gradient into the model with AdaSGD's weight. Duplicates, stragglers
    /// whose lease expired, and unsolicited uploads are acknowledged (so the
    /// worker stops retrying) but never touch the model: the handler is
    /// idempotent.
    pub fn handle_result(&mut self, result: TaskResult) -> ResultAck {
        let reclaimed = self.tasks.reclaim_expired(self.parameter_server.clock());
        if let Some(sink) = self.telemetry.get() {
            sink.add(Counter::Results, 1);
            sink.add(Counter::TasksReclaimed, reclaimed.len() as u64);
        }
        let disposition = match result.task_id {
            Some(task_id) => self.tasks.classify(task_id, result.worker_id),
            // Legacy id-less results (wire v1/v2 peers) bypass dedup, but a
            // result from a worker that never sent a request is still
            // rejected — it used to be applied and train I-Prof under a
            // fabricated "unknown" device model.
            None if self.device_models.contains_key(&result.worker_id) => {
                ResultDisposition::Applied
            }
            None => ResultDisposition::Unsolicited,
        };
        if disposition != ResultDisposition::Applied {
            if let Some(sink) = self.telemetry.get() {
                sink.add(
                    match disposition {
                        ResultDisposition::Duplicate => Counter::Duplicates,
                        ResultDisposition::Expired => Counter::Expired,
                        _ => Counter::Unsolicited,
                    },
                    1,
                );
            }
            return ResultAck {
                staleness: 0,
                scaling_factor: 0.0,
                model_updated: false,
                clock: self.parameter_server.clock(),
                disposition,
            };
        }
        let device_model = self
            .device_models
            .get(&result.worker_id)
            .cloned()
            .expect("an applied result implies a recorded request");
        // Feed the observation back into I-Prof. The features at request time
        // are approximated by the ones the device would report now; in the
        // real system the request features are cached server-side.
        let staleness = self
            .parameter_server
            .clock()
            .saturating_sub(result.model_version);
        let mut update = WorkerUpdate::new(
            result.gradient,
            staleness,
            result.label_distribution,
            result.num_samples,
            result.worker_id,
        );
        // A result carrying the read-time vector clock gets per-shard
        // staleness attribution (per-shard mode; a lockstep server ignores
        // it). Results from v1 peers fall back to the scalar staleness.
        if self.config.core.apply_mode == ApplyMode::PerShard
            && result
                .read_clock
                .as_ref()
                .is_some_and(|rc| rc.len() == self.parameter_server.num_shards())
        {
            update.read_clock = result.read_clock;
        }
        let applied_before = if self.telemetry.is_enabled() {
            self.parameter_server.shard_applied_counts()
        } else {
            Vec::new()
        };
        let outcome = self.parameter_server.submit(update);
        if let Some(sink) = self.telemetry.get() {
            sink.add(Counter::Applied, 1);
            if outcome.applied {
                sink.add(Counter::ModelUpdates, 1);
            }
            let applied_after = self.parameter_server.shard_applied_counts();
            for (shard, (after, before)) in
                applied_after.iter().zip(applied_before.iter()).enumerate()
            {
                if after > before {
                    sink.shard_applies(shard, after - before);
                }
            }
            for (shard, depth) in self
                .parameter_server
                .shard_pending_depths()
                .iter()
                .enumerate()
            {
                sink.queue_depth(shard, *depth as u64);
            }
        }
        // Record the execution for the profiler (device features omitted from
        // the result message; use the slope directly via a synthetic feature
        // observation keyed by the device model).
        self.iprof.observe(
            &device_model,
            &fleet_device::DeviceFeatures::default(),
            result.num_samples,
            result.computation_seconds,
            result.energy_pct,
        );
        ResultAck {
            staleness,
            scaling_factor: outcome.scaling_factor,
            model_updated: outcome.applied,
            clock: outcome.clock,
            disposition,
        }
    }

    /// The lease table (outstanding / completed / expired task counts).
    pub fn tasks(&self) -> &TaskTable {
        &self.tasks
    }

    /// Force-reclaims an outstanding task lease, returning whether anything
    /// was reclaimed. The socket transport calls this for every lease still
    /// in flight on a connection that disconnected (or blew its deadline):
    /// the dead worker's task re-enters the pool immediately through the
    /// same expired-set path a timed-out lease takes, so a straggler result
    /// from a resurrected worker is classified `Expired`, never applied.
    pub fn reclaim_task(&mut self, task_id: u64) -> bool {
        let reclaimed = self.tasks.reclaim(task_id).is_some();
        if reclaimed {
            if let Some(sink) = self.telemetry.get() {
                sink.add(Counter::TasksReclaimed, 1);
            }
        }
        reclaimed
    }

    /// Drains the parameter server ahead of a shutdown: in per-shard mode
    /// every shard with buffered gradients is flushed (applied) so the
    /// checkpoint captures their effect; in lockstep mode partially
    /// aggregated gradients are part of the deterministic trajectory and are
    /// checkpointed as pending instead. Returns the number of shards
    /// flushed.
    pub fn drain(&mut self) -> usize {
        match self.config.core.apply_mode {
            ApplyMode::Lockstep => 0,
            ApplyMode::PerShard => (0..self.parameter_server.num_shards())
                .filter(|&shard| self.parameter_server.flush_shard(shard))
                .count(),
        }
    }

    /// Min-over-shards applied-update frontier (see
    /// [`fleet_core::ParameterServer::updates_applied`]).
    pub fn updates_applied(&self) -> u64 {
        self.parameter_server.updates_applied()
    }

    /// Captures the server's full mutable state. Restoring it into a server
    /// built with the same [`FleetServerConfig`] resumes the run bit-for-bit
    /// — parameters, pending gradients, vector clocks, lease table, I-Prof
    /// models and controller counters all continue where they left off.
    pub fn checkpoint(&self) -> FleetServerState {
        let mut device_models: Vec<(u64, String)> = self
            // lint:allow(det-collections): order-insensitive — the export is
            // sorted by worker id two lines down before anything observes it
            // (regression: tests/determinism.rs checkpoint_device_models_*).
            .device_models
            .iter()
            .map(|(&id, model)| (id, model.clone()))
            .collect();
        device_models.sort_by_key(|(id, _)| *id);
        FleetServerState {
            parameter_server: self.parameter_server.export_state(),
            iprof: self.iprof.export_state(),
            controller: self.controller.counters(),
            tasks: self.tasks.export_state(),
            device_models,
        }
    }

    /// Restores state captured with [`FleetServer::checkpoint`].
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's parameter length or shard count does not
    /// match this server's configuration.
    pub fn restore_checkpoint(&mut self, state: FleetServerState) {
        self.parameter_server.restore_state(state.parameter_server);
        self.iprof.import_state(state.iprof);
        self.controller.restore_counters(state.controller);
        self.tasks = TaskTable::from_state(state.tasks);
        self.device_models = state.device_models.into_iter().collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::Worker;
    use fleet_data::partition::non_iid_shards;
    use fleet_data::synthetic::{generate, SyntheticSpec};
    use fleet_device::profile::catalogue;
    use fleet_device::Device;
    use fleet_ml::models::mlp_classifier;
    use std::sync::Arc;

    fn build_world(num_workers: usize) -> (FleetServer, Vec<Worker>, Arc<fleet_data::Dataset>) {
        let dataset = Arc::new(generate(&SyntheticSpec::vector(4, 6, 200), 1));
        let users = non_iid_shards(&dataset, num_workers, 2, 2);
        let model = mlp_classifier(6, &[8], 4, 0);
        let server = FleetServer::new(
            model.parameters(),
            FleetServerConfig::builder()
                .num_classes(4)
                .learning_rate(0.05)
                .build()
                .expect("valid config"),
        );
        let profiles = catalogue();
        let workers: Vec<Worker> = users
            .into_iter()
            .enumerate()
            .map(|(i, indices)| {
                Worker::new(
                    i as u64,
                    Device::new(profiles[i % profiles.len()].clone(), i as u64),
                    Arc::clone(&dataset),
                    indices,
                    mlp_classifier(6, &[8], 4, 0),
                    i as u64 + 100,
                )
            })
            .collect();
        (server, workers, dataset)
    }

    #[test]
    fn request_result_roundtrip_advances_the_model() {
        let (mut server, mut workers, _) = build_world(4);
        let before = server.parameters().to_vec();
        let mut updates = 0;
        for round in 0..3 {
            for worker in workers.iter_mut() {
                let request = worker.request();
                match server.handle_request(&request) {
                    TaskResponse::Assignment(assignment) => {
                        let result = worker.execute(&assignment).unwrap();
                        let ack = server.handle_result(result);
                        assert!(ack.scaling_factor > 0.0);
                        updates += 1;
                    }
                    TaskResponse::Rejected(reason) => {
                        panic!("permissive controller rejected a task in round {round}: {reason:?}")
                    }
                }
            }
        }
        assert_eq!(server.clock(), updates);
        assert_ne!(server.parameters(), before.as_slice());
    }

    #[test]
    fn staleness_is_derived_from_model_versions() {
        let (mut server, mut workers, _) = build_world(2);
        // Worker 0 pulls the model but is slow: worker 1 completes two tasks
        // in the meantime.
        let slow_request = workers[0].request();
        let slow_assignment = match server.handle_request(&slow_request) {
            TaskResponse::Assignment(a) => a,
            TaskResponse::Rejected(r) => panic!("rejected: {r:?}"),
        };
        for _ in 0..2 {
            let request = workers[1].request();
            if let TaskResponse::Assignment(a) = server.handle_request(&request) {
                let result = workers[1].execute(&a).unwrap();
                server.handle_result(result);
            }
        }
        let slow_result = workers[0].execute(&slow_assignment).unwrap();
        let ack = server.handle_result(slow_result);
        assert_eq!(ack.staleness, 2);
        // The weight is dampened by staleness but may be boosted back up to
        // (at most) 1.0 when the slow worker's labels are novel.
        assert!(ack.scaling_factor > 0.0 && ack.scaling_factor <= 1.0);
    }

    #[test]
    fn wire_entry_points_drive_the_full_protocol() {
        let (mut server, mut workers, _) = build_world(4);
        let before = server.parameters().to_vec();
        for worker in workers.iter_mut() {
            let response = server
                .handle_request_wire(worker.request_wire())
                .expect("self-encoded request");
            match response {
                TaskResponse::Assignment(assignment) => {
                    let raw = worker.execute_wire(&assignment).unwrap();
                    let ack = server.handle_result_wire(raw).expect("self-encoded result");
                    assert!(ack.scaling_factor > 0.0);
                }
                TaskResponse::Rejected(reason) => panic!("unexpected rejection: {reason:?}"),
            }
        }
        assert_eq!(server.clock(), 4);
        assert_ne!(server.parameters(), before.as_slice());
        // Malformed bytes surface as wire errors, not panics.
        assert!(server.handle_result_wire(Bytes::from(vec![9u8])).is_err());
    }

    #[test]
    fn sharded_server_matches_single_shard_reference() {
        let (mut sharded, mut workers, _) = build_world(4);
        let mut reference = FleetServer::new(
            sharded.parameters().to_vec(),
            sharded.config().to_builder().shards(1).build().unwrap(),
        );
        sharded = FleetServer::new(
            sharded.parameters().to_vec(),
            sharded.config().to_builder().shards(8).build().unwrap(),
        );
        for _ in 0..3 {
            for worker in workers.iter_mut() {
                let request = worker.request();
                let (a, b) = (
                    reference.handle_request(&request),
                    sharded.handle_request(&request),
                );
                assert_eq!(a, b);
                if let TaskResponse::Assignment(assignment) = a {
                    let result = worker.execute(&assignment).unwrap();
                    let ack_ref = reference.handle_result(result.clone());
                    let ack_sharded = sharded.handle_result(result);
                    assert_eq!(ack_ref, ack_sharded);
                    assert_eq!(reference.parameters(), sharded.parameters());
                }
            }
        }
        assert_eq!(reference.clock(), sharded.clock());
    }

    #[test]
    fn per_shard_mode_attributes_vector_clock_staleness_end_to_end() {
        let (base, mut workers, _) = build_world(2);
        let mut server = FleetServer::new(
            base.parameters().to_vec(),
            base.config()
                .to_builder()
                .shards(4)
                .aggregation_k(2)
                .apply_mode(ApplyMode::PerShard)
                .build()
                .unwrap(),
        );
        // Both workers pull at vector clock [0, 0, 0, 0].
        let pull = |server: &mut FleetServer, worker: &mut Worker| {
            let request = worker.request();
            match server.handle_request(&request) {
                TaskResponse::Assignment(a) => a,
                TaskResponse::Rejected(r) => panic!("rejected: {r:?}"),
            }
        };
        let a0 = pull(&mut server, &mut workers[0]);
        let a1 = pull(&mut server, &mut workers[1]);
        assert_eq!(a0.shard_clocks, vec![0; 4]);

        // First result buffers on every shard (K = 2) ...
        let r0 = workers[0].execute(&a0).unwrap();
        assert!(r0.read_clock.is_some(), "worker must echo the vector clock");
        let ack0 = server.handle_result(r0);
        assert!(!ack0.model_updated);
        // ... then shard 0 is drained ahead of its K-th submission.
        assert!(server.flush_shard(0));
        assert_eq!(server.shard_clocks(), vec![1, 0, 0, 0]);

        // The second result sees the divergence: shard 0 applied one update
        // since the worker's read, the others none.
        let r1 = workers[1].execute(&a1).unwrap();
        let ack1 = server.handle_result(r1);
        assert!(ack1.model_updated, "shards 1–3 reach K on this result");
        assert_eq!(server.last_shard_staleness(), &[1, 0, 0, 0]);
        assert_eq!(server.shard_clocks(), vec![1, 1, 1, 1]);
        assert!(ack1.scaling_factor > 0.0 && ack1.scaling_factor <= 1.0);
    }

    #[test]
    fn controller_thresholds_reject_small_batches() {
        let dataset = Arc::new(generate(&SyntheticSpec::vector(4, 6, 40), 3));
        let model = mlp_classifier(6, &[8], 4, 0);
        let mut server = FleetServer::new(
            model.parameters(),
            FleetServerConfig::builder()
                .num_classes(4)
                .thresholds(ControllerThresholds {
                    min_batch_size: usize::MAX,
                    max_similarity: None,
                })
                .build()
                .expect("valid config"),
        );
        let mut worker = Worker::new(
            0,
            Device::new(catalogue()[0].clone(), 0),
            dataset,
            (0..40).collect(),
            mlp_classifier(6, &[8], 4, 0),
            1,
        );
        let request = worker.request();
        match server.handle_request(&request) {
            TaskResponse::Rejected(_) => {}
            TaskResponse::Assignment(_) => panic!("expected rejection"),
        }
        assert_eq!(server.controller().rejected(), 1);
    }

    #[test]
    fn training_improves_accuracy_end_to_end() {
        let (mut server, mut workers, dataset) = build_world(6);
        let mut eval_model = mlp_classifier(6, &[8], 4, 0);
        let (inputs, labels) = dataset.batch(&(0..dataset.len()).collect::<Vec<_>>());

        eval_model.set_parameters(server.parameters()).unwrap();
        let before = fleet_ml::metrics::accuracy(&eval_model.predict(&inputs).unwrap(), &labels);

        for _ in 0..30 {
            for worker in workers.iter_mut() {
                let request = worker.request();
                if let TaskResponse::Assignment(mut a) = server.handle_request(&request) {
                    // Keep the batches small so the test stays fast.
                    a.mini_batch_size = a.mini_batch_size.min(32);
                    let result = worker.execute(&a).unwrap();
                    server.handle_result(result);
                }
            }
        }
        eval_model.set_parameters(server.parameters()).unwrap();
        let after = fleet_ml::metrics::accuracy(&eval_model.predict(&inputs).unwrap(), &labels);
        assert!(
            after > before + 0.1,
            "accuracy should improve: {before} -> {after}"
        );
    }

    fn forged_result(server: &FleetServer, worker_id: u64) -> TaskResult {
        TaskResult {
            worker_id,
            model_version: 0,
            gradient: fleet_ml::Gradient::from_vec(vec![1.0; server.parameters().len()]),
            label_distribution: fleet_data::LabelDistribution::from_labels(&[0, 1], 4),
            num_samples: 2,
            computation_seconds: 1.0,
            energy_pct: 0.5,
            read_clock: None,
            task_id: None,
        }
    }

    #[test]
    fn unsolicited_results_are_rejected() {
        // Regression: an id-less result from a worker that never sent a
        // request used to be applied — and trained I-Prof under a fabricated
        // "unknown" device model. It must be rejected without side effects.
        let (mut server, _, _) = build_world(2);
        let before = server.parameters().to_vec();
        let ack = server.handle_result(forged_result(&server, 999));
        assert_eq!(ack.disposition, ResultDisposition::Unsolicited);
        assert!(!ack.model_updated);
        assert_eq!(ack.scaling_factor, 0.0);
        assert_eq!(server.clock(), 0);
        assert_eq!(server.parameters(), before.as_slice());
        assert!(
            server.checkpoint().iprof.latency.personal.is_empty(),
            "a rejected result must not train I-Prof"
        );
    }

    #[test]
    fn legacy_idless_results_from_known_workers_still_apply() {
        // Wire v1/v2 peers carry no task id; their results bypass dedup but
        // stay accepted as long as the worker has actually registered.
        let (mut server, mut workers, _) = build_world(2);
        let request = workers[0].request();
        assert!(matches!(
            server.handle_request(&request),
            TaskResponse::Assignment(_)
        ));
        let ack = server.handle_result(forged_result(&server, request.worker_id));
        assert_eq!(ack.disposition, ResultDisposition::Applied);
        assert!(ack.model_updated);
    }

    #[test]
    fn wire_duplicate_replay_is_rejected() {
        // The same wire bytes delivered twice: the first copy applies, the
        // second is acknowledged as a duplicate and the model is untouched.
        let (mut server, mut workers, _) = build_world(2);
        let response = server
            .handle_request_wire(workers[0].request_wire())
            .expect("self-encoded request");
        let assignment = match response {
            TaskResponse::Assignment(a) => a,
            TaskResponse::Rejected(r) => panic!("rejected: {r:?}"),
        };
        let raw = workers[0].execute_wire(&assignment).unwrap();
        let first = server.handle_result_wire(raw.clone()).unwrap();
        assert_eq!(first.disposition, ResultDisposition::Applied);
        assert!(first.model_updated);

        let after_first = server.parameters().to_vec();
        let clock_after_first = server.clock();
        let second = server.handle_result_wire(raw).unwrap();
        assert_eq!(second.disposition, ResultDisposition::Duplicate);
        assert!(!second.model_updated);
        assert_eq!(second.scaling_factor, 0.0);
        assert_eq!(server.clock(), clock_after_first);
        assert_eq!(server.parameters(), after_first.as_slice());
        assert_eq!(server.tasks().completed_len(), 1);
    }

    #[test]
    fn expired_leases_reject_straggler_results() {
        let (base, mut workers, _) = build_world(2);
        // A one-round lease: zero rounds-per-second budget floored at 1.
        let mut server = FleetServer::new(
            base.parameters().to_vec(),
            base.config()
                .to_builder()
                .lease_min_rounds(1)
                .lease_rounds_per_second(0.0)
                .build()
                .unwrap(),
        );
        let slow_assignment = match server.handle_request(&workers[0].request()) {
            TaskResponse::Assignment(a) => a,
            TaskResponse::Rejected(r) => panic!("rejected: {r:?}"),
        };
        // Worker 1 completes a task, advancing the clock past the deadline.
        if let TaskResponse::Assignment(a) = server.handle_request(&workers[1].request()) {
            server.handle_result(workers[1].execute(&a).unwrap());
        }
        assert_eq!(server.clock(), 1);
        let straggler = workers[0].execute(&slow_assignment).unwrap();
        let before = server.parameters().to_vec();
        let ack = server.handle_result(straggler);
        assert_eq!(ack.disposition, ResultDisposition::Expired);
        assert!(!ack.model_updated);
        assert_eq!(server.parameters(), before.as_slice());
        assert_eq!(server.tasks().expired_len(), 1);
    }

    #[test]
    fn overload_backpressure_sheds_requests() {
        let (base, mut workers, _) = build_world(3);
        // K = 100 means nothing ever applies; max_pending = 1 saturates the
        // single shard after one buffered gradient.
        let mut server = FleetServer::new(
            base.parameters().to_vec(),
            base.config()
                .to_builder()
                .aggregation_k(100)
                .max_pending(1)
                .build()
                .unwrap(),
        );
        let a = match server.handle_request(&workers[0].request()) {
            TaskResponse::Assignment(a) => a,
            TaskResponse::Rejected(r) => panic!("rejected: {r:?}"),
        };
        let ack = server.handle_result(workers[0].execute(&a).unwrap());
        assert_eq!(ack.disposition, ResultDisposition::Applied);
        assert!(!ack.model_updated, "K = 100 only buffers");

        match server.handle_request(&workers[1].request()) {
            TaskResponse::Rejected(RejectionReason::Overloaded { shard }) => {
                assert_eq!(shard, 0);
            }
            other => panic!("expected overload rejection, got {other:?}"),
        }
        assert_eq!(server.controller().rejected_for_overload(), 1);
        assert_eq!(server.controller().rejected(), 1);
    }

    #[test]
    fn reclaimed_tasks_reject_the_dead_workers_straggler() {
        // A worker disconnects mid-task: the transport reclaims its lease,
        // and a late upload (the worker came back) is Expired, not applied.
        let (mut server, mut workers, _) = build_world(2);
        let assignment = match server.handle_request(&workers[0].request()) {
            TaskResponse::Assignment(a) => a,
            TaskResponse::Rejected(r) => panic!("rejected: {r:?}"),
        };
        assert!(server.reclaim_task(assignment.task_id));
        assert!(!server.reclaim_task(assignment.task_id), "idempotent");
        assert_eq!(server.tasks().outstanding_len(), 0);
        assert_eq!(server.tasks().expired_len(), 1);

        let straggler = workers[0].execute(&assignment).unwrap();
        let before = server.parameters().to_vec();
        let ack = server.handle_result(straggler);
        assert_eq!(ack.disposition, ResultDisposition::Expired);
        assert_eq!(server.parameters(), before.as_slice());

        // The freed worker immediately gets a fresh lease.
        assert!(matches!(
            server.handle_request(&workers[0].request()),
            TaskResponse::Assignment(_)
        ));
    }

    #[test]
    fn drain_flushes_per_shard_pending_and_noops_in_lockstep() {
        let (base, mut workers, _) = build_world(2);
        let mut lockstep = FleetServer::new(
            base.parameters().to_vec(),
            base.config().to_builder().aggregation_k(2).build().unwrap(),
        );
        if let TaskResponse::Assignment(a) = lockstep.handle_request(&workers[0].request()) {
            lockstep.handle_result(workers[0].execute(&a).unwrap());
        }
        let before = lockstep.parameters().to_vec();
        assert_eq!(lockstep.drain(), 0, "lockstep pending is checkpointable");
        assert_eq!(lockstep.parameters(), before.as_slice());

        let mut per_shard = FleetServer::new(
            base.parameters().to_vec(),
            base.config()
                .to_builder()
                .aggregation_k(2)
                .shards(2)
                .apply_mode(ApplyMode::PerShard)
                .build()
                .unwrap(),
        );
        if let TaskResponse::Assignment(a) = per_shard.handle_request(&workers[1].request()) {
            per_shard.handle_result(workers[1].execute(&a).unwrap());
        }
        let before = per_shard.parameters().to_vec();
        assert_eq!(per_shard.drain(), 2, "both shards held a buffered gradient");
        assert_ne!(
            per_shard.parameters(),
            before.as_slice(),
            "the flushed gradient reaches the model before the checkpoint"
        );
        assert_eq!(per_shard.drain(), 0, "nothing left to flush");
    }

    #[test]
    fn lease_straddling_a_checkpoint_survives_restore() {
        // Audit regression: a lease outstanding at checkpoint time must
        // travel through the checkpoint codec intact — a restore must
        // neither orphan the issued task id (the upload would come back
        // `Unsolicited`) nor forget the dedup/expiry bookkeeping around it.
        let (mut server, mut workers, _) = build_world(2);
        let assignment = match server.handle_request(&workers[0].request()) {
            TaskResponse::Assignment(a) => a,
            TaskResponse::Rejected(r) => panic!("rejected: {r:?}"),
        };
        let encoded = crate::checkpoint::encode_checkpoint(&server.checkpoint());
        let state = crate::checkpoint::decode_checkpoint(encoded).expect("roundtrip");
        assert_eq!(state.tasks.outstanding.len(), 1, "lease must be captured");

        let mut restored = FleetServer::new(
            vec![0.0; server.parameters().len()],
            server.config().clone(),
        );
        restored.restore_checkpoint(state.clone());
        assert_eq!(restored.tasks().outstanding_len(), 1);

        // The pre-checkpoint upload applies exactly once after restore.
        let result = workers[0].execute(&assignment).unwrap();
        let ack = restored.handle_result(result.clone());
        assert_eq!(ack.disposition, ResultDisposition::Applied);
        assert_eq!(
            restored.handle_result(result.clone()).disposition,
            ResultDisposition::Duplicate
        );
        assert_eq!(restored.tasks().outstanding_len(), 0);
        assert_eq!(restored.tasks().completed_len(), 1);

        // Task-id continuity: the restored table never reuses the id.
        match restored.handle_request(&workers[1].request()) {
            TaskResponse::Assignment(next) => assert!(next.task_id > assignment.task_id),
            TaskResponse::Rejected(r) => panic!("rejected: {r:?}"),
        }

        // The other deterministic fate: a restore that reclaims the lease
        // (worker presumed dead) classifies the straggler Expired.
        let mut reclaimed = FleetServer::new(
            vec![0.0; server.parameters().len()],
            server.config().clone(),
        );
        reclaimed.restore_checkpoint(state);
        assert!(reclaimed.reclaim_task(assignment.task_id));
        let straggler = workers[0].execute(&assignment).unwrap();
        assert_eq!(
            reclaimed.handle_result(straggler).disposition,
            ResultDisposition::Expired
        );
    }

    #[test]
    fn checkpoint_restore_resumes_bitwise() {
        // Crash-restart the server mid-run: encode the checkpoint through
        // the binary codec, restore into a freshly built server, and both
        // must stay bit-identical under the same subsequent traffic.
        let (mut server, mut workers, _) = build_world(4);
        for worker in workers.iter_mut() {
            if let TaskResponse::Assignment(a) = server.handle_request(&worker.request()) {
                server.handle_result(worker.execute(&a).unwrap());
            }
        }
        let encoded = crate::checkpoint::encode_checkpoint(&server.checkpoint());
        let state = crate::checkpoint::decode_checkpoint(encoded).expect("roundtrip");
        assert_eq!(state, server.checkpoint());

        let mut restored = FleetServer::new(
            vec![0.0; server.parameters().len()],
            server.config().clone(),
        );
        restored.restore_checkpoint(state);
        assert_eq!(restored.parameters(), server.parameters());

        for worker in workers.iter_mut() {
            let request = worker.request();
            let (a, b) = (
                server.handle_request(&request),
                restored.handle_request(&request),
            );
            assert_eq!(a, b);
            if let TaskResponse::Assignment(assignment) = a {
                let result = worker.execute(&assignment).unwrap();
                assert_eq!(
                    server.handle_result(result.clone()),
                    restored.handle_result(result)
                );
            }
        }
        assert_eq!(server.parameters(), restored.parameters());
        assert_eq!(server.checkpoint(), restored.checkpoint());
    }

    proptest::proptest! {
        #[test]
        fn prop_duplicate_replays_never_advance_the_model(
            dup_counts in proptest::collection::vec(1usize..4, 4),
        ) {
            // For any duplication schedule — including late replays after
            // the clock has advanced — the model evolves exactly as in the
            // applied-once schedule.
            let (mut duplicated, mut workers, _) = build_world(4);
            let mut reference = FleetServer::new(
                duplicated.parameters().to_vec(),
                duplicated.config().clone(),
            );
            let mut sent = Vec::new();
            for (worker, dups) in workers.iter_mut().zip(dup_counts) {
                let request = worker.request();
                let (a, b) = (
                    duplicated.handle_request(&request),
                    reference.handle_request(&request),
                );
                proptest::prop_assert_eq!(&a, &b);
                if let TaskResponse::Assignment(mut assignment) = a {
                    // Keep the batches small so the 64 proptest cases stay fast.
                    assignment.mini_batch_size = assignment.mini_batch_size.min(8);
                    let result = worker.execute(&assignment).unwrap();
                    let ack = reference.handle_result(result.clone());
                    proptest::prop_assert_eq!(ack.disposition, ResultDisposition::Applied);
                    for copy in 0..dups {
                        let ack = duplicated.handle_result(result.clone());
                        let expected = if copy == 0 {
                            ResultDisposition::Applied
                        } else {
                            ResultDisposition::Duplicate
                        };
                        proptest::prop_assert_eq!(ack.disposition, expected);
                    }
                    sent.push(result);
                }
            }
            // A full late replay of everything: all duplicates, no effect.
            for result in sent {
                let ack = duplicated.handle_result(result);
                proptest::prop_assert_eq!(ack.disposition, ResultDisposition::Duplicate);
            }
            proptest::prop_assert_eq!(duplicated.clock(), reference.clock());
            proptest::prop_assert_eq!(duplicated.updates_applied(), reference.updates_applied());
            proptest::prop_assert_eq!(duplicated.parameters(), reference.parameters());
        }
    }
}
