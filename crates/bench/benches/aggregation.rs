//! Micro-benchmarks of the gradient-aggregation hot path: the per-update cost
//! of the ParameterServer under each aggregation algorithm.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fleet_core::{AdaSgd, Aggregator, DynSgd, FedAvg, ParameterServer, WorkerUpdate};
use fleet_data::LabelDistribution;
use fleet_ml::Gradient;

const MODEL_SIZE: usize = 10_000;

fn update(staleness: u64) -> WorkerUpdate {
    WorkerUpdate::new(
        Gradient::from_vec(vec![0.01; MODEL_SIZE]),
        staleness,
        LabelDistribution::from_labels(&[0, 1, 2, 3, 4], 10),
        100,
        7,
    )
}

fn bench_submit<A: Aggregator + 'static>(c: &mut Criterion, name: &str, make: impl Fn() -> A) {
    c.bench_with_input(
        BenchmarkId::new("parameter_server_submit", name),
        &MODEL_SIZE,
        |b, &size| {
            let mut server = ParameterServer::new(vec![0.0; size], make(), 0.01, 1);
            let mut staleness = 0u64;
            b.iter(|| {
                staleness = (staleness + 1) % 20;
                black_box(server.submit(update(staleness)))
            });
        },
    );
}

fn aggregation_benches(c: &mut Criterion) {
    bench_submit(c, "AdaSGD", || AdaSgd::new(10, 99.7));
    bench_submit(c, "DynSGD", DynSgd::new);
    bench_submit(c, "FedAvg", FedAvg::new);

    c.bench_function("adasgd_scaling_factor_only", |b| {
        let mut ada = AdaSgd::new(10, 99.7);
        for i in 0..64 {
            ada.record(&update(i % 15));
        }
        let u = update(30);
        b.iter(|| black_box(ada.scaling_factor(&u)));
    });
}

criterion_group!(benches, aggregation_benches);
criterion_main!(benches);
