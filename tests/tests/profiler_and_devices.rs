//! Integration tests spanning the device simulator and the profilers:
//! calibration, SLO tracking, and the CALOREE comparison.

use fleet_device::caloree::train_on_profile;
use fleet_device::profile::{by_name, catalogue};
use fleet_device::Device;
use fleet_profiler::eval::DeviationStats;
use fleet_profiler::training::{collect_calibration, pretrained_iprof, pretrained_maui};
use fleet_profiler::{Slo, WorkloadProfiler};

#[test]
fn iprof_tracks_the_latency_slo_better_than_maui_across_the_fleet() {
    let slo = Slo::latency(3.0);
    let training: Vec<_> = catalogue().into_iter().take(12).collect();
    let calibration = collect_calibration(&training, slo, 8, 40, 77);
    let mut iprof = pretrained_iprof(slo, &calibration);
    let mut maui = pretrained_maui(slo, &calibration);

    let mut iprof_latencies = Vec::new();
    let mut maui_latencies = Vec::new();
    for (i, profile) in catalogue().into_iter().enumerate().skip(12).take(10) {
        let mut device_i = Device::new(profile.clone(), 300 + i as u64);
        let mut device_m = Device::new(profile.clone(), 300 + i as u64);
        for _ in 0..6 {
            let f = device_i.features();
            let n = iprof.predict(&profile.name, &f);
            let e = device_i.execute_task(n);
            iprof.observe(&profile.name, &f, n, e.computation_seconds, e.energy_pct);
            iprof_latencies.push(e.computation_seconds);
            device_i.idle(60.0);

            let fm = device_m.features();
            let nm = maui.predict(&profile.name, &fm);
            let em = device_m.execute_task(nm);
            maui.observe(
                &profile.name,
                &fm,
                nm,
                em.computation_seconds,
                em.energy_pct,
            );
            maui_latencies.push(em.computation_seconds);
            device_m.idle(60.0);
        }
    }
    let iprof_p90 = DeviationStats::from_measurements(&iprof_latencies, 3.0).p90;
    let maui_p90 = DeviationStats::from_measurements(&maui_latencies, 3.0).p90;
    assert!(
        iprof_p90 < maui_p90,
        "I-Prof p90 deviation {iprof_p90} should beat MAUI {maui_p90}"
    );
}

#[test]
fn energy_slo_keeps_tasks_cheap() {
    let slo = Slo::energy(0.075);
    let training: Vec<_> = catalogue().into_iter().take(12).collect();
    let calibration = collect_calibration(&training, Slo::latency(3.0), 8, 40, 88);
    let mut iprof = pretrained_iprof(slo, &calibration);

    let profile = by_name("Galaxy S8").unwrap();
    let mut device = Device::new(profile.clone(), 9);
    let mut worst = 0.0f32;
    for _ in 0..8 {
        let f = device.features();
        let n = iprof.predict(&profile.name, &f);
        let e = device.execute_task(n);
        iprof.observe(&profile.name, &f, n, e.computation_seconds, e.energy_pct);
        worst = worst.max(e.energy_pct);
        device.idle(120.0);
    }
    assert!(
        worst < 0.075 * 4.0,
        "energy per task should stay near the SLO, worst was {worst}%"
    );
}

#[test]
fn caloree_pht_transfer_error_grows_with_device_dissimilarity() {
    let (mut s7, caloree) = train_on_profile(by_name("Galaxy S7").unwrap(), 400, 3);
    s7.idle(1e5);
    let batch = 800;
    let deadline = s7.true_latency_slope() * batch as f32;

    let err_same = caloree.transfer_deadline_error(&mut s7, batch, deadline, 5);
    let mut honor10 = Device::new(by_name("Honor 10").unwrap(), 4);
    let err_far = caloree.transfer_deadline_error(&mut honor10, batch, deadline, 5);
    assert!(
        err_same < err_far,
        "same-device {err_same}% vs transfer {err_far}%"
    );
}
