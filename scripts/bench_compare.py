#!/usr/bin/env python3
"""Compare a fresh fleet-bench JSON artifact against a committed baseline.

Usage:
    bench_compare.py BASELINE.json FRESH.json [--max-slowdown R]
                     [--gate-percentiles]
    bench_compare.py --validate FILE.json

Exits non-zero when any benchmark present in both files slowed down by more
than the threshold (relative: fresh_mean / baseline_mean > R). Benchmarks
present on only one side are reported but never fail the gate (they are new
or retired, not regressed). Stdlib only — this runs inside the CI container.

v2 artifacts (`"schema": "fleet-bench-v2"`) may extend entries with latency
percentile fields (`<metric>_p50_ns` / `_p99_ns` / `_p999_ns`); whenever both
sides carry the same percentile field it is diffed and printed under its
benchmark. Percentile ratios are informational unless --gate-percentiles is
passed — tail latencies on shared CI hosts are noisy, so the default gate
stays on the mean.

--validate checks a single artifact against the frozen fleet-bench-v2 shape
(schema tag, meta object, non-empty benchmarks with the mandatory
name/mean_ns/iterations triple and well-typed extended fields) without
comparing anything.

The threshold defaults to 1.5 (50% slowdown) and can be overridden with
--max-slowdown or the FLEET_BENCH_MAX_SLOWDOWN environment variable; bench
smokes run with short measurement windows on shared CI hosts, so tight
thresholds would flake.
"""

import argparse
import json
import os
import sys

PERCENTILE_SUFFIXES = ("_p50_ns", "_p99_ns", "_p999_ns")


def load(path):
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    benchmarks = {b["name"]: b for b in doc.get("benchmarks", [])}
    return doc, benchmarks


def validate(path):
    """Checks one artifact against the frozen fleet-bench-v2 shape."""
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_compare: FAIL: {path}: unreadable: {exc}")
        return 1

    if doc.get("schema") != "fleet-bench-v2":
        errors.append(f"schema is {doc.get('schema')!r}, expected 'fleet-bench-v2'")
    if not isinstance(doc.get("meta"), dict):
        errors.append("meta object missing")
    benchmarks = doc.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        errors.append("benchmarks array missing or empty")
        benchmarks = []
    seen = set()
    for i, entry in enumerate(benchmarks):
        where = f"benchmarks[{i}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: not an object")
            continue
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing name")
        elif name in seen:
            errors.append(f"{where}: duplicate name {name!r}")
        else:
            seen.add(name)
        if not isinstance(entry.get("mean_ns"), (int, float)) or isinstance(
            entry.get("mean_ns"), bool
        ):
            errors.append(f"{where}: mean_ns missing or non-numeric")
        if not isinstance(entry.get("iterations"), int):
            errors.append(f"{where}: iterations missing or non-integer")
        for key, value in entry.items():
            if key == "name":
                continue
            if key.endswith("_ns") and not isinstance(value, (int, float)):
                errors.append(f"{where}: {key} is not numeric")
            if (
                key.endswith(PERCENTILE_SUFFIXES)
                and isinstance(value, (int, float))
                and value < 0
            ):
                errors.append(f"{where}: {key} is negative")

    if errors:
        for error in errors:
            print(f"bench_compare: FAIL: {path}: {error}")
        return 1
    print(
        f"bench_compare: {path}: valid fleet-bench-v2 "
        f"({len(benchmarks)} benchmark(s))"
    )
    return 0


def shared_percentile_keys(base_entry, fresh_entry):
    """Percentile fields carried by both sides, in a stable order."""
    return sorted(
        key
        for key in base_entry
        if key.endswith(PERCENTILE_SUFFIXES)
        and isinstance(base_entry.get(key), (int, float))
        and isinstance(fresh_entry.get(key), (int, float))
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh", nargs="?")
    parser.add_argument(
        "--validate",
        action="store_true",
        help="validate a single artifact against the fleet-bench-v2 shape",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=float(os.environ.get("FLEET_BENCH_MAX_SLOWDOWN", "1.5")),
        help="maximum allowed fresh/baseline mean ratio (default 1.5)",
    )
    parser.add_argument(
        "--gate-percentiles",
        action="store_true",
        help="apply the slowdown threshold to percentile fields too",
    )
    args = parser.parse_args()

    if args.validate:
        if args.fresh is not None:
            parser.error("--validate takes exactly one file")
        return validate(args.baseline)
    if args.fresh is None:
        parser.error("comparison needs BASELINE.json and FRESH.json")

    base_doc, base = load(args.baseline)
    fresh_doc, fresh = load(args.fresh)

    meta = fresh_doc.get("meta", {})
    if meta.get("fan_out_inline", meta.get("available_parallelism") == 1):
        print(
            "bench_compare: NOTE: this host runs the shard/kernel fan-out "
            "inline (single effective core), so multi-shard and multi-thread "
            "numbers measure the serial path — absolute comparisons against "
            "multi-core baselines are meaningless (see the PR 2 caveat in "
            "ROADMAP.md)."
        )
    base_meta = base_doc.get("meta", {})
    for key in ("available_parallelism", "fleet_num_threads", "fleet_simd"):
        if base_meta.get(key) != meta.get(key):
            print(
                f"bench_compare: NOTE: meta '{key}' differs "
                f"(baseline={base_meta.get(key)!r}, fresh={meta.get(key)!r}); "
                "ratios may reflect configuration, not code."
            )

    failures = []
    for name in sorted(set(base) | set(fresh)):
        if name not in base:
            fresh_mean = float(fresh[name]["mean_ns"])
            print(f"bench_compare: new benchmark {name}: {fresh_mean:.1f} ns (no baseline)")
            continue
        if name not in fresh:
            base_mean = float(base[name]["mean_ns"])
            print(f"bench_compare: benchmark {name} retired (baseline {base_mean:.1f} ns)")
            continue
        base_mean = float(base[name]["mean_ns"])
        fresh_mean = float(fresh[name]["mean_ns"])
        if base_mean <= 0.0:
            print(f"bench_compare: skipping {name}: non-positive baseline mean")
            continue
        ratio = fresh_mean / base_mean
        marker = "OK"
        if ratio > args.max_slowdown:
            marker = "REGRESSION"
            failures.append((name, ratio))
        print(
            f"bench_compare: {marker:>10} {name}: {base_mean:.1f} -> "
            f"{fresh_mean:.1f} ns ({ratio:.2f}x)"
        )
        for key in shared_percentile_keys(base[name], fresh[name]):
            base_v = float(base[name][key])
            fresh_v = float(fresh[name][key])
            if base_v <= 0.0:
                continue
            p_ratio = fresh_v / base_v
            p_marker = "ok"
            if p_ratio > args.max_slowdown:
                if args.gate_percentiles:
                    p_marker = "REGRESSION"
                    failures.append((f"{name}:{key}", p_ratio))
                else:
                    p_marker = "slower"
            print(
                f"bench_compare:     {p_marker:>10} {key}: {base_v:.0f} -> "
                f"{fresh_v:.0f} ns ({p_ratio:.2f}x)"
            )

    if failures:
        worst = max(failures, key=lambda f: f[1])
        print(
            f"bench_compare: FAIL: {len(failures)} benchmark(s) exceeded the "
            f"{args.max_slowdown:.2f}x slowdown threshold "
            f"(worst: {worst[0]} at {worst[1]:.2f}x)"
        )
        return 1
    print(f"bench_compare: all shared benchmarks within {args.max_slowdown:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
