// Fixture: markers that must NOT suppress. Expect the underlying findings
// to survive plus lint-marker findings for each malformed marker
// (reason-less, unknown rule, wrong rule).

pub fn reasonless(p: *const u32) -> u32 {
    // lint:allow(unsafe-safety)
    unsafe { *p }
}

pub fn unknown_rule() {
    // lint:allow(no-such-rule): the rule name is a typo
    use std::time::Instant;
    let _ = Instant::now();
}

pub fn wrong_rule() {
    // lint:allow(unsafe-safety): names a different rule than the finding
    std::thread::spawn(|| {});
}
