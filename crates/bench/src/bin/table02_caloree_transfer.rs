//! Regenerates the corresponding table/figure of the paper. Pass `--quick`
//! for a fast smoke-test configuration.
fn main() {
    fleet_bench::experiments::table02_caloree_transfer::run(fleet_bench::Scale::from_args());
}
