//! Writing experiment results to the `results/` directory in a uniform,
//! diff-friendly CSV-like format.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Writes one experiment's output both to stdout and to a file under the
/// results directory.
#[derive(Debug)]
pub struct ExperimentWriter {
    path: PathBuf,
    lines: Vec<String>,
}

impl ExperimentWriter {
    /// Creates a writer for `results/<name>.csv` relative to the workspace
    /// root (or the current directory when run elsewhere).
    pub fn new(name: &str) -> Self {
        let dir = workspace_results_dir();
        Self {
            path: dir.join(format!("{name}.csv")),
            lines: Vec::new(),
        }
    }

    /// Adds a header or data row (comma-separated values supplied by caller).
    pub fn row(&mut self, line: impl Into<String>) {
        let line = line.into();
        println!("{line}");
        self.lines.push(line);
    }

    /// Adds a comment line (prefixed with `#`).
    pub fn comment(&mut self, line: impl AsRef<str>) {
        let line = format!("# {}", line.as_ref());
        println!("{line}");
        self.lines.push(line);
    }

    /// Flushes the collected rows to disk. Errors are reported to stderr but
    /// do not abort the experiment.
    pub fn finish(self) {
        if let Some(parent) = self.path.parent() {
            let _ = fs::create_dir_all(parent);
        }
        match fs::File::create(&self.path) {
            Ok(mut f) => {
                for line in &self.lines {
                    let _ = writeln!(f, "{line}");
                }
                eprintln!("[results written to {}]", self.path.display());
            }
            Err(e) => eprintln!("could not write {}: {e}", self.path.display()),
        }
    }
}

fn workspace_results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two levels up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    root.join("results")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_collects_rows() {
        let mut w = ExperimentWriter::new("unit_test_output");
        w.comment("a comment");
        w.row("x,y");
        w.row("1,2");
        assert_eq!(w.lines.len(), 3);
        w.finish();
        let path = workspace_results_dir().join("unit_test_output.csv");
        let content = fs::read_to_string(&path).unwrap();
        assert!(content.contains("# a comment"));
        assert!(content.contains("1,2"));
        let _ = fs::remove_file(path);
    }

    #[test]
    fn results_dir_points_at_workspace_root() {
        let dir = workspace_results_dir();
        assert!(dir.ends_with("results"));
    }
}
