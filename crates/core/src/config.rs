//! The shared core-knob cluster and its validating builder.
//!
//! Before this module, the `learning_rate` / `aggregation_k` / `shards` /
//! `apply_mode` (+ `max_pending`) cluster was duplicated across
//! `ParameterServerConfig`, `FleetServerConfig` and `SimulationConfig`, and
//! the load harness would have been a fourth copy. [`CoreConfig`] is now
//! the single owner: the parameter server consumes it directly
//! ([`crate::ParameterServer::from_config`]), and the FLeet server /
//! simulation configs embed it as their `core` field, flattening its knobs
//! through their builders.
//!
//! Construction goes through [`CoreConfig::builder`] (or the embedding
//! configs' builders), which returns a typed [`ConfigError`] for
//! nonsensical combinations instead of panicking deep inside the engine.
//! The plain struct stays constructible for the defining crates; everything
//! outside them builds through the validated path.

use crate::server::ApplyMode;
use std::error::Error;
use std::fmt;

/// The knobs every layer of the stack shares: how gradients are scaled,
/// aggregated, partitioned and scheduled.
///
/// Embedded as the `core` field of `FleetServerConfig` and
/// `SimulationConfig`; consumed directly by
/// [`crate::ParameterServer::from_config`].
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Learning rate γ applied to weighted gradients.
    pub learning_rate: f32,
    /// Aggregation parameter K (gradients per update trigger).
    pub aggregation_k: usize,
    /// Number of range-partitioned shards.
    pub shards: usize,
    /// How shard applies are scheduled.
    pub apply_mode: ApplyMode,
    /// Backpressure bound on a shard's pending buffer: when any shard holds
    /// this many unapplied gradient segments, [`crate::ParameterServer::is_saturated`]
    /// reports overload so admission layers can shed new tasks instead of
    /// growing the buffer without bound. `0` disables the bound. Only
    /// meaningful below `aggregation_k` in lockstep mode (the buffer never
    /// exceeds `K − 1` there); in per-shard mode flush-starved shards can
    /// otherwise queue arbitrarily deep.
    pub max_pending: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            learning_rate: 5e-2,
            aggregation_k: 1,
            shards: 1,
            apply_mode: ApplyMode::Lockstep,
            max_pending: 0,
        }
    }
}

impl CoreConfig {
    /// A builder over the defaults.
    pub fn builder() -> CoreConfigBuilder {
        CoreConfigBuilder {
            config: CoreConfig::default(),
        }
    }

    /// A builder seeded from this configuration.
    pub fn to_builder(&self) -> CoreConfigBuilder {
        CoreConfigBuilder {
            config: self.clone(),
        }
    }

    /// Checks the invariants the engines assert at construction time —
    /// positive finite learning rate, nonzero K and shard count — so
    /// builder users get a typed error instead of a panic.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.learning_rate > 0.0 && self.learning_rate.is_finite()) {
            return Err(ConfigError::LearningRateNotPositive {
                value: self.learning_rate,
            });
        }
        if self.aggregation_k == 0 {
            return Err(ConfigError::ZeroAggregationK);
        }
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        Ok(())
    }
}

/// Builder for [`CoreConfig`]; `build` validates.
#[derive(Debug, Clone)]
pub struct CoreConfigBuilder {
    config: CoreConfig,
}

impl CoreConfigBuilder {
    /// Sets the learning rate γ.
    pub fn learning_rate(mut self, value: f32) -> Self {
        self.config.learning_rate = value;
        self
    }

    /// Sets the aggregation parameter K.
    pub fn aggregation_k(mut self, value: usize) -> Self {
        self.config.aggregation_k = value;
        self
    }

    /// Sets the shard count.
    pub fn shards(mut self, value: usize) -> Self {
        self.config.shards = value;
        self
    }

    /// Sets the apply-scheduling mode.
    pub fn apply_mode(mut self, value: ApplyMode) -> Self {
        self.config.apply_mode = value;
        self
    }

    /// Sets the per-shard pending backpressure bound (0 disables).
    pub fn max_pending(mut self, value: usize) -> Self {
        self.config.max_pending = value;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<CoreConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Why a configuration failed validation. One shared error type covers the
/// core cluster and the configs embedding it (`FleetServerConfig`,
/// `SimulationConfig`), so callers match on a single vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The learning rate is zero, negative, or not finite.
    LearningRateNotPositive {
        /// The offending value.
        value: f32,
    },
    /// The aggregation parameter K is zero.
    ZeroAggregationK,
    /// The shard count is zero.
    ZeroShards,
    /// `flush_every > 0` with [`ApplyMode::Lockstep`]: scripted shard
    /// flushes only exist to diverge the vector clock, which lockstep mode
    /// does not have.
    LockstepFlush {
        /// The configured flush cadence.
        flush_every: usize,
    },
    /// A simulation with zero steps.
    ZeroSteps,
    /// A zero mini-batch size.
    ZeroBatchSize,
    /// A zero evaluation cadence (the simulation evaluates on a
    /// `steps % eval_every` schedule, so 0 cannot mean "never").
    ZeroEvalEvery,
    /// A model with zero classes.
    ZeroNumClasses,
    /// The similarity percentile is outside `(0, 100]`.
    SPercentileOutOfRange {
        /// The offending value.
        value: f32,
    },
    /// The lease budget rate is negative or not finite (zero is allowed:
    /// the lease then falls back to its floor in rounds).
    LeaseRateInvalid {
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::LearningRateNotPositive { value } => {
                write!(f, "learning rate must be positive and finite, got {value}")
            }
            ConfigError::ZeroAggregationK => {
                write!(f, "aggregation parameter K must be at least 1")
            }
            ConfigError::ZeroShards => write!(f, "shard count must be at least 1"),
            ConfigError::LockstepFlush { flush_every } => write!(
                f,
                "flush_every = {flush_every} requires ApplyMode::PerShard \
                 (lockstep shards have no vector clock to diverge)"
            ),
            ConfigError::ZeroSteps => write!(f, "a simulation needs at least 1 step"),
            ConfigError::ZeroBatchSize => write!(f, "mini-batch size must be at least 1"),
            ConfigError::ZeroEvalEvery => write!(f, "eval_every must be at least 1"),
            ConfigError::ZeroNumClasses => write!(f, "num_classes must be at least 1"),
            ConfigError::SPercentileOutOfRange { value } => {
                write!(f, "s_percentile must be in (0, 100], got {value}")
            }
            ConfigError::LeaseRateInvalid { value } => write!(
                f,
                "lease_rounds_per_second must be non-negative and finite, got {value}"
            ),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_applies_defaults_and_setters() {
        let config = CoreConfig::builder()
            .shards(8)
            .aggregation_k(4)
            .apply_mode(ApplyMode::PerShard)
            .build()
            .expect("valid config");
        assert_eq!(config.shards, 8);
        assert_eq!(config.aggregation_k, 4);
        assert_eq!(config.apply_mode, ApplyMode::PerShard);
        assert_eq!(config.learning_rate, CoreConfig::default().learning_rate);
    }

    #[test]
    fn builder_rejects_invalid_combinations_with_typed_errors() {
        assert_eq!(
            CoreConfig::builder().shards(0).build(),
            Err(ConfigError::ZeroShards)
        );
        assert_eq!(
            CoreConfig::builder().aggregation_k(0).build(),
            Err(ConfigError::ZeroAggregationK)
        );
        assert_eq!(
            CoreConfig::builder().learning_rate(0.0).build(),
            Err(ConfigError::LearningRateNotPositive { value: 0.0 })
        );
        assert!(CoreConfig::builder()
            .learning_rate(f32::NAN)
            .build()
            .is_err());
        assert!(CoreConfig::builder()
            .learning_rate(f32::INFINITY)
            .build()
            .is_err());
    }

    #[test]
    fn to_builder_round_trips() {
        let config = CoreConfig::builder()
            .learning_rate(0.1)
            .shards(3)
            .build()
            .unwrap();
        let again = config.to_builder().build().unwrap();
        assert_eq!(config, again);
    }

    #[test]
    fn errors_display_something_actionable() {
        let err = CoreConfig::builder().shards(0).build().unwrap_err();
        assert!(err.to_string().contains("shard count"));
        let err = ConfigError::LockstepFlush { flush_every: 2 };
        assert!(err.to_string().contains("PerShard"));
    }
}
