//! Tracking of observed staleness values and estimation of `τ_thres`.
//!
//! AdaSGD's dampening rate is calibrated from the *s-th percentile of past
//! staleness values* (`τ_thres`), where s% is the expected percentage of
//! non-stragglers — a system parameter, not an ML hyper-parameter (§2.3).
//! During an initial bootstrap phase (before enough staleness values have been
//! observed) the paper suggests falling back to DynSGD's inverse dampening;
//! the tracker exposes [`StalenessTracker::is_bootstrapping`] for that.

use serde::{Deserialize, Serialize};

/// Records observed staleness values and answers percentile queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StalenessTracker {
    values: Vec<u64>,
    bootstrap_len: usize,
}

impl StalenessTracker {
    /// Creates an empty tracker that reports
    /// [`StalenessTracker::is_bootstrapping`] until `bootstrap_len` staleness
    /// values have been recorded.
    pub fn new(bootstrap_len: usize) -> Self {
        Self {
            values: Vec::new(),
            bootstrap_len,
        }
    }

    /// Creates a tracker that is immediately considered calibrated.
    pub fn without_bootstrap() -> Self {
        Self::new(0)
    }

    /// Records one observed staleness value.
    pub fn record(&mut self, staleness: u64) {
        self.values.push(staleness);
    }

    /// The recorded staleness values, in observation order — the tracker's
    /// whole mutable state, exported for checkpointing.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Replaces the recorded values with a sequence captured via
    /// [`StalenessTracker::values`]; percentiles, bootstrap status and the
    /// mean all continue exactly as if the values had been recorded live.
    pub fn restore_values(&mut self, values: Vec<u64>) {
        self.values = values;
    }

    /// Number of recorded values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no staleness has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether the tracker is still in the bootstrap phase.
    pub fn is_bootstrapping(&self) -> bool {
        self.values.len() < self.bootstrap_len
    }

    /// The `percentile`-th percentile (0–100) of the recorded staleness
    /// values (nearest-rank). Returns `None` when nothing has been recorded.
    ///
    /// # Panics
    ///
    /// Panics if `percentile` is outside `[0, 100]`.
    pub fn percentile(&self, percentile: f64) -> Option<u64> {
        assert!(
            (0.0..=100.0).contains(&percentile),
            "percentile must be in [0, 100]"
        );
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_unstable();
        let rank = (percentile / 100.0 * (sorted.len() - 1) as f64).round() as usize;
        Some(sorted[rank.min(sorted.len() - 1)])
    }

    /// `τ_thres`: the s-th percentile of the recorded staleness values, with a
    /// fallback used while nothing has been recorded.
    pub fn tau_thres(&self, s_percentile: f64, fallback: u64) -> u64 {
        self.percentile(s_percentile).unwrap_or(fallback).max(1)
    }

    /// Mean recorded staleness (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<u64>() as f64 / self.values.len() as f64
        }
    }
}

impl Default for StalenessTracker {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_tracker_has_no_percentile() {
        let t = StalenessTracker::without_bootstrap();
        assert!(t.is_empty());
        assert_eq!(t.percentile(99.0), None);
        assert_eq!(t.tau_thres(99.0, 12), 12);
        assert_eq!(t.mean(), 0.0);
    }

    #[test]
    fn percentile_of_known_values() {
        let mut t = StalenessTracker::without_bootstrap();
        for v in 0..=100 {
            t.record(v);
        }
        assert_eq!(t.percentile(0.0), Some(0));
        assert_eq!(t.percentile(50.0), Some(50));
        assert_eq!(t.percentile(99.0), Some(99));
        assert_eq!(t.percentile(100.0), Some(100));
    }

    #[test]
    fn tau_thres_is_at_least_one() {
        let mut t = StalenessTracker::without_bootstrap();
        t.record(0);
        t.record(0);
        assert_eq!(t.tau_thres(99.0, 5), 1);
    }

    #[test]
    fn bootstrap_phase_ends_after_enough_samples() {
        let mut t = StalenessTracker::new(3);
        assert!(t.is_bootstrapping());
        t.record(1);
        t.record(2);
        assert!(t.is_bootstrapping());
        t.record(3);
        assert!(!t.is_bootstrapping());
    }

    #[test]
    fn mean_matches_hand_computation() {
        let mut t = StalenessTracker::without_bootstrap();
        for v in [2, 4, 6] {
            t.record(v);
        }
        assert_eq!(t.mean(), 4.0);
        assert_eq!(t.len(), 3);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn out_of_range_percentile_panics() {
        let mut t = StalenessTracker::without_bootstrap();
        t.record(1);
        let _ = t.percentile(101.0);
    }

    proptest! {
        #[test]
        fn prop_percentile_is_monotone(values in proptest::collection::vec(0u64..100, 1..200)) {
            let mut t = StalenessTracker::without_bootstrap();
            for v in &values {
                t.record(*v);
            }
            let p50 = t.percentile(50.0).unwrap();
            let p90 = t.percentile(90.0).unwrap();
            let p99 = t.percentile(99.0).unwrap();
            prop_assert!(p50 <= p90);
            prop_assert!(p90 <= p99);
            prop_assert!(values.contains(&p99));
        }
    }
}
