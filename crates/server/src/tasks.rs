//! The outstanding-task lease table: at-most-once result application.
//!
//! Every accepted task gets a strictly monotonic id and an *outstanding
//! lease* with a logical-round deadline (see the [`crate::protocol`] module
//! docs for the lifecycle). The table classifies each uploaded result into a
//! [`ResultDisposition`]; only [`ResultDisposition::Applied`] results may
//! touch the model. The table is plain data — no clocks of its own, no
//! randomness — so it checkpoints and replays deterministically.

use crate::protocol::ResultDisposition;
use std::collections::{BTreeMap, BTreeSet};

/// One outstanding lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// The worker the task was assigned to.
    pub worker_id: u64,
    /// The logical round the task was issued in.
    pub issued_round: u64,
    /// First round at which the lease counts as expired: a result must
    /// arrive at a round strictly below this to be applied.
    pub deadline_round: u64,
}

/// Checkpointed state of a [`TaskTable`] (it *is* the table — the table
/// holds no transient state — but kept as a separate type so the wire
/// checkpoint codec has a stable surface).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TaskTableState {
    /// The next id to issue.
    pub next_id: u64,
    /// Outstanding leases as `(task_id, worker_id, issued_round,
    /// deadline_round)`, sorted by id.
    pub outstanding: Vec<(u64, u64, u64, u64)>,
    /// Ids of completed (applied) tasks, sorted.
    pub completed: Vec<u64>,
    /// Ids of reclaimed (expired) tasks, sorted.
    pub expired: Vec<u64>,
}

/// The lease table (see module docs).
#[derive(Debug, Clone, Default)]
pub struct TaskTable {
    next_id: u64,
    outstanding: BTreeMap<u64, Lease>,
    completed: BTreeSet<u64>,
    expired: BTreeSet<u64>,
}

impl TaskTable {
    /// Creates an empty table; the first issued id is 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Issues a new lease for `worker_id` at `round`, expiring at
    /// `round + lease_rounds`. Returns the task id.
    ///
    /// # Panics
    ///
    /// Panics if `lease_rounds` is zero — a lease that expires the round it
    /// is issued could never be completed.
    pub fn issue(&mut self, worker_id: u64, round: u64, lease_rounds: u64) -> u64 {
        assert!(lease_rounds > 0, "a lease must last at least one round");
        let task_id = self.next_id;
        self.next_id += 1;
        self.outstanding.insert(
            task_id,
            Lease {
                worker_id,
                issued_round: round,
                deadline_round: round.saturating_add(lease_rounds),
            },
        );
        task_id
    }

    /// Moves every lease whose deadline is `<= round` to the expired set and
    /// returns them as `(task_id, lease)`, in id order. The freed workers
    /// can immediately be handed new tasks.
    pub fn reclaim_expired(&mut self, round: u64) -> Vec<(u64, Lease)> {
        let reclaimed: Vec<(u64, Lease)> = self
            .outstanding
            .iter()
            .filter(|(_, lease)| lease.deadline_round <= round)
            .map(|(&id, &lease)| (id, lease))
            .collect();
        for &(id, _) in &reclaimed {
            self.outstanding.remove(&id);
            self.expired.insert(id);
        }
        reclaimed
    }

    /// Force-reclaims one outstanding lease regardless of its deadline,
    /// returning it — the transport calls this when the connection that was
    /// issued the task dies, so the work re-enters the pool immediately
    /// instead of waiting out the logical deadline. Completed, already
    /// expired and unknown ids are left untouched (`None`): a result that
    /// raced the disconnect and got applied stays applied.
    pub fn reclaim(&mut self, task_id: u64) -> Option<Lease> {
        let lease = self.outstanding.remove(&task_id)?;
        self.expired.insert(task_id);
        Some(lease)
    }

    /// Classifies a result for `task_id` from `worker_id`, updating the
    /// table: an outstanding lease held by that worker completes
    /// ([`ResultDisposition::Applied`]); everything else leaves the table
    /// unchanged and reports why the result must be discarded.
    pub fn classify(&mut self, task_id: u64, worker_id: u64) -> ResultDisposition {
        if self.completed.contains(&task_id) {
            return ResultDisposition::Duplicate;
        }
        if self.expired.contains(&task_id) {
            return ResultDisposition::Expired;
        }
        match self.outstanding.get(&task_id) {
            Some(lease) if lease.worker_id == worker_id => {
                self.outstanding.remove(&task_id);
                self.completed.insert(task_id);
                ResultDisposition::Applied
            }
            // A result for someone else's lease (or an id the server never
            // issued) must not complete the real assignee's task.
            _ => ResultDisposition::Unsolicited,
        }
    }

    /// The lease for an outstanding task, if any.
    pub fn lease(&self, task_id: u64) -> Option<&Lease> {
        self.outstanding.get(&task_id)
    }

    /// Number of outstanding leases.
    pub fn outstanding_len(&self) -> usize {
        self.outstanding.len()
    }

    /// Number of completed tasks.
    pub fn completed_len(&self) -> usize {
        self.completed.len()
    }

    /// Number of expired (reclaimed) tasks.
    pub fn expired_len(&self) -> usize {
        self.expired.len()
    }

    /// Exports the table for checkpointing (all sets in sorted order).
    pub fn export_state(&self) -> TaskTableState {
        TaskTableState {
            next_id: self.next_id,
            outstanding: self
                .outstanding
                .iter()
                .map(|(&id, lease)| {
                    (
                        id,
                        lease.worker_id,
                        lease.issued_round,
                        lease.deadline_round,
                    )
                })
                .collect(),
            completed: self.completed.iter().copied().collect(),
            expired: self.expired.iter().copied().collect(),
        }
    }

    /// Rebuilds a table from a state captured with
    /// [`TaskTable::export_state`].
    pub fn from_state(state: TaskTableState) -> Self {
        Self {
            next_id: state.next_id,
            outstanding: state
                .outstanding
                .into_iter()
                .map(|(id, worker_id, issued_round, deadline_round)| {
                    (
                        id,
                        Lease {
                            worker_id,
                            issued_round,
                            deadline_round,
                        },
                    )
                })
                .collect(),
            completed: state.completed.into_iter().collect(),
            expired: state.expired.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_strictly_monotonic() {
        let mut table = TaskTable::new();
        let a = table.issue(1, 0, 4);
        let b = table.issue(2, 0, 4);
        let c = table.issue(1, 3, 4);
        assert!(a < b && b < c);
        assert_eq!(table.outstanding_len(), 3);
    }

    #[test]
    fn first_result_applies_then_duplicates_are_rejected() {
        let mut table = TaskTable::new();
        let id = table.issue(7, 0, 4);
        assert_eq!(table.classify(id, 7), ResultDisposition::Applied);
        assert_eq!(table.classify(id, 7), ResultDisposition::Duplicate);
        assert_eq!(table.classify(id, 7), ResultDisposition::Duplicate);
        assert_eq!(table.completed_len(), 1);
        assert_eq!(table.outstanding_len(), 0);
    }

    #[test]
    fn wrong_worker_cannot_complete_someone_elses_lease() {
        let mut table = TaskTable::new();
        let id = table.issue(7, 0, 4);
        assert_eq!(table.classify(id, 8), ResultDisposition::Unsolicited);
        // The rightful assignee can still complete it.
        assert_eq!(table.classify(id, 7), ResultDisposition::Applied);
    }

    #[test]
    fn unknown_ids_are_unsolicited() {
        let mut table = TaskTable::new();
        assert_eq!(table.classify(999, 1), ResultDisposition::Unsolicited);
    }

    #[test]
    fn expiry_reclaims_at_the_deadline_not_before() {
        let mut table = TaskTable::new();
        let id = table.issue(3, 10, 5); // deadline round 15
        assert!(table.reclaim_expired(14).is_empty());
        let reclaimed = table.reclaim_expired(15);
        assert_eq!(reclaimed.len(), 1);
        assert_eq!(reclaimed[0].0, id);
        assert_eq!(reclaimed[0].1.worker_id, 3);
        // The straggler's late result is rejected, not applied.
        assert_eq!(table.classify(id, 3), ResultDisposition::Expired);
        assert_eq!(table.expired_len(), 1);
    }

    #[test]
    fn reclaim_is_idempotent_and_ordered() {
        let mut table = TaskTable::new();
        let a = table.issue(1, 0, 2);
        let b = table.issue(2, 0, 2);
        table.issue(3, 0, 99);
        let reclaimed = table.reclaim_expired(2);
        assert_eq!(
            reclaimed.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![a, b]
        );
        assert!(table.reclaim_expired(2).is_empty());
        assert_eq!(table.outstanding_len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_round_leases_are_rejected() {
        TaskTable::new().issue(1, 0, 0);
    }

    #[test]
    fn forced_reclaim_expires_an_outstanding_lease_before_its_deadline() {
        let mut table = TaskTable::new();
        let id = table.issue(4, 0, 99);
        let lease = table.reclaim(id).expect("outstanding lease reclaims");
        assert_eq!(lease.worker_id, 4);
        assert_eq!(table.outstanding_len(), 0);
        assert_eq!(table.expired_len(), 1);
        // The dead worker's late retransmission is a straggler now.
        assert_eq!(table.classify(id, 4), ResultDisposition::Expired);
    }

    #[test]
    fn forced_reclaim_leaves_completed_and_unknown_ids_alone() {
        let mut table = TaskTable::new();
        let id = table.issue(4, 0, 99);
        assert_eq!(table.classify(id, 4), ResultDisposition::Applied);
        // A result that raced the disconnect and won stays applied.
        assert_eq!(table.reclaim(id), None);
        assert_eq!(table.classify(id, 4), ResultDisposition::Duplicate);
        assert_eq!(table.reclaim(999), None);
        // Reclaiming twice is a no-op, not a panic.
        let other = table.issue(5, 0, 99);
        assert!(table.reclaim(other).is_some());
        assert_eq!(table.reclaim(other), None);
    }

    #[test]
    fn state_roundtrip_preserves_every_set() {
        let mut table = TaskTable::new();
        let a = table.issue(1, 0, 4);
        let b = table.issue(2, 1, 2);
        table.issue(3, 2, 9);
        assert_eq!(table.classify(a, 1), ResultDisposition::Applied);
        table.reclaim_expired(3); // expires b

        let state = table.export_state();
        let mut restored = TaskTable::from_state(state.clone());
        assert_eq!(restored.export_state(), state);
        // Semantics survive: duplicate, expired, fresh issue.
        assert_eq!(restored.classify(a, 1), ResultDisposition::Duplicate);
        assert_eq!(restored.classify(b, 2), ResultDisposition::Expired);
        assert_eq!(restored.issue(9, 5, 4), table.issue(9, 5, 4));
    }
}
