//! Deterministic data-parallel helpers for the FLeet hot paths.
//!
//! This is the workspace's stand-in for `rayon` (which is unavailable in the
//! network-less build environment): scoped `std::thread` fan-out with a
//! rayon-like surface — [`parallel_chunks_mut`] for disjoint in-place work
//! (the matmul kernels), [`parallel_map`] for independent computations,
//! [`parallel_map_with`] for per-thread scratch state (the per-round worker
//! gradients in `fleet_server::simulation`) and [`parallel_uneven_zip_mut`]
//! for fan-out over unequal contiguous ranges paired with per-range state
//! (the sharded parameter server in `fleet_core`).
//!
//! # Determinism contract
//!
//! All helpers partition work into *contiguous* ranges and write each output
//! exactly once from exactly one thread, so results are bit-for-bit identical
//! to the serial execution regardless of thread count or scheduling. Nothing
//! here may introduce reduction-order nondeterminism; keep it that way.
//!
//! # Thread count and nesting
//!
//! [`max_threads`] honours a [`set_max_threads`] override, then
//! `FLEET_NUM_THREADS`, then `std::thread::available_parallelism`. With one
//! thread every helper runs the work inline with zero spawn overhead. Worker
//! closures run with nested fan-out suppressed: a parallel kernel called from
//! inside a [`parallel_map`] task executes inline instead of oversubscribing
//! the machine with `threads²` threads.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::OnceLock;

static THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// True while this thread is a fan-out worker; parallel helpers run
    /// inline instead of nesting another fan-out.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Maximum worker threads: the [`set_max_threads`] override if one was
/// installed, else env `FLEET_NUM_THREADS`, else the hardware's available
/// parallelism, else 1. Cached after the first call.
pub fn max_threads() -> usize {
    *THREADS.get_or_init(|| {
        std::env::var("FLEET_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// Installs the thread count programmatically, winning over the lazy env
/// lookup if called before the first [`max_threads`]. Returns whether the
/// value took effect (false once the count is already cached). Exists so
/// tests can pin a parallel configuration without `std::env::set_var`, which
/// is unsound once threads are running.
pub fn set_max_threads(threads: usize) -> bool {
    threads > 0 && THREADS.set(threads).is_ok()
}

fn run_as_worker<R>(f: impl FnOnce() -> R) -> R {
    IN_PARALLEL_REGION.with(|flag| flag.set(true));
    let result = f();
    IN_PARALLEL_REGION.with(|flag| flag.set(false));
    result
}

fn fan_out_width(work_items: usize) -> usize {
    if IN_PARALLEL_REGION.with(Cell::get) {
        1
    } else {
        max_threads().min(work_items)
    }
}

/// Splits `data` into at most [`max_threads`] contiguous chunks of whole
/// `unit`-sized blocks and runs `f(first_block_index, chunk)` on each, in
/// parallel. `unit` is the indivisible block length (e.g. one matrix row);
/// every chunk is a multiple of `unit` except possibly the last.
///
/// Runs inline when the data is a single block, only one thread is
/// available, or the caller is itself a fan-out worker.
///
/// # Panics
///
/// Panics if `unit` is zero.
pub fn parallel_chunks_mut<T, F>(data: &mut [T], unit: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(unit > 0, "unit block length must be positive");
    let blocks = data.len().div_ceil(unit);
    let threads = fan_out_width(blocks);
    if threads <= 1 {
        f(0, data);
        return;
    }
    let blocks_per_chunk = blocks.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut block_index = 0;
        while !rest.is_empty() {
            let split = (blocks_per_chunk * unit).min(rest.len());
            let (chunk, tail) = rest.split_at_mut(split);
            rest = tail;
            let first_block = block_index;
            let f = &f;
            scope.spawn(move || run_as_worker(|| f(first_block, chunk)));
            block_index += blocks_per_chunk;
        }
    });
}

/// Fans out over *unequal* contiguous ranges of a flat vector, pairing each
/// range with its own per-range state: `data` is split into
/// `lens[0], lens[1], …` consecutive chunks and `f(i, &mut items[i], chunk_i)`
/// runs for every range, with consecutive ranges grouped onto at most
/// [`max_threads`] threads. This is the sharded parameter server's primitive:
/// `items` are the shard states, `data` is the flat parameter vector and
/// `lens` the shard lengths (near-equal by construction, which is why ranges
/// are balanced across threads by *count*).
///
/// Every range is processed exactly once, from exactly one thread, in a way
/// that is bit-for-bit identical to the serial loop — the ranges are disjoint
/// and `f` receives them in index order within each thread, so no
/// reduction-order nondeterminism can arise. Runs inline for a single range,
/// a single thread, or when called from inside a fan-out worker.
///
/// # Panics
///
/// Panics if `items.len() != lens.len()` or `lens` does not sum to
/// `data.len()`.
pub fn parallel_uneven_zip_mut<T, U, F>(items: &mut [T], data: &mut [U], lens: &[usize], f: F)
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut T, &mut [U]) + Sync,
{
    assert_eq!(
        items.len(),
        lens.len(),
        "one length per item: {} items vs {} lens",
        items.len(),
        lens.len()
    );
    assert_eq!(
        lens.iter().sum::<usize>(),
        data.len(),
        "range lengths must cover the data exactly"
    );
    let run_group = |first: usize, group: &mut [T], group_lens: &[usize], group_data: &mut [U]| {
        let mut rest = group_data;
        for (i, (item, &len)) in group.iter_mut().zip(group_lens).enumerate() {
            let (chunk, tail) = rest.split_at_mut(len);
            rest = tail;
            f(first + i, item, chunk);
        }
    };
    let threads = fan_out_width(items.len());
    if threads <= 1 {
        run_group(0, items, lens, data);
        return;
    }
    let per_thread = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let mut items_rest = items;
        let mut lens_rest = lens;
        let mut data_rest = data;
        let mut first = 0;
        while !items_rest.is_empty() {
            let take = per_thread.min(items_rest.len());
            let (group, items_tail) = items_rest.split_at_mut(take);
            let (group_lens, lens_tail) = lens_rest.split_at(take);
            let group_elems: usize = group_lens.iter().sum();
            let (group_data, data_tail) = data_rest.split_at_mut(group_elems);
            items_rest = items_tail;
            lens_rest = lens_tail;
            data_rest = data_tail;
            let run_group = &run_group;
            let start = first;
            scope.spawn(move || run_as_worker(|| run_group(start, group, group_lens, group_data)));
            first += take;
        }
    });
}

/// Maps `f` over `items` with preserved output order, fanning contiguous
/// ranges out to at most [`max_threads`] threads. Runs inline for a single
/// item, a single thread, or when called from inside a fan-out worker.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_with(items, || (), move |(), item| f(item))
}

/// Like [`parallel_map`], but each worker thread first builds scratch state
/// with `init` and threads it through its contiguous run of items — the way
/// the simulation gives each worker thread one model replica instead of one
/// per task.
pub fn parallel_map_with<S, T, U, FI, F>(items: &[T], init: FI, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    FI: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> U + Sync,
{
    let threads = fan_out_width(items.len());
    if threads <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let per_thread = items.len().div_ceil(threads);
    let mut partials: Vec<Vec<U>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(per_thread)
            .map(|chunk| {
                let (f, init) = (&f, &init);
                scope.spawn(move || {
                    run_as_worker(|| {
                        let mut state = init();
                        chunk
                            .iter()
                            .map(|item| f(&mut state, item))
                            .collect::<Vec<U>>()
                    })
                })
            })
            .collect();
        partials = handles
            .into_iter()
            .map(|h| h.join().expect("parallel_map worker panicked"))
            .collect();
    });
    partials.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_cover_all_blocks_once() {
        let mut data = vec![0u32; 103];
        parallel_chunks_mut(&mut data, 10, |first_block, chunk| {
            for (i, row) in chunk.chunks(10).enumerate() {
                assert!(row.len() <= 10);
                let _ = first_block + i;
            }
            for v in chunk.iter_mut() {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn chunk_indices_are_block_aligned() {
        let mut data = vec![0usize; 64];
        parallel_chunks_mut(&mut data, 8, |first_block, chunk| {
            for (i, row) in chunk.chunks_mut(8).enumerate() {
                for v in row.iter_mut() {
                    *v = first_block + i;
                }
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i / 8);
        }
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..97).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_empty_and_single() {
        assert!(parallel_map::<usize, usize, _>(&[], |&x| x).is_empty());
        assert_eq!(parallel_map(&[7], |&x: &usize| x + 1), vec![8]);
    }

    #[test]
    fn map_with_builds_one_state_per_thread() {
        let builds = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        let out = parallel_map_with(
            &items,
            || builds.fetch_add(1, Ordering::SeqCst),
            |_state, &x| x + 1,
        );
        assert_eq!(out, (1..=64).collect::<Vec<_>>());
        // One state per worker thread (or one total when run inline), never
        // one per item.
        let built = builds.load(Ordering::SeqCst);
        assert!(built <= max_threads().min(items.len()), "built {built}");
    }

    #[test]
    fn nested_fan_out_runs_inline() {
        let items: Vec<usize> = (0..8).collect();
        let out = parallel_map(&items, |&x| {
            // A nested helper must not spawn again; it still computes.
            let mut inner = vec![0usize; 16];
            parallel_chunks_mut(&mut inner, 4, |first, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = first * 4 + i + x;
                }
            });
            inner.iter().sum::<usize>()
        });
        let expected: Vec<usize> = (0..8).map(|x| (0..16).map(|i| i + x).sum()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn uneven_zip_pairs_each_range_with_its_state() {
        let mut states = vec![0usize; 4];
        let mut data = vec![1u32; 10];
        let lens = [3, 0, 5, 2];
        parallel_uneven_zip_mut(&mut states, &mut data, &lens, |i, state, chunk| {
            assert_eq!(chunk.len(), lens[i]);
            *state = chunk.len();
            for v in chunk.iter_mut() {
                *v += i as u32;
            }
        });
        assert_eq!(states, lens);
        assert_eq!(data, [1, 1, 1, 3, 3, 3, 3, 3, 4, 4]);
    }

    #[test]
    fn uneven_zip_matches_serial_reference() {
        let lens: Vec<usize> = (0..23).map(|i| (i * 7) % 11).collect();
        let total: usize = lens.iter().sum();
        let mut data: Vec<f32> = (0..total).map(|i| i as f32).collect();
        let mut reference = data.clone();
        let mut states = vec![0.0f32; lens.len()];
        parallel_uneven_zip_mut(&mut states, &mut data, &lens, |i, state, chunk| {
            for v in chunk.iter_mut() {
                *v = v.mul_add(1.5, i as f32);
            }
            *state = chunk.iter().sum();
        });
        let mut offset = 0;
        let mut ref_states = vec![0.0f32; lens.len()];
        for (i, &len) in lens.iter().enumerate() {
            let chunk = &mut reference[offset..offset + len];
            for v in chunk.iter_mut() {
                *v = v.mul_add(1.5, i as f32);
            }
            ref_states[i] = chunk.iter().sum();
            offset += len;
        }
        assert_eq!(data, reference);
        assert_eq!(states, ref_states);
    }

    #[test]
    #[should_panic(expected = "cover the data exactly")]
    fn uneven_zip_rejects_mismatched_lengths() {
        let mut states = vec![0usize; 2];
        let mut data = vec![0u8; 5];
        parallel_uneven_zip_mut(&mut states, &mut data, &[2, 2], |_, _, _| {});
    }
}
