//! Figure 6: Online FL vs Standard FL vs the most-popular baseline on the
//! temporal hashtag-recommendation workload (F1-score @ top-5 per 1-hour
//! chunk; the paper reports a 2.3x average boost for Online FL).

use crate::{ExperimentWriter, Scale};
use fleet_data::twitter::{HashtagStream, StreamSpec};
use fleet_server::online::{run_online_vs_standard, OnlineFlConfig};

/// Runs the comparison over a synthetic 13-day stream.
pub fn run(scale: Scale) {
    let mut out = ExperimentWriter::new("fig06_online_vs_standard");
    out.comment("Figure 6: Online FL vs Standard FL, F1@top-5 per hourly chunk");

    let spec = StreamSpec {
        days: scale.pick(4, 13),
        posts_per_hour: scale.pick(30, 60),
        num_users: 50,
        vocab_size: 100,
        feature_dim: 16,
        trend_lifetime_hours: 6.0,
        concurrent_trends: 5,
    };
    let stream = HashtagStream::generate(&spec, 23);
    let result = run_online_vs_standard(&stream, OnlineFlConfig::default());

    out.row("hour,online_f1,standard_f1,most_popular_f1");
    for c in &result.chunks {
        out.row(format!(
            "{},{:.4},{:.4},{:.4}",
            c.hour, c.online_f1, c.standard_f1, c.most_popular_f1
        ));
    }
    out.comment(format!(
        "mean online={:.4} standard={:.4} most_popular={:.4} boost={:.2}x (paper: 2.3x)",
        result.mean_online(),
        result.mean_standard(),
        result.mean_most_popular(),
        result.quality_boost()
    ));
    out.finish();
}
