//! Differentially private Online FL: clip and perturb every worker gradient
//! with the Gaussian mechanism, and watch how stronger privacy (smaller ε)
//! slows convergence while AdaSGD keeps its edge over DynSGD (Fig. 11).
//!
//! Run with: `cargo run --release -p fleet-examples --example dp_training`

use fleet_core::{AdaSgd, DynSgd};
use fleet_data::partition::iid_partition;
use fleet_data::synthetic::{generate, SyntheticSpec};
use fleet_dp::MomentsAccountant;
use fleet_ml::models::mlp_classifier;
use fleet_server::{AsyncSimulation, SimulationConfig, StalenessDistribution};

fn main() {
    let data = generate(&SyntheticSpec::vector(10, 32, 4000), 9);
    let (train, test) = data.split(0.2);
    let users = iid_partition(&train, 50, 1);

    let steps = 600u64;
    let accountant = MomentsAccountant::paper_mnist_defaults();
    let scenarios = [
        ("no DP".to_string(), None),
        (
            format!(
                "eps=13.66 (sigma={:.2})",
                accountant.noise_for_epsilon(13.66, steps)
            ),
            Some((1.0f32, accountant.noise_for_epsilon(13.66, steps) as f32)),
        ),
        (
            format!(
                "eps=1.75 (sigma={:.2})",
                accountant.noise_for_epsilon(1.75, steps)
            ),
            Some((1.0f32, accountant.noise_for_epsilon(1.75, steps) as f32)),
        ),
    ];

    println!("privacy               | algorithm | final accuracy");
    for (label, dp) in scenarios {
        for which in ["AdaSGD", "DynSGD"] {
            let mut builder = SimulationConfig::builder()
                .steps(steps as usize)
                .learning_rate(0.05)
                .batch_size(50)
                .staleness(StalenessDistribution::Gaussian {
                    mean: 12.0,
                    std: 4.0,
                })
                .eval_every(200)
                .eval_examples(600)
                .seed(17);
            if let Some((clip_norm, noise_multiplier)) = dp {
                builder = builder.dp(clip_norm, noise_multiplier);
            }
            let config = builder.build().expect("dp config is valid");
            let sim = AsyncSimulation::new(&train, &test, &users, config);
            let mut model = mlp_classifier(32, &[32], 10, 4);
            let history = if which == "AdaSGD" {
                sim.run(&mut model, AdaSgd::new(10, 99.7))
            } else {
                sim.run(&mut model, DynSgd::new())
            };
            println!("{label:21} | {which:9} | {:.3}", history.final_accuracy());
        }
    }
    println!("\nSmaller epsilon (stronger privacy) means more noise and slower convergence.");
}
