//! Synthetic dataset generators standing in for the paper's image benchmarks.
//!
//! Each class is a Gaussian cluster in feature space; the class count, feature
//! shape, sample count and cluster spread are configurable. The named
//! constructors keep the class counts of the datasets used in the paper
//! (MNIST: 10, E-MNIST: 62, CIFAR-100: 100) so that the experiment harnesses
//! stay recognisable, while staying small enough to run on a laptop.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr_like::sample_normal;
use serde::{Deserialize, Serialize};

/// Minimal Box–Muller normal sampling so we do not need an extra dependency.
mod rand_distr_like {
    use rand::Rng;

    /// Draws one sample from `N(mean, std)`.
    pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f32, std: f32) -> f32 {
        // Box–Muller transform; avoid u1 == 0.
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        mean + std * z
    }
}

/// Specification of a synthetic classification dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Number of classes.
    pub num_classes: usize,
    /// Per-example feature shape (e.g. `[1, 8, 8]` for image-like data).
    pub feature_shape: Vec<usize>,
    /// Total number of examples to generate.
    pub num_examples: usize,
    /// Standard deviation of each class cluster. Larger values make the task
    /// harder (more class overlap, noisier gradients).
    pub cluster_std: f32,
    /// Distance of the class centres from the origin.
    pub cluster_spread: f32,
}

impl SyntheticSpec {
    /// MNIST-like: 10 classes, `[1, 8, 8]` images.
    pub fn mnist_like(num_examples: usize) -> Self {
        Self {
            num_classes: 10,
            feature_shape: vec![1, 8, 8],
            num_examples,
            cluster_std: 0.6,
            cluster_spread: 1.0,
        }
    }

    /// E-MNIST-like: 62 classes, `[1, 8, 8]` images.
    pub fn emnist_like(num_examples: usize) -> Self {
        Self {
            num_classes: 62,
            feature_shape: vec![1, 8, 8],
            num_examples,
            cluster_std: 0.6,
            cluster_spread: 1.0,
        }
    }

    /// CIFAR-100-like: 100 classes, `[3, 8, 8]` images, higher overlap
    /// (the hardest of the three benchmarks, as in the paper).
    pub fn cifar100_like(num_examples: usize) -> Self {
        Self {
            num_classes: 100,
            feature_shape: vec![3, 8, 8],
            num_examples,
            cluster_std: 0.9,
            cluster_spread: 1.0,
        }
    }

    /// A flat-vector variant (no image structure) used by fast unit tests and
    /// the MLP-based experiment harnesses.
    pub fn vector(num_classes: usize, feature_dim: usize, num_examples: usize) -> Self {
        Self {
            num_classes,
            feature_shape: vec![feature_dim],
            num_examples,
            cluster_std: 0.5,
            cluster_spread: 1.0,
        }
    }

    /// Number of feature values per example.
    pub fn feature_len(&self) -> usize {
        self.feature_shape.iter().product()
    }
}

/// Generates a dataset according to `spec`, deterministically for a `seed`.
///
/// Class centres are drawn uniformly in `[-spread, spread]^d`; each example is
/// its class centre plus isotropic Gaussian noise of width `cluster_std`.
/// Class labels are assigned round-robin so every class is represented as
/// evenly as possible.
///
/// # Panics
///
/// Panics if the spec has zero classes or a zero-length feature shape.
pub fn generate(spec: &SyntheticSpec, seed: u64) -> Dataset {
    assert!(spec.num_classes > 0, "num_classes must be positive");
    let feature_len = spec.feature_len();
    assert!(feature_len > 0, "feature shape must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);

    // Deterministic class centres.
    let centres: Vec<Vec<f32>> = (0..spec.num_classes)
        .map(|_| {
            (0..feature_len)
                .map(|_| rng.gen_range(-spec.cluster_spread..=spec.cluster_spread))
                .collect()
        })
        .collect();

    let mut features = Vec::with_capacity(spec.num_examples * feature_len);
    let mut labels = Vec::with_capacity(spec.num_examples);
    for i in 0..spec.num_examples {
        let class = i % spec.num_classes;
        labels.push(class);
        for &centre in &centres[class] {
            features.push(sample_normal(&mut rng, centre, spec.cluster_std));
        }
    }
    // Min-max scale to [0, 1], mirroring the paper's pre-processing (§3.2).
    min_max_scale(&mut features);
    Dataset::new(
        features,
        labels,
        spec.feature_shape.clone(),
        spec.num_classes,
    )
}

/// In-place min-max scaling of a feature buffer to `[0, 1]`.
/// Leaves the buffer untouched when it is empty or constant.
pub fn min_max_scale(values: &mut [f32]) {
    if values.is_empty() {
        return;
    }
    let min = values.iter().cloned().fold(f32::INFINITY, f32::min);
    let max = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let range = max - min;
    if range <= f32::EPSILON {
        return;
    }
    for v in values.iter_mut() {
        *v = (*v - min) / range;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn generate_respects_spec() {
        let spec = SyntheticSpec::mnist_like(100);
        let d = generate(&spec, 42);
        assert_eq!(d.len(), 100);
        assert_eq!(d.num_classes(), 10);
        assert_eq!(d.feature_shape(), &[1, 8, 8]);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = SyntheticSpec::vector(5, 10, 50);
        assert_eq!(generate(&spec, 1), generate(&spec, 1));
        assert_ne!(generate(&spec, 1), generate(&spec, 2));
    }

    #[test]
    fn all_classes_represented() {
        let d = generate(&SyntheticSpec::vector(7, 4, 70), 3);
        let counts = d.class_counts();
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn features_scaled_to_unit_interval() {
        let d = generate(&SyntheticSpec::mnist_like(64), 9);
        for i in 0..d.len() {
            for &v in d.example(i) {
                assert!((0.0..=1.0).contains(&v), "feature {v} outside [0,1]");
            }
        }
    }

    #[test]
    fn named_specs_match_paper_class_counts() {
        assert_eq!(SyntheticSpec::mnist_like(1).num_classes, 10);
        assert_eq!(SyntheticSpec::emnist_like(1).num_classes, 62);
        assert_eq!(SyntheticSpec::cifar100_like(1).num_classes, 100);
    }

    #[test]
    fn min_max_scale_handles_edge_cases() {
        let mut empty: Vec<f32> = vec![];
        min_max_scale(&mut empty);
        let mut constant = vec![3.0, 3.0];
        min_max_scale(&mut constant);
        assert_eq!(constant, vec![3.0, 3.0]);
        let mut values = vec![1.0, 3.0, 5.0];
        min_max_scale(&mut values);
        assert_eq!(values, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn clusters_are_separable_for_small_std() {
        // With tiny noise, a nearest-centroid rule should achieve high accuracy,
        // confirming the generator produces learnable structure.
        let spec = SyntheticSpec {
            num_classes: 4,
            feature_shape: vec![6],
            num_examples: 200,
            cluster_std: 0.05,
            cluster_spread: 1.0,
        };
        let d = generate(&spec, 11);
        // Nearest-centroid classification.
        let mut centroids = vec![vec![0.0f32; 6]; 4];
        let counts = d.class_counts();
        for i in 0..d.len() {
            let c = d.label(i);
            for (k, v) in d.example(i).iter().enumerate() {
                centroids[c][k] += v / counts[c] as f32;
            }
        }
        let mut correct = 0;
        for i in 0..d.len() {
            let best = (0..4)
                .min_by(|&a, &b| {
                    let da: f32 = d
                        .example(i)
                        .iter()
                        .zip(&centroids[a])
                        .map(|(x, c)| (x - c).powi(2))
                        .sum();
                    let db: f32 = d
                        .example(i)
                        .iter()
                        .zip(&centroids[b])
                        .map(|(x, c)| (x - c).powi(2))
                        .sum();
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            if best == d.label(i) {
                correct += 1;
            }
        }
        assert!(correct as f32 / d.len() as f32 > 0.95);
    }

    proptest! {
        #[test]
        fn prop_generate_len_and_labels(classes in 1usize..20, dim in 1usize..16, n in 1usize..200, seed in 0u64..50) {
            let spec = SyntheticSpec::vector(classes, dim, n);
            let d = generate(&spec, seed);
            prop_assert_eq!(d.len(), n);
            prop_assert!(d.labels().iter().all(|&l| l < classes));
        }
    }
}
