// Fixture (scanned as if in a digest-adjacent crate): hash-ordered
// iteration reaching outputs. Expect three det-collections findings.

use std::collections::{HashMap, HashSet};

pub struct Registry {
    models: HashMap<u64, String>,
}

impl Registry {
    pub fn dump(&self) -> Vec<String> {
        // Finding 1: method iteration on a map field.
        self.models.values().cloned().collect()
    }

    pub fn sum(&self) -> u64 {
        let mut total = 0;
        // Finding 2: for-loop over a map field.
        for (id, _) in &self.models {
            total += id;
        }
        total
    }
}

pub fn local_set(xs: &[u64]) -> Vec<u64> {
    let seen: HashSet<u64> = xs.iter().copied().collect();
    // Finding 3: draining a local hash set.
    seen.into_iter().collect()
}
