//! The unit of work a FLeet worker sends back to the server.

use fleet_data::LabelDistribution;
use fleet_ml::Gradient;
use serde::{Deserialize, Serialize};

/// A gradient received from a worker, together with the metadata the
/// aggregation algorithms need (step 5 of Fig. 2 in the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerUpdate {
    /// The flat gradient computed on the worker's local mini-batch.
    pub gradient: Gradient,
    /// Staleness `τ = t − t_i`: the number of model updates that happened
    /// between the worker pulling the model and pushing this gradient.
    pub staleness: u64,
    /// Label distribution of the mini-batch the gradient was computed on
    /// (only label *indices* are revealed to the server, §2.3).
    pub label_distribution: LabelDistribution,
    /// Number of samples in the mini-batch.
    pub num_samples: usize,
    /// Identifier of the worker that produced the update.
    pub worker_id: u64,
    /// The per-shard vector clock observed when the worker pulled the model,
    /// for servers running [`crate::server::ApplyMode::PerShard`]: entry `s`
    /// is the applied-update count of shard `s` at read time, so the server
    /// can attribute a *per-shard* staleness `τ_s = clock_s − read_clock[s]`
    /// to the gradient. `None` (and any server in lockstep mode) falls back
    /// to the scalar [`WorkerUpdate::staleness`] for every shard.
    pub read_clock: Option<Vec<u64>>,
}

impl WorkerUpdate {
    /// Creates an update.
    pub fn new(
        gradient: Gradient,
        staleness: u64,
        label_distribution: LabelDistribution,
        num_samples: usize,
        worker_id: u64,
    ) -> Self {
        Self {
            gradient,
            staleness,
            label_distribution,
            num_samples,
            worker_id,
            read_clock: None,
        }
    }

    /// Attaches the per-shard vector clock the worker observed when it pulled
    /// the model (see [`WorkerUpdate::read_clock`]).
    pub fn with_read_clock(mut self, read_clock: Vec<u64>) -> Self {
        self.read_clock = Some(read_clock);
        self
    }

    /// A fresh (staleness 0) update — convenient for synchronous baselines
    /// and tests.
    pub fn fresh(
        gradient: Gradient,
        label_distribution: LabelDistribution,
        num_samples: usize,
    ) -> Self {
        Self::new(gradient, 0, label_distribution, num_samples, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_populate_fields() {
        let g = Gradient::from_vec(vec![1.0, 2.0]);
        let ld = LabelDistribution::uniform(4);
        let u = WorkerUpdate::new(g.clone(), 7, ld.clone(), 32, 99);
        assert_eq!(u.staleness, 7);
        assert_eq!(u.worker_id, 99);
        assert_eq!(u.num_samples, 32);
        assert_eq!(u.gradient, g);

        let f = WorkerUpdate::fresh(g, ld, 16);
        assert_eq!(f.staleness, 0);
        assert_eq!(f.worker_id, 0);
        assert_eq!(f.read_clock, None);
    }

    #[test]
    fn read_clock_rides_along() {
        let u = WorkerUpdate::fresh(
            Gradient::from_vec(vec![1.0]),
            LabelDistribution::uniform(2),
            4,
        )
        .with_read_clock(vec![3, 5]);
        assert_eq!(u.read_clock.as_deref(), Some(&[3, 5][..]));
    }
}
