//! The MAUI-style baseline profiler (§3.3 of the paper).
//!
//! MAUI (Cuervo et al., MobiSys'10) predicts energy with a linear regression
//! on the number of CPU cycles; the paper adapts it to this setting by
//! replacing CPU cycles with the mini-batch size (the workload has a static
//! code path). The result is a single *global* model `cost = θ · n` shared by
//! every device — no device features, no personalisation — which is exactly
//! why it struggles with heterogeneous fleets.

use crate::linreg::LinearRegression;
use crate::slo::Slo;
use crate::WorkloadProfiler;
use fleet_device::DeviceFeatures;

const MIN_SLOPE: f32 = 1e-8;
const MAX_BATCH: usize = 100_000;

/// The MAUI baseline profiler.
#[derive(Debug, Clone)]
pub struct Maui {
    slo: Slo,
    latency_samples: Vec<(Vec<f32>, f32)>,
    energy_samples: Vec<(Vec<f32>, f32)>,
    latency_model: LinearRegression,
    energy_model: LinearRegression,
    refit_every: usize,
    since_refit: usize,
}

impl Maui {
    /// Creates a MAUI profiler for the given SLO.
    pub fn new(slo: Slo) -> Self {
        Self {
            slo,
            latency_samples: Vec::new(),
            energy_samples: Vec::new(),
            latency_model: LinearRegression::zeros(1),
            energy_model: LinearRegression::zeros(1),
            refit_every: 25,
            since_refit: 0,
        }
    }

    /// The configured SLO.
    pub fn slo(&self) -> Slo {
        self.slo
    }

    /// Pre-trains from offline calibration pairs `(batch_size, seconds)`.
    pub fn pretrain_latency(&mut self, samples: &[(usize, f32)]) {
        self.latency_samples
            .extend(samples.iter().map(|&(n, t)| (vec![n as f32], t)));
        self.refit();
    }

    /// Pre-trains from offline calibration pairs `(batch_size, battery_pct)`.
    pub fn pretrain_energy(&mut self, samples: &[(usize, f32)]) {
        self.energy_samples
            .extend(samples.iter().map(|&(n, e)| (vec![n as f32], e)));
        self.refit();
    }

    /// Per-sample computation-time slope the model currently believes in.
    pub fn latency_slope(&self) -> f32 {
        self.latency_model.predict(&[1.0]).max(MIN_SLOPE)
    }

    /// Per-sample energy slope the model currently believes in.
    pub fn energy_slope(&self) -> f32 {
        self.energy_model.predict(&[1.0]).max(MIN_SLOPE)
    }

    fn refit(&mut self) {
        if let Some(m) = LinearRegression::fit(&self.latency_samples) {
            self.latency_model = m;
        }
        if let Some(m) = LinearRegression::fit(&self.energy_samples) {
            self.energy_model = m;
        }
        self.since_refit = 0;
    }
}

impl WorkloadProfiler for Maui {
    fn name(&self) -> &'static str {
        "MAUI"
    }

    fn predict(&mut self, _device_model: &str, _features: &DeviceFeatures) -> usize {
        let mut bound = MAX_BATCH as f32;
        if let Some(t_slo) = self.slo.computation_seconds {
            bound = bound.min(t_slo / self.latency_slope());
        }
        if let Some(e_slo) = self.slo.energy_pct {
            bound = bound.min(e_slo / self.energy_slope());
        }
        (bound.floor() as usize).clamp(1, MAX_BATCH)
    }

    fn observe(
        &mut self,
        _device_model: &str,
        _features: &DeviceFeatures,
        batch_size: usize,
        computation_seconds: f32,
        energy_pct: f32,
    ) {
        if batch_size == 0 {
            return;
        }
        self.latency_samples
            .push((vec![batch_size as f32], computation_seconds));
        self.energy_samples
            .push((vec![batch_size as f32], energy_pct));
        self.since_refit += 1;
        if self.since_refit >= self.refit_every {
            self.refit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretrained_slope_predicts_batch_for_slo() {
        let mut maui = Maui::new(Slo::latency(3.0));
        // World where every device costs 0.003 s/sample.
        let samples: Vec<(usize, f32)> = (1..200)
            .map(|n| (n * 10, n as f32 * 10.0 * 0.003))
            .collect();
        maui.pretrain_latency(&samples);
        assert!((maui.latency_slope() - 0.003).abs() < 1e-4);
        let batch = maui.predict("any", &DeviceFeatures::default());
        assert!((900..=1100).contains(&batch), "batch {batch}");
    }

    #[test]
    fn same_prediction_for_all_devices() {
        // MAUI ignores device features entirely — its key weakness.
        let mut maui = Maui::new(Slo::latency(3.0));
        maui.pretrain_latency(&[(100, 0.5), (200, 1.0), (400, 2.0)]);
        let fast = DeviceFeatures {
            sum_max_freq_ghz: 20.0,
            ..DeviceFeatures::default()
        };
        let slow = DeviceFeatures {
            sum_max_freq_ghz: 2.0,
            ..DeviceFeatures::default()
        };
        assert_eq!(maui.predict("fast", &fast), maui.predict("slow", &slow));
    }

    #[test]
    fn observations_shift_the_global_slope() {
        let mut maui = Maui::new(Slo::latency(3.0));
        maui.pretrain_latency(&[(100, 0.1), (200, 0.2)]); // 0.001 s/sample
        let before = maui.latency_slope();
        // Feed many observations from a much slower population.
        for _ in 0..30 {
            maui.observe("slow", &DeviceFeatures::default(), 100, 1.0, 0.01);
        }
        assert!(maui.latency_slope() > before);
    }

    #[test]
    fn energy_slo_respected() {
        let mut maui = Maui::new(Slo::energy(0.075));
        maui.pretrain_energy(&[(100, 0.01), (200, 0.02)]); // 1e-4 %/sample
        let batch = maui.predict("any", &DeviceFeatures::default());
        assert!((700..=760).contains(&batch), "batch {batch}");
    }

    #[test]
    fn untrained_maui_is_bounded() {
        let mut maui = Maui::new(Slo::latency(3.0));
        let batch = maui.predict("any", &DeviceFeatures::default());
        assert!((1..=MAX_BATCH).contains(&batch));
    }
}
