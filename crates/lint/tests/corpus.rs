//! Runs every fixture in `tests/fixtures/` through the real rule engine
//! under a synthetic repo path chosen so the rule under test applies, and
//! checks the expected outcome: `*_fail.rs` fixtures must produce exactly
//! the findings they advertise, `*_pass.rs` fixtures must lint clean. The
//! fixtures directory is excluded from the binary's workspace walk — these
//! samples exist to prove each rule still fires.

use fleet_lint::{lint_sources, Policy, Report};

fn lint_fixture(fixture: &str, synthetic_path: &str) -> Report {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    let text = std::fs::read_to_string(format!("{dir}/{fixture}"))
        .unwrap_or_else(|e| panic!("fixture {fixture} unreadable: {e}"));
    lint_sources(&Policy::default(), &[(synthetic_path.to_string(), text)])
}

fn rule_counts(report: &Report, rule: &str) -> usize {
    report.findings.iter().filter(|f| f.rule == rule).count()
}

fn assert_clean(report: &Report, fixture: &str) {
    assert!(
        report.findings.is_empty(),
        "{fixture} should lint clean, got: {:#?}",
        report.findings
    );
}

#[test]
fn unsafe_safety_fixtures() {
    // All four site kinds, all unjustified.
    let fail = lint_fixture("unsafe_safety_fail.rs", "crates/server/src/x.rs");
    assert_eq!(
        rule_counts(&fail, "unsafe-safety"),
        4,
        "{:#?}",
        fail.findings
    );
    let kinds: Vec<&str> = fail.unsafe_inventory.iter().map(|u| u.kind).collect();
    assert_eq!(kinds, ["block", "fn", "impl", "trait"]);
    assert!(fail.unsafe_inventory.iter().all(|u| !u.justified));

    let pass = lint_fixture("unsafe_safety_pass.rs", "crates/server/src/x.rs");
    assert_clean(&pass, "unsafe_safety_pass.rs");
    assert_eq!(pass.unsafe_inventory.len(), 4);
    assert!(pass.unsafe_inventory.iter().all(|u| u.justified));
}

#[test]
fn unsafe_tricky_fixture() {
    // `unsafe` in strings, comments and fn-pointer types is not a site.
    let report = lint_fixture("unsafe_tricky_pass.rs", "crates/server/src/x.rs");
    assert_clean(&report, "unsafe_tricky_pass.rs");
    assert!(
        report.unsafe_inventory.is_empty(),
        "prose/type mentions must not enter the audit inventory: {:#?}",
        report.unsafe_inventory
    );
}

#[test]
fn det_collections_fixtures() {
    let fail = lint_fixture("det_collections_fail.rs", "crates/core/src/x.rs");
    assert_eq!(
        rule_counts(&fail, "det-collections"),
        3,
        "{:#?}",
        fail.findings
    );

    // The same hash-iterating source is fine outside the digest-adjacent
    // crates — the rule is scoped, not global.
    let elsewhere = lint_fixture("det_collections_fail.rs", "crates/device/src/x.rs");
    assert_eq!(rule_counts(&elsewhere, "det-collections"), 0);

    let pass = lint_fixture("det_collections_pass.rs", "crates/core/src/x.rs");
    assert_clean(&pass, "det_collections_pass.rs");
    assert_eq!(pass.suppressed.len(), 1, "the sorted export is waived");
}

#[test]
fn wall_clock_fixtures() {
    let fail = lint_fixture("wall_clock_fail.rs", "crates/server/src/x.rs");
    assert_eq!(rule_counts(&fail, "wall-clock"), 5, "{:#?}", fail.findings);

    // The bench harnesses are exempt by policy.
    let bench = lint_fixture("wall_clock_fail.rs", "crates/bench/src/x.rs");
    assert_clean(&bench, "wall_clock_fail.rs under crates/bench");
    let criterion = lint_fixture("wall_clock_fail.rs", "crates/compat/criterion/src/x.rs");
    assert_clean(&criterion, "wall_clock_fail.rs under compat/criterion");

    // The transport's exemption is a single file — its socket-deadline
    // module — not the whole crate: the same clock reads are still findings
    // one file over.
    let deadline = lint_fixture("wall_clock_fail.rs", "crates/transport/src/deadline.rs");
    assert_clean(&deadline, "wall_clock_fail.rs as transport/src/deadline.rs");
    let transport_elsewhere = lint_fixture("wall_clock_fail.rs", "crates/transport/src/server.rs");
    assert_eq!(
        rule_counts(&transport_elsewhere, "wall-clock"),
        5,
        "the rest of the transport crate is not wall-clock exempt: {:#?}",
        transport_elsewhere.findings
    );

    // The telemetry crate owns the measurement clock and is exempt as a
    // whole; the load harness next to it is not — its pacing must go
    // through sink timestamps, never `Instant`.
    let telemetry = lint_fixture("wall_clock_fail.rs", "crates/telemetry/src/recorder.rs");
    assert_clean(&telemetry, "wall_clock_fail.rs under crates/telemetry");
    let loadgen = lint_fixture("wall_clock_fail.rs", "crates/loadgen/src/driver.rs");
    assert_eq!(
        rule_counts(&loadgen, "wall-clock"),
        5,
        "the load harness is not wall-clock exempt: {:#?}",
        loadgen.findings
    );

    let pass = lint_fixture("wall_clock_pass.rs", "crates/server/src/x.rs");
    assert_clean(&pass, "wall_clock_pass.rs");
}

#[test]
fn thread_hygiene_fixtures() {
    let fail = lint_fixture("thread_hygiene_fail.rs", "crates/ml/src/x.rs");
    assert_eq!(
        rule_counts(&fail, "thread-hygiene"),
        3,
        "{:#?}",
        fail.findings
    );

    // The pool crate owns threading, and the socket transport's
    // thread-per-connection server does too.
    let pool = lint_fixture("thread_hygiene_fail.rs", "crates/parallel/src/x.rs");
    assert_clean(&pool, "thread_hygiene_fail.rs under crates/parallel");
    let transport = lint_fixture("thread_hygiene_fail.rs", "crates/transport/src/x.rs");
    assert_clean(&transport, "thread_hygiene_fail.rs under crates/transport");

    let pass = lint_fixture("thread_hygiene_pass.rs", "crates/ml/src/x.rs");
    assert_clean(&pass, "thread_hygiene_pass.rs");
}

#[test]
fn wire_exhaustive_fixtures() {
    // One field dropped from the decoder + one orphaned encoder.
    let fail = lint_fixture("wire_exhaustive_fail.rs", "crates/server/src/wire.rs");
    assert_eq!(
        rule_counts(&fail, "wire-exhaustive"),
        2,
        "{:#?}",
        fail.findings
    );
    assert!(fail.findings.iter().any(|f| f.message.contains("`extra`")));
    assert!(fail
        .findings
        .iter()
        .any(|f| f.message.contains("encode_orphan")));

    // The identical source outside the codec files is not wire-checked.
    let elsewhere = lint_fixture("wire_exhaustive_fail.rs", "crates/server/src/x.rs");
    assert_eq!(rule_counts(&elsewhere, "wire-exhaustive"), 0);

    let pass = lint_fixture("wire_exhaustive_pass.rs", "crates/server/src/wire.rs");
    assert_clean(&pass, "wire_exhaustive_pass.rs");
}

#[test]
fn journal_codec_fixtures() {
    // The durability codec is a policy codec file: a field dropped from the
    // record decoder + an orphaned tombstone encoder must both fire there.
    let fail = lint_fixture("journal_codec_fail.rs", "crates/durability/src/codec.rs");
    assert_eq!(
        rule_counts(&fail, "wire-exhaustive"),
        2,
        "{:#?}",
        fail.findings
    );
    assert!(fail.findings.iter().any(|f| f.message.contains("`steps`")));
    assert!(fail
        .findings
        .iter()
        .any(|f| f.message.contains("encode_tombstone")));

    // The identical source elsewhere in the crate is not wire-checked.
    let elsewhere = lint_fixture("journal_codec_fail.rs", "crates/durability/src/store.rs");
    assert_eq!(rule_counts(&elsewhere, "wire-exhaustive"), 0);

    let pass = lint_fixture("journal_codec_pass.rs", "crates/durability/src/codec.rs");
    assert_clean(&pass, "journal_codec_pass.rs");
}

#[test]
fn durability_scope_fixtures() {
    // The durability crate is fully in scope for the hygiene rules: the
    // same fail fixtures that fire in the server crate fire there too.
    let clock = lint_fixture("wall_clock_fail.rs", "crates/durability/src/store.rs");
    assert_eq!(
        rule_counts(&clock, "wall-clock"),
        5,
        "{:#?}",
        clock.findings
    );
    let threads = lint_fixture("thread_hygiene_fail.rs", "crates/durability/src/x.rs");
    assert_eq!(
        rule_counts(&threads, "thread-hygiene"),
        3,
        "{:#?}",
        threads.findings
    );
    let collections = lint_fixture("det_collections_fail.rs", "crates/durability/src/x.rs");
    assert_eq!(
        rule_counts(&collections, "det-collections"),
        3,
        "{:#?}",
        collections.findings
    );

    // An fsync-latency clock read is waivable per site, with the reason
    // kept on record — scoped rules, not blanket exemptions.
    let waived = lint_fixture("durability_scope_pass.rs", "crates/durability/src/store.rs");
    assert_clean(&waived, "durability_scope_pass.rs");
    assert_eq!(waived.suppressed.len(), 1, "{:#?}", waived.suppressed);
    assert!(waived.suppressed[0].reason.contains("telemetry"));
}

#[test]
fn suppression_fixtures() {
    // Malformed or mistargeted markers never waive anything.
    let fail = lint_fixture("suppression_fail.rs", "crates/server/src/x.rs");
    assert_eq!(
        rule_counts(&fail, "unsafe-safety"),
        1,
        "{:#?}",
        fail.findings
    );
    assert_eq!(rule_counts(&fail, "wall-clock"), 2);
    assert_eq!(rule_counts(&fail, "thread-hygiene"), 1);
    assert_eq!(rule_counts(&fail, "lint-marker"), 2);
    assert!(fail.suppressed.is_empty());

    // Well-formed markers waive exactly their named rules, with the reasons
    // preserved for the JSON record.
    let pass = lint_fixture("suppression_pass.rs", "crates/server/src/x.rs");
    assert_clean(&pass, "suppression_pass.rs");
    assert_eq!(pass.suppressed.len(), 3, "{:#?}", pass.suppressed);
    assert!(pass.suppressed.iter().all(|s| !s.reason.is_empty()));
}

#[test]
fn every_fixture_is_exercised() {
    // Guard against orphaned fixtures: adding a sample without wiring it
    // into a test above should fail loudly, not rot silently.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    let mut on_disk: Vec<String> = std::fs::read_dir(dir)
        .expect("fixtures dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".rs"))
        .collect();
    on_disk.sort();
    let wired = [
        "det_collections_fail.rs",
        "det_collections_pass.rs",
        "durability_scope_pass.rs",
        "journal_codec_fail.rs",
        "journal_codec_pass.rs",
        "suppression_fail.rs",
        "suppression_pass.rs",
        "thread_hygiene_fail.rs",
        "thread_hygiene_pass.rs",
        "unsafe_safety_fail.rs",
        "unsafe_safety_pass.rs",
        "unsafe_tricky_pass.rs",
        "wall_clock_fail.rs",
        "wall_clock_pass.rs",
        "wire_exhaustive_fail.rs",
        "wire_exhaustive_pass.rs",
    ];
    assert_eq!(on_disk, wired);
}
