//! Messages exchanged between FLeet workers and the server (Fig. 2), plus
//! the fault-tolerance envelope around them.
//!
//! # Fault model
//!
//! Workers are mobile devices on flaky radio links: any message can be
//! *dropped*, *duplicated* (retransmission after a lost ack), or *delayed*
//! (straggler), and a worker can *crash and restart* between pulling a model
//! and pushing its gradient. The server must stay correct under all four:
//! a gradient must be applied **at most once**, a lost task must eventually
//! be reissued, and a result from a worker the server never assigned a task
//! to must not poison I-Prof's per-device models. None of this may perturb
//! the fault-free path — a run with no faults is bit-identical to one built
//! without the fault layer.
//!
//! # Lease lifecycle
//!
//! Every accepted [`TaskAssignment`] carries a server-issued, strictly
//! monotonic [`TaskAssignment::task_id`] and registers an *outstanding
//! lease*. The lease's deadline is a logical round derived from I-Prof's
//! predicted computation time plus the device's modelled network transfer
//! time — a fast phone on LTE gets a short lease, a slow phone on 3G a long
//! one. A lease ends in exactly one of two ways:
//!
//! * a result with its `task_id` arrives before the deadline — the lease
//!   moves to the *completed* set, and
//! * the deadline passes — the lease is *reclaimed* (moved to the *expired*
//!   set), freeing the server to hand the work to someone else; a straggler
//!   result arriving later is acknowledged but **not** applied.
//!
//! # Result dispositions
//!
//! [`ResultAck::disposition`] tells the worker what happened to its upload:
//!
//! | disposition    | condition                                  | applied? |
//! |----------------|--------------------------------------------|----------|
//! | `Applied`      | first result for an outstanding lease      | yes      |
//! | `Duplicate`    | `task_id` already in the completed set     | no       |
//! | `Expired`      | `task_id` reclaimed before the result came | no       |
//! | `Unsolicited`  | unknown `task_id`, or wrong worker, or a   | no       |
//! |                | legacy (id-less) result from a worker with |          |
//! |                | no recorded request                        |          |
//!
//! Only `Applied` results reach the parameter server and I-Prof; everything
//! else is acknowledged (so the worker stops retrying) and discarded.
//!
//! # Wire-format versions
//!
//! The binary codec ([`crate::wire`]) is append-only and the encoder always
//! emits the *oldest* version able to carry the message:
//!
//! | version | adds over previous            | emitted when                  |
//! |---------|-------------------------------|-------------------------------|
//! | v1      | baseline request/result       | no read clock, no task id     |
//! | v2      | `read_clock` vector clock     | `read_clock` present, no id   |
//! | v3      | `task_id` + explicit clock    | `task_id` present             |
//! |         | presence flag                 |                               |
//!
//! A v1 peer keeps decoding everything a lockstep, pre-lease deployment
//! produces; v3 is only on the wire once the server actually issues task ids.
//!
//! The server→worker messages have their own single-version line
//! (`RESPONSE_WIRE_VERSION` in [`crate::wire`]) covering [`TaskResponse`]
//! and [`ResultAck`] — they never cross a version boundary the
//! request/result line doesn't.
//!
//! # Connection-level events
//!
//! Over a real transport (`fleet-transport`), the fault model extends from
//! messages to *connections*. The dispositions above stay the single source
//! of truth; connection events only decide when leases are force-reclaimed
//! and when a peer is cut off:
//!
//! | event                              | server reaction                    |
//! |------------------------------------|------------------------------------|
//! | disconnect (clean close or crash)  | every lease issued over that       |
//! |                                    | connection is force-reclaimed; a   |
//! |                                    | straggler upload gets `Expired`    |
//! | torn frame (EOF mid-frame)         | connection dropped; leases         |
//! |                                    | reclaimed as above                 |
//! | malformed/oversized frame, unknown | best-effort `Error` frame, then    |
//! | kind, undecodable payload          | the connection is dropped          |
//! | frame stalled past the read budget | connection dropped (slow-loris     |
//! |                                    | defence); *idle between frames is  |
//! |                                    | not a fault — workers compute*     |
//! | saturated shard at request time    | `Overloaded` rejection travels the |
//! |                                    | wire as an ordinary `TaskResponse` |
//! | server drain/shutdown              | pending shard gradients flushed,   |
//! |                                    | checkpoint written, socket closed  |
//! | server process death (SIGKILL,     | with durability on                 |
//! | power loss) mid-run                | (`fleet-transport`'s               |
//! |                                    | `DurabilityOptions`): every        |
//! |                                    | applied submission is already in   |
//! |                                    | the write-ahead journal, so the    |
//! |                                    | restarted process replays to the   |
//! |                                    | exact pre-crash state              |
//! | upload acked `Applied` before the  | the journal entry is written       |
//! | crash, ack lost                    | *before* the ack, so replay        |
//! |                                    | re-applies it and the worker's     |
//! |                                    | retransmission gets `Duplicate`    |
//! | request answered, response lost to | lease recovered from the journal,  |
//! | the crash                          | left to expire; the worker's retry |
//! |                                    | gets a fresh assignment            |
//!
//! No event in this table can take down the accept loop or another
//! connection, and none of them perturbs the model trajectory: a reclaimed
//! lease is the same logical event as a timed-out one, an `Overloaded`
//! rejection leaves no trace in the parameter server, and a crash-restart
//! with durability on reproduces the uninterrupted trajectory bit-for-bit
//! (CI pins this as the `chaos_kill` digest).

use fleet_data::LabelDistribution;
use fleet_device::DeviceFeatures;
use fleet_ml::Gradient;
use serde::{Deserialize, Serialize};

/// Step 1: a worker asks for a learning task, sending its device state and
/// the label information of its locally collected data (only label indices
/// and counts — never the raw data, §2.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRequest {
    /// The worker's identifier.
    pub worker_id: u64,
    /// The device model name (key for I-Prof's personalised models).
    pub device_model: String,
    /// Observable device state.
    pub device_features: DeviceFeatures,
    /// Label distribution of the worker's local data.
    pub label_distribution: LabelDistribution,
    /// Number of locally available samples.
    pub available_samples: usize,
}

/// Steps 2–4: the server's answer to a request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaskResponse {
    /// The task was accepted; the worker should compute a gradient.
    Assignment(TaskAssignment),
    /// The task was rejected by the controller.
    Rejected(RejectionReason),
}

/// The learning task handed to the worker: the current model and the workload
/// bound chosen by I-Prof.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskAssignment {
    /// Server-issued, strictly monotonic task identifier. The worker echoes
    /// it back as [`TaskResult::task_id`]; the server uses it to deduplicate
    /// retransmitted results and to reclaim tasks whose lease expired.
    pub task_id: u64,
    /// Flat model parameters the gradient must be computed against.
    pub model_parameters: Vec<f32>,
    /// The server's logical clock at the time the model was handed out.
    pub model_version: u64,
    /// The per-shard vector clock at hand-out time, when the server runs the
    /// parameter shards asynchronously (`ApplyMode::PerShard`); empty in
    /// lockstep mode, where [`TaskAssignment::model_version`] carries the
    /// whole story. The worker echoes it back as
    /// [`TaskResult::read_clock`] so the server can attribute a *per-shard*
    /// staleness to the gradient.
    pub shard_clocks: Vec<u64>,
    /// The mini-batch size the worker should process.
    pub mini_batch_size: usize,
}

/// Why the controller refused to hand out a learning task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectionReason {
    /// The mini-batch size I-Prof proposed is below the controller's
    /// size threshold (the gradient would be too noisy to help, Fig. 3).
    BatchTooSmall {
        /// The proposed size.
        proposed: usize,
        /// The minimum the controller accepts.
        minimum: usize,
    },
    /// The worker's data is too similar to what the model has already seen
    /// (low expected utility).
    TooSimilar,
    /// The server is shedding load: a parameter shard's pending buffer has
    /// reached its configured bound, so accepting the task would queue a
    /// gradient the server cannot absorb. The worker should back off and
    /// retry (see `worker::RetryPolicy`).
    Overloaded {
        /// The saturated shard.
        shard: usize,
    },
}

/// Step 5: the worker's result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskResult {
    /// The worker that produced the result.
    pub worker_id: u64,
    /// The model version the gradient was computed on.
    pub model_version: u64,
    /// The gradient itself.
    pub gradient: Gradient,
    /// Label distribution of the mini-batch actually used.
    pub label_distribution: LabelDistribution,
    /// Number of samples in the mini-batch actually used.
    pub num_samples: usize,
    /// Measured computation time on the device, in seconds (fed back to
    /// I-Prof).
    pub computation_seconds: f32,
    /// Measured energy, in percent of battery (fed back to I-Prof).
    pub energy_pct: f32,
    /// The per-shard vector clock the worker observed when it pulled the
    /// model (echoed from [`TaskAssignment::shard_clocks`]); `None` when the
    /// server hands out lockstep assignments, or from wire peers that
    /// predate vector clocks (wire format v1).
    pub read_clock: Option<Vec<u64>>,
    /// The task identifier echoed from [`TaskAssignment::task_id`]; `None`
    /// from wire peers that predate leases (wire formats v1/v2). Id-less
    /// results bypass dedup — they are applied if (and only if) the worker
    /// has a recorded request, preserving the legacy protocol.
    pub task_id: Option<u64>,
}

/// What the server did with an uploaded [`TaskResult`] (see the module docs
/// for the full disposition table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResultDisposition {
    /// First result for an outstanding lease — the gradient was applied.
    Applied,
    /// The task was already completed; this retransmission was discarded.
    Duplicate,
    /// The task's lease expired before the result arrived; the straggler
    /// gradient was discarded.
    Expired,
    /// The result matches no known task (unknown id, wrong worker, or an
    /// id-less result from a worker with no recorded request); discarded.
    Unsolicited,
}

/// The server's acknowledgement of a result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResultAck {
    /// The staleness the server attributed to the gradient.
    pub staleness: u64,
    /// The weight AdaSGD applied to it.
    pub scaling_factor: f64,
    /// Whether the model advanced as a result.
    pub model_updated: bool,
    /// The server's logical clock after processing the result.
    pub clock: u64,
    /// What the server did with the result; anything but
    /// [`ResultDisposition::Applied`] means the gradient was discarded
    /// (staleness and scaling factor are reported as zero).
    pub disposition: ResultDisposition,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejection_reasons_are_comparable() {
        let a = RejectionReason::BatchTooSmall {
            proposed: 3,
            minimum: 10,
        };
        let b = RejectionReason::TooSimilar;
        let c = RejectionReason::Overloaded { shard: 2 };
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(c, RejectionReason::Overloaded { shard: 3 });
    }

    #[test]
    fn dispositions_are_comparable() {
        assert_ne!(ResultDisposition::Applied, ResultDisposition::Duplicate);
        assert_ne!(ResultDisposition::Expired, ResultDisposition::Unsolicited);
        // Copy semantics: an ack can be passed around by value.
        let ack = ResultAck {
            staleness: 1,
            scaling_factor: 0.5,
            model_updated: true,
            clock: 9,
            disposition: ResultDisposition::Applied,
        };
        let copy = ack;
        assert_eq!(copy, ack);
    }

    #[test]
    fn task_response_variants() {
        let assignment = TaskAssignment {
            task_id: 12,
            model_parameters: vec![0.0; 4],
            model_version: 7,
            shard_clocks: vec![7, 7],
            mini_batch_size: 100,
        };
        let resp = TaskResponse::Assignment(assignment.clone());
        match resp {
            TaskResponse::Assignment(a) => assert_eq!(a, assignment),
            TaskResponse::Rejected(_) => panic!("expected assignment"),
        }
    }
}
