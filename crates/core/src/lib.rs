//! # fleet-core
//!
//! The primary contribution of the FLeet paper: **AdaSGD**, an asynchronous,
//! staleness-aware stochastic-gradient-descent algorithm for Online Federated
//! Learning (§2.3), together with the baselines it is evaluated against:
//!
//! * [`aggregator::DynSgd`] — staleness-aware SGD with the *inverse*
//!   dampening function `Λ(τ) = 1/(τ+1)` (Jiang et al., SIGMOD'17),
//! * [`aggregator::FedAvg`] — staleness-*unaware* gradient averaging
//!   (the Standard-FL algorithm),
//! * [`aggregator::Ssgd`] — fully synchronous SGD, the staleness-free ideal.
//!
//! AdaSGD weights every incoming gradient with
//! `min(1, Λ(τ) · 1/sim(x))` (Eq. 3 of the paper) where
//!
//! * `Λ(τ) = e^{−βτ}` is an **exponential staleness dampening** whose rate β
//!   is calibrated from the expected percentage of non-stragglers
//!   (`τ_thres` = s-th percentile of past staleness values, with the inverse
//!   and exponential curves crossing at `τ_thres/2` — see
//!   [`dampening::exponential_beta`]),
//! * `sim(x)` is the **similarity boost**: the Bhattacharyya coefficient
//!   between the worker's local label distribution and the global label
//!   distribution of all previously used samples, so that gradients carrying
//!   novel information are not nullified even when very stale.
//!
//! The [`server::ParameterServer`] applies these weighted gradients to a flat
//! parameter vector with a configurable aggregation parameter `K`
//! (the number of gradients per model update). The vector is
//! range-partitioned into shards (see [`server::ParameterServer::with_shards`])
//! so aggregation fans out across cores. In the default
//! [`server::ApplyMode::Lockstep`] every shard applies on the same K-th
//! submission and results are bit-for-bit identical at every shard and
//! thread count; in [`server::ApplyMode::PerShard`] each shard applies on
//! its own trigger (pending reaching K, or an explicit flush), the shard
//! clocks form a vector clock, and staleness — hence the Λ(τ) weight — is
//! evaluated per shard slice. The `server` module docs spell out the layout
//! and the determinism contract of each mode.
//!
//! # Example
//!
//! ```
//! use fleet_core::aggregator::{AdaSgd, Aggregator};
//! use fleet_core::update::WorkerUpdate;
//! use fleet_data::LabelDistribution;
//! use fleet_ml::Gradient;
//!
//! let mut adasgd = AdaSgd::new(10, 99.7);
//! let update = WorkerUpdate::new(
//!     Gradient::from_vec(vec![0.1, -0.2]),
//!     3,
//!     LabelDistribution::uniform(10),
//!     32,
//!     0,
//! );
//! let weight = adasgd.scaling_factor(&update);
//! assert!(weight > 0.0 && weight <= 1.0);
//! ```

#![forbid(unsafe_code)]

pub mod aggregator;
pub mod config;
pub mod dampening;
pub mod server;
pub mod staleness;
pub mod update;

pub use aggregator::{AdaSgd, Aggregator, AggregatorState, DynSgd, FedAvg, Ssgd};
pub use config::{ConfigError, CoreConfig, CoreConfigBuilder};
pub use dampening::DampeningPolicy;
pub use server::{ApplyMode, ParameterServer, ParameterServerState, SubmitOutcome};
pub use staleness::StalenessTracker;
pub use update::WorkerUpdate;
