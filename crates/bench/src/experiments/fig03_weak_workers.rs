//! Figure 3: gradients from weak workers (mini-batch size 1) can cancel the
//! benefit of strong workers (mini-batch size 128) in synchronous distributed
//! SGD — the motivation for lower-bounding the mini-batch size.

use crate::experiments::common;
use crate::{ExperimentWriter, Scale};
use fleet_data::sampling::MiniBatchSampler;
use fleet_ml::metrics::accuracy;
use fleet_ml::Gradient;

/// One worker configuration: how many workers and which batch size each uses.
#[derive(Debug, Clone, Copy)]
struct Cohort {
    strong: usize,
    weak: usize,
}

/// Runs the four cohorts of Fig. 3 and reports accuracy over training steps.
pub fn run(scale: Scale) {
    let mut out = ExperimentWriter::new("fig03_weak_workers");
    out.comment("Figure 3: weak workers (batch=1) vs strong workers (batch=128), synchronous SGD");
    let steps = scale.pick(120, 1200);
    let eval_every = scale.pick(30, 100);
    let strong_batch = 128;
    let weak_batch = 1;
    let lr = 0.05;

    let world = common::world(10, scale.pick(1200, 6000), 16, false, 11);
    let eval_indices: Vec<usize> = (0..world.test.len().min(1000)).collect();
    let (eval_x, eval_y) = world.test.batch(&eval_indices);
    let all_train: Vec<usize> = (0..world.train.len()).collect();

    let cohorts = [
        ("1 strong", Cohort { strong: 1, weak: 0 }),
        (
            "10 strong",
            Cohort {
                strong: 10,
                weak: 0,
            },
        ),
        (
            "10 strong + 2 weak",
            Cohort {
                strong: 10,
                weak: 2,
            },
        ),
        (
            "10 strong + 4 weak",
            Cohort {
                strong: 10,
                weak: 4,
            },
        ),
    ];

    out.row("cohort,step,accuracy");
    for (name, cohort) in cohorts {
        let mut model = common::model(10, 3);
        let mut sampler = MiniBatchSampler::new(7);
        for step in 1..=steps {
            // One synchronous round: every worker contributes one gradient,
            // applied with equal weight (the paper's unweighted aggregation).
            let mut aggregate = Gradient::zeros(model.parameter_count());
            let total_workers = cohort.strong + cohort.weak;
            for w in 0..total_workers {
                let batch = if w < cohort.strong {
                    strong_batch
                } else {
                    weak_batch
                };
                let indices = sampler.sample(&all_train, batch);
                let (x, y) = world.train.batch(&indices);
                let (_, gradient) = model
                    .compute_gradient(&x, &y)
                    .expect("training batch matches the architecture");
                aggregate.add_scaled(&gradient, 1.0 / total_workers as f32);
            }
            model
                .apply_gradient(&aggregate, lr)
                .expect("aggregate matches the architecture");

            if step % eval_every == 0 || step == steps {
                let acc = accuracy(&model.predict(&eval_x).expect("eval batch"), &eval_y);
                out.row(format!("{name},{step},{acc:.4}"));
            }
        }
    }
    out.finish();
}
