//! Runs every experiment harness in sequence, writing CSV results under the
//! workspace `results/` directory. Pass `--quick` for a fast smoke run.
fn main() {
    fleet_bench::experiments::run_all(fleet_bench::Scale::from_args());
}
