//! Deterministic fault injection for the simulation harness.
//!
//! A [`FaultPlan`] is a *pure function* of `(seed, round, worker)`: every
//! fault decision is a stateless hash, so evaluating the plan consumes no
//! RNG stream and perturbs nothing else in the simulation. Two consequences
//! the test-suite leans on:
//!
//! * a zero-probability plan is byte-identical to not having the fault layer
//!   at all — the pinned fault-free digests cannot move, and
//! * a faulty run is bit-stable across thread counts and SIMD backends,
//!   because the faults fall on the same `(round, worker)` coordinates no
//!   matter how the work is scheduled.
//!
//! The plan models the fault classes of the wire protocol's fault model
//! (see [`crate::protocol`]): dropped requests, dropped / duplicated /
//! delayed (straggler) results, and worker crash-restarts.

/// What the (simulated) network does to an uploaded result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultFate {
    /// The result reaches the server exactly once.
    Deliver,
    /// The result is lost; the lease will expire and be reclaimed.
    Drop,
    /// The result reaches the server twice back-to-back (retransmission
    /// after a lost ack); the second copy must be acked as a duplicate.
    Duplicate,
    /// The result is held back and arrives this many rounds later — the
    /// straggler case; its staleness grows while it is in flight.
    Delay(u64),
}

/// A seeded, deterministic schedule of faults over `(round, worker)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every decision hash.
    pub seed: u64,
    /// Probability a worker's task *request* is lost (the server never sees
    /// it; the worker computes nothing that round).
    pub drop_request: f64,
    /// Probability an uploaded result is lost.
    pub drop_result: f64,
    /// Probability an uploaded result is delivered twice.
    pub duplicate_result: f64,
    /// Probability an uploaded result is delayed.
    pub delay_result: f64,
    /// How many rounds a delayed result is held back.
    pub delay_rounds: u64,
    /// Rounds a task lease lasts before the server reclaims it.
    pub lease_rounds: u64,
    /// Crash-restarts as `(round, worker)`: at the start of that round the
    /// worker loses its in-flight uploads (queued delayed results are
    /// discarded) and rejoins immediately.
    pub crash_restarts: Vec<(u64, u64)>,
}

impl FaultPlan {
    /// The fault-free plan: every probability zero, no crashes. Running
    /// under this plan is byte-identical to running without fault injection.
    pub fn none() -> Self {
        Self {
            seed: 0,
            drop_request: 0.0,
            drop_result: 0.0,
            duplicate_result: 0.0,
            delay_result: 0.0,
            delay_rounds: 0,
            lease_rounds: u64::MAX,
            crash_restarts: Vec::new(),
        }
    }

    /// The chaos plan the CI sweep pins digests for: 10% dropped requests,
    /// 10% dropped results, 5% duplicated, 5% delayed by three rounds, and
    /// one crash-restart of worker 1 at round 12.
    pub fn chaos(seed: u64) -> Self {
        Self {
            seed,
            drop_request: 0.10,
            drop_result: 0.10,
            duplicate_result: 0.05,
            delay_result: 0.05,
            delay_rounds: 3,
            lease_rounds: 6,
            crash_restarts: vec![(12, 1)],
        }
    }

    /// Whether the plan can never fire: all probabilities zero and no
    /// crash-restarts scheduled.
    pub fn is_none(&self) -> bool {
        self.drop_request == 0.0
            && self.drop_result == 0.0
            && self.duplicate_result == 0.0
            && self.delay_result == 0.0
            && self.crash_restarts.is_empty()
    }

    /// Whether `worker`'s task request in `round` is lost.
    pub fn drops_request(&self, round: u64, worker: u64) -> bool {
        self.decide(round, worker, 0x71ea_c8b1, self.drop_request)
    }

    /// What happens to `worker`'s uploaded result in `round`. The three
    /// result faults are mutually exclusive; drop wins over duplicate wins
    /// over delay (each carved out of the same uniform draw, so the marginal
    /// probabilities are exactly the configured ones).
    pub fn result_fate(&self, round: u64, worker: u64) -> ResultFate {
        let u = self.uniform(round, worker, 0x3c6e_f372);
        if u < self.drop_result {
            ResultFate::Drop
        } else if u < self.drop_result + self.duplicate_result {
            ResultFate::Duplicate
        } else if u < self.drop_result + self.duplicate_result + self.delay_result {
            ResultFate::Delay(self.delay_rounds.max(1))
        } else {
            ResultFate::Deliver
        }
    }

    /// Workers that crash-restart at the start of `round`, in ascending
    /// worker order.
    pub fn crashes_at(&self, round: u64) -> Vec<u64> {
        let mut workers: Vec<u64> = self
            .crash_restarts
            .iter()
            .filter(|&&(r, _)| r == round)
            .map(|&(_, w)| w)
            .collect();
        workers.sort_unstable();
        workers.dedup();
        workers
    }

    fn decide(&self, round: u64, worker: u64, salt: u64, probability: f64) -> bool {
        probability > 0.0 && self.uniform(round, worker, salt) < probability
    }

    /// A uniform draw in `[0, 1)` that is a pure function of
    /// `(seed, round, worker, salt)` — splitmix64-style finalizer over the
    /// mixed coordinates.
    fn uniform(&self, round: u64, worker: u64, salt: u64) -> f64 {
        let mut h = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(round.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(worker.wrapping_mul(0x94d0_49bb_1331_11eb))
            .wrapping_add(salt);
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        // 53 mantissa bits -> uniform in [0, 1).
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Counters of what a faulty run actually injected and how the server
/// classified the fallout; reported on the training history so tests can
/// assert the plan really fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Task requests lost before reaching the server.
    pub dropped_requests: u64,
    /// Results lost in flight.
    pub dropped_results: u64,
    /// Second copies of duplicated results rejected by dedup.
    pub duplicates_rejected: u64,
    /// Delayed results eventually delivered.
    pub delayed_delivered: u64,
    /// Results rejected because their lease had expired.
    pub expired_rejected: u64,
    /// In-flight uploads discarded by crash-restarts.
    pub crash_discarded: u64,
    /// Results applied to the model.
    pub applied: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_coordinates() {
        let plan = FaultPlan::chaos(42);
        for round in 0..50 {
            for worker in 0..10 {
                assert_eq!(
                    plan.drops_request(round, worker),
                    plan.drops_request(round, worker)
                );
                assert_eq!(
                    plan.result_fate(round, worker),
                    plan.result_fate(round, worker)
                );
            }
        }
        // A clone decides identically: no hidden state.
        let clone = plan.clone();
        assert_eq!(plan.result_fate(7, 3), clone.result_fate(7, 3));
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::chaos(1);
        let b = FaultPlan::chaos(2);
        let differs = (0..200).any(|round| {
            (0..8).any(|worker| {
                a.drops_request(round, worker) != b.drops_request(round, worker)
                    || a.result_fate(round, worker) != b.result_fate(round, worker)
            })
        });
        assert!(differs, "seeds 1 and 2 produced identical schedules");
    }

    #[test]
    fn empirical_rates_match_configuration() {
        let plan = FaultPlan::chaos(7);
        let n = 100_000u64;
        let mut dropped_req = 0u64;
        let mut dropped = 0u64;
        let mut duplicated = 0u64;
        let mut delayed = 0u64;
        for round in 0..n / 10 {
            for worker in 0..10 {
                if plan.drops_request(round, worker) {
                    dropped_req += 1;
                }
                match plan.result_fate(round, worker) {
                    ResultFate::Drop => dropped += 1,
                    ResultFate::Duplicate => duplicated += 1,
                    ResultFate::Delay(r) => {
                        assert_eq!(r, 3);
                        delayed += 1;
                    }
                    ResultFate::Deliver => {}
                }
            }
        }
        let rate = |count: u64| count as f64 / n as f64;
        assert!(
            (rate(dropped_req) - 0.10).abs() < 0.01,
            "{}",
            rate(dropped_req)
        );
        assert!((rate(dropped) - 0.10).abs() < 0.01, "{}", rate(dropped));
        assert!(
            (rate(duplicated) - 0.05).abs() < 0.01,
            "{}",
            rate(duplicated)
        );
        assert!((rate(delayed) - 0.05).abs() < 0.01, "{}", rate(delayed));
    }

    #[test]
    fn zero_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        assert!(!FaultPlan::chaos(0).is_none());
        for round in 0..100 {
            assert!(plan.crashes_at(round).is_empty());
            for worker in 0..10 {
                assert!(!plan.drops_request(round, worker));
                assert_eq!(plan.result_fate(round, worker), ResultFate::Deliver);
            }
        }
    }

    #[test]
    fn crashes_fire_exactly_on_their_round() {
        let mut plan = FaultPlan::none();
        plan.crash_restarts = vec![(5, 2), (5, 1), (9, 0), (5, 2)];
        assert_eq!(plan.crashes_at(5), vec![1, 2]);
        assert_eq!(plan.crashes_at(9), vec![0]);
        assert!(plan.crashes_at(4).is_empty());
        assert!(plan.crashes_at(6).is_empty());
    }

    #[test]
    fn delay_of_zero_rounds_is_bumped_to_one() {
        let mut plan = FaultPlan::chaos(3);
        plan.delay_rounds = 0;
        let delayed = (0..500)
            .flat_map(|r| (0..8).map(move |w| (r, w)))
            .find_map(|(r, w)| match plan.result_fate(r, w) {
                ResultFate::Delay(rounds) => Some(rounds),
                _ => None,
            });
        assert_eq!(delayed, Some(1), "a zero-round delay would be a deliver");
    }
}
