//! Label distributions and the Bhattacharyya coefficient.
//!
//! AdaSGD's similarity-based boosting (§2.3, Eq. 4 of the paper) compares the
//! label distribution of a worker's local dataset with the global label
//! distribution of all previously used samples using the Bhattacharyya
//! coefficient `BC(p, q) = Σ_i sqrt(p_i q_i) ∈ [0, 1]`.

use serde::{Deserialize, Serialize};

/// A normalised distribution over class labels (or histogram bins, for
/// regression tasks — see §2.3 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelDistribution {
    probabilities: Vec<f32>,
}

impl LabelDistribution {
    /// Builds the empirical distribution of `labels` over `num_classes`
    /// classes. Labels outside the range are ignored. Returns the uniform
    /// distribution when `labels` is empty.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes` is zero.
    pub fn from_labels(labels: &[usize], num_classes: usize) -> Self {
        assert!(num_classes > 0, "num_classes must be positive");
        let mut counts = vec![0.0f32; num_classes];
        let mut total = 0.0f32;
        for &l in labels {
            if l < num_classes {
                counts[l] += 1.0;
                total += 1.0;
            }
        }
        if total == 0.0 {
            return Self::uniform(num_classes);
        }
        for c in &mut counts {
            *c /= total;
        }
        Self {
            probabilities: counts,
        }
    }

    /// Builds a distribution from raw per-class counts (used for the global
    /// label distribution, which accumulates all previously used samples).
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty.
    pub fn from_counts(counts: &[u64]) -> Self {
        assert!(!counts.is_empty(), "counts must be non-empty");
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Self::uniform(counts.len());
        }
        Self {
            probabilities: counts.iter().map(|&c| c as f32 / total as f32).collect(),
        }
    }

    /// The uniform distribution over `num_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes` is zero.
    pub fn uniform(num_classes: usize) -> Self {
        assert!(num_classes > 0, "num_classes must be positive");
        Self {
            probabilities: vec![1.0 / num_classes as f32; num_classes],
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.probabilities.len()
    }

    /// Probability assigned to `class` (0.0 when out of range).
    pub fn probability(&self, class: usize) -> f32 {
        self.probabilities.get(class).copied().unwrap_or(0.0)
    }

    /// The probability vector.
    pub fn as_slice(&self) -> &[f32] {
        &self.probabilities
    }

    /// Bhattacharyya coefficient between two distributions, in `[0, 1]`
    /// (1 = identical support and shape, 0 = disjoint support).
    ///
    /// Distributions of different lengths are compared over the shorter prefix
    /// (the remaining mass necessarily contributes zero overlap).
    pub fn bhattacharyya(&self, other: &LabelDistribution) -> f32 {
        self.probabilities
            .iter()
            .zip(other.probabilities.iter())
            .map(|(&p, &q)| (p * q).max(0.0).sqrt())
            .sum::<f32>()
            .clamp(0.0, 1.0)
    }
}

/// Accumulates the global label distribution over all samples the server has
/// already used for updates (the `LD_global` of Eq. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalLabelDistribution {
    counts: Vec<u64>,
}

impl GlobalLabelDistribution {
    /// Creates an empty accumulator over `num_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes` is zero.
    pub fn new(num_classes: usize) -> Self {
        assert!(num_classes > 0, "num_classes must be positive");
        Self {
            counts: vec![0; num_classes],
        }
    }

    /// Records that `count` samples of `class` were used for a model update.
    /// Out-of-range classes are ignored.
    pub fn record(&mut self, class: usize, count: u64) {
        if let Some(c) = self.counts.get_mut(class) {
            *c += count;
        }
    }

    /// Records every label of a local mini-batch.
    pub fn record_labels(&mut self, labels: &[usize]) {
        for &l in labels {
            self.record(l, 1);
        }
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-class counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Snapshot as a normalised [`LabelDistribution`] (uniform when empty).
    pub fn distribution(&self) -> LabelDistribution {
        LabelDistribution::from_counts(&self.counts)
    }

    /// Similarity of a local label distribution with the global one, i.e.
    /// Eq. 4 of the paper: `sim(x_i) = BC(LD(x_i), LD_global)`.
    pub fn similarity(&self, local: &LabelDistribution) -> f32 {
        self.distribution().bhattacharyya(local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_labels_matches_paper_example() {
        // Paper §2.3: 1 example of label 0 and 2 of label 1 over 4 classes
        // gives LD = [1/3, 2/3, 0, 0].
        let ld = LabelDistribution::from_labels(&[0, 1, 1], 4);
        let expect = [1.0 / 3.0, 2.0 / 3.0, 0.0, 0.0];
        for (a, b) in ld.as_slice().iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_labels_give_uniform() {
        let ld = LabelDistribution::from_labels(&[], 5);
        assert_eq!(ld, LabelDistribution::uniform(5));
    }

    #[test]
    fn out_of_range_labels_ignored() {
        let ld = LabelDistribution::from_labels(&[0, 9], 2);
        assert_eq!(ld.probability(0), 1.0);
    }

    #[test]
    fn bhattacharyya_identical_is_one() {
        let ld = LabelDistribution::from_labels(&[0, 1, 2, 2], 3);
        assert!((ld.bhattacharyya(&ld) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn bhattacharyya_disjoint_is_zero() {
        let a = LabelDistribution::from_labels(&[0, 0], 4);
        let b = LabelDistribution::from_labels(&[3, 3], 4);
        assert_eq!(a.bhattacharyya(&b), 0.0);
    }

    #[test]
    fn bhattacharyya_symmetric() {
        let a = LabelDistribution::from_labels(&[0, 1, 1], 3);
        let b = LabelDistribution::from_labels(&[1, 2], 3);
        assert!((a.bhattacharyya(&b) - b.bhattacharyya(&a)).abs() < 1e-6);
    }

    #[test]
    fn global_distribution_accumulates() {
        let mut g = GlobalLabelDistribution::new(3);
        assert_eq!(g.total(), 0);
        assert_eq!(g.distribution(), LabelDistribution::uniform(3));
        g.record_labels(&[0, 0, 1]);
        g.record(2, 1);
        assert_eq!(g.total(), 4);
        assert_eq!(g.counts(), &[2, 1, 1]);
        let d = g.distribution();
        assert!((d.probability(0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn similarity_lower_for_unseen_label() {
        // A gradient computed on a label the model has rarely seen must get a
        // lower similarity (and hence a larger boost in AdaSGD).
        let mut g = GlobalLabelDistribution::new(4);
        g.record(1, 100);
        g.record(2, 100);
        let seen = LabelDistribution::from_labels(&[1, 2], 4);
        let unseen = LabelDistribution::from_labels(&[0, 0], 4);
        assert!(g.similarity(&seen) > g.similarity(&unseen));
    }

    proptest! {
        #[test]
        fn prop_bc_in_unit_interval(labels_a in proptest::collection::vec(0usize..6, 0..50),
                                    labels_b in proptest::collection::vec(0usize..6, 0..50)) {
            let a = LabelDistribution::from_labels(&labels_a, 6);
            let b = LabelDistribution::from_labels(&labels_b, 6);
            let bc = a.bhattacharyya(&b);
            prop_assert!((0.0..=1.0).contains(&bc));
        }

        #[test]
        fn prop_distribution_sums_to_one(labels in proptest::collection::vec(0usize..8, 1..100)) {
            let ld = LabelDistribution::from_labels(&labels, 8);
            let sum: f32 = ld.as_slice().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }

        #[test]
        fn prop_self_similarity_is_max(labels in proptest::collection::vec(0usize..5, 1..50),
                                       other in proptest::collection::vec(0usize..5, 1..50)) {
            let a = LabelDistribution::from_labels(&labels, 5);
            let b = LabelDistribution::from_labels(&other, 5);
            prop_assert!(a.bhattacharyya(&a) >= a.bhattacharyya(&b) - 1e-5);
        }
    }
}
