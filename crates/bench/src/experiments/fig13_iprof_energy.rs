//! Figure 13: I-Prof vs MAUI against the energy SLO of 0.075 % battery drop
//! per learning task, on the 5 lab devices.

use crate::experiments::common::profiler_training_profiles;
use crate::{ExperimentWriter, Scale};
use fleet_device::profile::lab_device_set;
use fleet_device::Device;
use fleet_profiler::eval::DeviationStats;
use fleet_profiler::training::{collect_calibration, pretrained_iprof, pretrained_maui};
use fleet_profiler::{Slo, WorkloadProfiler};

/// Runs the energy-SLO comparison.
pub fn run(scale: Scale) {
    let mut out = ExperimentWriter::new("fig13_iprof_energy");
    out.comment("Figure 13: I-Prof vs MAUI, energy SLO = 0.075% battery, 5 lab devices");
    let slo = Slo::paper_energy_default();
    let slo_energy = slo.energy_pct.unwrap_or(0.075);

    let calibration =
        collect_calibration(&profiler_training_profiles(), Slo::latency(3.0), 8, 40, 202);
    let mut iprof = pretrained_iprof(slo, &calibration);
    let mut maui = pretrained_maui(slo, &calibration);

    let requests_per_device = scale.pick(4, 8);
    let mut iprof_energy = Vec::new();
    let mut maui_energy = Vec::new();

    out.row("profiler,device,request,batch_size,energy_pct,deviation_pct");
    for (device_index, profile) in lab_device_set().into_iter().enumerate() {
        let mut device_for_iprof = Device::new(profile.clone(), 900 + device_index as u64);
        let mut device_for_maui = Device::new(profile.clone(), 900 + device_index as u64);
        for request in 0..requests_per_device {
            for (which, profiler, device, sink) in [
                (
                    "I-Prof",
                    &mut iprof as &mut dyn WorkloadProfiler,
                    &mut device_for_iprof,
                    &mut iprof_energy,
                ),
                (
                    "MAUI",
                    &mut maui as &mut dyn WorkloadProfiler,
                    &mut device_for_maui,
                    &mut maui_energy,
                ),
            ] {
                let features = device.features();
                let batch = profiler.predict(&profile.name, &features);
                let exec = device.execute_task(batch);
                profiler.observe(
                    &profile.name,
                    &features,
                    batch,
                    exec.computation_seconds,
                    exec.energy_pct,
                );
                sink.push(exec.energy_pct);
                out.row(format!(
                    "{which},{},{request},{batch},{:.5},{:.5}",
                    profile.name,
                    exec.energy_pct,
                    (exec.energy_pct - slo_energy).abs()
                ));
                device.idle(120.0);
            }
        }
    }

    let iprof_stats = DeviationStats::from_measurements(&iprof_energy, slo_energy);
    let maui_stats = DeviationStats::from_measurements(&maui_energy, slo_energy);
    out.comment(format!(
        "I-Prof energy deviation: p50={:.4}% p90={:.4}% max={:.4}% over {} tasks (paper p90: 0.01%)",
        iprof_stats.p50, iprof_stats.p90, iprof_stats.max, iprof_stats.count
    ));
    out.comment(format!(
        "MAUI energy deviation: p50={:.4}% p90={:.4}% max={:.4}% over {} tasks (paper p90: 0.19%)",
        maui_stats.p50, maui_stats.p90, maui_stats.max, maui_stats.count
    ));
    out.finish();
}
