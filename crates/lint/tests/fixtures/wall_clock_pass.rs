// Fixture: logical time only — round counters and simulated clocks, no
// std::time reads. Expect zero findings. (The same source scanned under
// crates/bench/ would pass even with real Instant reads.)

pub struct LogicalClock {
    round: u64,
}

impl LogicalClock {
    pub fn tick(&mut self) -> u64 {
        // "Instant" in a comment or string is prose, not a wall-clock read.
        let _label = "not an Instant::now call";
        self.round += 1;
        self.round
    }
}
