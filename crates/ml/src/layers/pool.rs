//! Max-pooling layer.

use crate::layer::Layer;
use crate::tensor::Tensor;
use crate::{MlError, Result};

/// 2-D max-pooling over `[batch, channels, height, width]` inputs.
///
/// The paper's Table 1 uses pooling windows of 2x2, 3x3 and 4x4 with matching
/// strides; this layer supports any window/stride combination.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    stride: usize,
    cached_input_shape: Option<Vec<usize>>,
    /// For each output element, the flat index of the input element that won.
    cached_argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with a square `window` and the given `stride`.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `stride` is zero.
    pub fn new(window: usize, stride: usize) -> Self {
        assert!(window > 0, "pool window must be positive");
        assert!(stride > 0, "pool stride must be positive");
        Self {
            window,
            stride,
            cached_input_shape: None,
            cached_argmax: Vec::new(),
        }
    }

    /// Output spatial size for an input spatial size, or `None` if the input
    /// is smaller than the pooling window.
    pub fn output_size(&self, input: usize) -> Option<usize> {
        if input < self.window {
            None
        } else {
            Some((input - self.window) / self.stride + 1)
        }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &str {
        "maxpool2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let shape = input.shape();
        if shape.len() != 4 {
            return Err(MlError::ShapeMismatch {
                expected: vec![0, 0, 0, 0],
                actual: shape.to_vec(),
                context: "MaxPool2d::forward".to_string(),
            });
        }
        let (batch, channels, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let oh = self.output_size(h).ok_or_else(|| {
            MlError::InvalidArgument(format!(
                "input height {h} smaller than window {}",
                self.window
            ))
        })?;
        let ow = self.output_size(w).ok_or_else(|| {
            MlError::InvalidArgument(format!(
                "input width {w} smaller than window {}",
                self.window
            ))
        })?;
        let data = input.data();
        let mut out = vec![f32::NEG_INFINITY; batch * channels * oh * ow];
        let mut argmax = vec![0usize; out.len()];
        for b in 0..batch {
            for c in 0..channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let out_idx = ((b * channels + c) * oh + oy) * ow + ox;
                        for ky in 0..self.window {
                            let iy = oy * self.stride + ky;
                            for kx in 0..self.window {
                                let ix = ox * self.stride + kx;
                                let in_idx = ((b * channels + c) * h + iy) * w + ix;
                                if data[in_idx] > out[out_idx] {
                                    out[out_idx] = data[in_idx];
                                    argmax[out_idx] = in_idx;
                                }
                            }
                        }
                    }
                }
            }
        }
        self.cached_input_shape = Some(shape.to_vec());
        self.cached_argmax = argmax;
        Ok(Tensor::from_vec(out, &[batch, channels, oh, ow]))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input_shape = self.cached_input_shape.as_ref().ok_or_else(|| {
            MlError::InvalidArgument("MaxPool2d::backward called before forward".to_string())
        })?;
        if grad_output.len() != self.cached_argmax.len() {
            return Err(MlError::ShapeMismatch {
                expected: vec![self.cached_argmax.len()],
                actual: vec![grad_output.len()],
                context: "MaxPool2d::backward".to_string(),
            });
        }
        let mut grad_input = vec![0.0f32; input_shape.iter().product()];
        for (out_idx, &in_idx) in self.cached_argmax.iter().enumerate() {
            grad_input[in_idx] += grad_output.data()[out_idx];
        }
        Ok(Tensor::from_vec(grad_input, input_shape))
    }

    fn parameters(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn gradients(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_gradients(&mut self) {}

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_picks_max() {
        let mut pool = MaxPool2d::new(2, 2);
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        );
        let out = pool.forward(&input).unwrap();
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let mut pool = MaxPool2d::new(2, 2);
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        pool.forward(&input).unwrap();
        let grad = pool
            .backward(&Tensor::from_vec(vec![10.0], &[1, 1, 1, 1]))
            .unwrap();
        assert_eq!(grad.data(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn non_4d_input_errors() {
        let mut pool = MaxPool2d::new(2, 2);
        assert!(pool.forward(&Tensor::zeros(&[2, 4])).is_err());
    }

    #[test]
    fn too_small_input_errors() {
        let mut pool = MaxPool2d::new(3, 3);
        assert!(pool.forward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
    }

    #[test]
    fn negative_values_handled() {
        let mut pool = MaxPool2d::new(2, 2);
        let input = Tensor::from_vec(vec![-5.0, -2.0, -8.0, -1.0], &[1, 1, 2, 2]);
        let out = pool.forward(&input).unwrap();
        assert_eq!(out.data(), &[-1.0]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut pool = MaxPool2d::new(2, 2);
        assert!(pool.backward(&Tensor::zeros(&[1, 1, 1, 1])).is_err());
    }
}
