//! Deriving the staleness distribution from task timestamps and round-trip
//! latencies (the methodology behind Fig. 7 of the paper).
//!
//! Every learning task pulls the model when it starts and pushes its gradient
//! when its round-trip (computation + network) completes. With K = 1 the
//! model advances by one step per pushed gradient, so the staleness of a task
//! equals the number of *other* tasks that complete while it is in flight.

use fleet_device::network::RoundTripModel;

/// Computes per-task staleness values.
///
/// `start_times` are the task start timestamps in seconds (not necessarily
/// sorted); one round-trip latency is drawn from `round_trip` per task.
pub fn staleness_from_timestamps(start_times: &[f64], round_trip: &mut RoundTripModel) -> Vec<u64> {
    let mut tasks: Vec<(f64, f64)> = start_times
        .iter()
        .map(|&start| {
            let finish = start + round_trip.sample();
            (start, finish)
        })
        .collect();
    // Completion times of all tasks, sorted, for counting via binary search.
    let mut completions: Vec<f64> = tasks.iter().map(|&(_, f)| f).collect();
    completions.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

    tasks
        .iter_mut()
        .map(|&mut (start, finish)| {
            let before_finish = partition_point(&completions, |&c| c < finish);
            let before_start = partition_point(&completions, |&c| c <= start);
            // Exclude the task's own completion (it lies in the interval).
            (before_finish - before_start).saturating_sub(1) as u64
        })
        .collect()
}

/// Builds a normalised histogram of staleness values with unit-width bins up
/// to `max_bin` (inclusive); the last bin aggregates everything larger.
pub fn histogram(values: &[u64], max_bin: usize) -> Vec<f64> {
    let mut bins = vec![0.0f64; max_bin + 2];
    for &v in values {
        let idx = (v as usize).min(max_bin + 1);
        bins[idx] += 1.0;
    }
    if !values.is_empty() {
        for b in &mut bins {
            *b /= values.len() as f64;
        }
    }
    bins
}

fn partition_point(sorted: &[f64], pred: impl Fn(&f64) -> bool) -> usize {
    let mut lo = 0;
    let mut hi = sorted.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if pred(&sorted[mid]) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Generates bursty task start times resembling tweet activity: a base rate
/// with periodic peak hours at `peak_multiplier` times the base rate.
pub fn bursty_start_times(
    total_tasks: usize,
    base_interval_seconds: f64,
    peak_multiplier: f64,
    peak_period: usize,
    peak_length: usize,
) -> Vec<f64> {
    let mut times = Vec::with_capacity(total_tasks);
    let mut now = 0.0;
    for i in 0..total_tasks {
        let in_peak = peak_period > 0 && (i / peak_length).is_multiple_of(peak_period);
        let interval = if in_peak {
            base_interval_seconds / peak_multiplier.max(1.0)
        } else {
            base_interval_seconds
        };
        now += interval;
        times.push(now);
    }
    times
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_arrivals_give_gaussian_like_staleness() {
        // Tasks arriving every second with ~8.45 s round trips should overlap
        // with roughly 7-9 other tasks on average.
        let starts: Vec<f64> = (0..2000).map(|i| i as f64).collect();
        let mut rt = RoundTripModel::paper_defaults(1);
        let staleness = staleness_from_timestamps(&starts, &mut rt);
        let mean = staleness.iter().sum::<u64>() as f64 / staleness.len() as f64;
        assert!((6.0..11.0).contains(&mean), "mean staleness {mean}");
    }

    #[test]
    fn bursty_arrivals_produce_a_long_tail() {
        let starts = bursty_start_times(3000, 2.0, 40.0, 10, 100);
        let mut rt = RoundTripModel::paper_defaults(2);
        let staleness = staleness_from_timestamps(&starts, &mut rt);
        let mean = staleness.iter().sum::<u64>() as f64 / staleness.len() as f64;
        let max = *staleness.iter().max().unwrap();
        assert!(
            max as f64 > 4.0 * mean,
            "long tail expected: max {max}, mean {mean}"
        );
    }

    #[test]
    fn no_overlap_means_zero_staleness() {
        // Tasks spaced far apart never overlap.
        let starts: Vec<f64> = (0..50).map(|i| i as f64 * 10_000.0).collect();
        let mut rt = RoundTripModel::paper_defaults(3);
        let staleness = staleness_from_timestamps(&starts, &mut rt);
        assert!(staleness.iter().all(|&s| s == 0));
    }

    #[test]
    fn histogram_is_normalised() {
        let values = vec![0, 1, 1, 2, 5, 100];
        let h = histogram(&values, 10);
        assert_eq!(h.len(), 12);
        let total: f64 = h.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((h[1] - 2.0 / 6.0).abs() < 1e-9);
        // The overflow bin catches the 100.
        assert!((h[11] - 1.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_are_handled() {
        let mut rt = RoundTripModel::paper_defaults(4);
        assert!(staleness_from_timestamps(&[], &mut rt).is_empty());
        assert!(histogram(&[], 5).iter().all(|&v| v == 0.0));
    }
}
