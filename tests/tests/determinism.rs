//! Regression tests backing the two `lint:allow(det-collections)` waivers.
//!
//! Both waived sites iterate a `std::collections::HashMap` — whose order is
//! randomized per process — and claim their exports are deterministic anyway
//! because they sort before anything observes the order. These tests permute
//! the *insertion* order (ascending, descending, interleaved) and assert the
//! exported state is bit-identical, which is exactly the property the pinned
//! digests need. If either site ever drops its sort, these fail immediately
//! rather than flaking on some future host's hash seed.

use fleet_data::LabelDistribution;
use fleet_device::DeviceFeatures;
use fleet_profiler::{IProf, Slo, WorkloadProfiler};
use fleet_server::protocol::TaskRequest;
use fleet_server::{FleetServer, FleetServerConfig};

fn request(worker_id: u64, device_model: &str) -> TaskRequest {
    TaskRequest {
        worker_id,
        device_model: device_model.to_string(),
        device_features: DeviceFeatures::default(),
        label_distribution: LabelDistribution::uniform(4),
        available_samples: 64,
    }
}

fn server() -> FleetServer {
    FleetServer::new(
        vec![0.0; 16],
        FleetServerConfig::builder()
            .num_classes(4)
            .build()
            .expect("server config is valid"),
    )
}

/// `FleetServer::checkpoint` exports the `device_models` map sorted by
/// worker id (the waiver in `crates/server/src/server.rs`).
#[test]
fn checkpoint_device_models_ignore_registration_order() {
    let models = ["Pixel-3", "Galaxy-S7", "Honor-10", "Xperia-E3", "Pixel-3"];
    let ascending: Vec<u64> = (0..5).collect();
    let descending: Vec<u64> = (0..5).rev().collect();
    let interleaved: Vec<u64> = vec![2, 0, 4, 1, 3];

    let export = |order: &[u64]| {
        let mut srv = server();
        for &id in order {
            let _ = srv.handle_request(&request(id, models[id as usize]));
        }
        srv.checkpoint().device_models
    };

    let a = export(&ascending);
    let b = export(&descending);
    let c = export(&interleaved);
    assert_eq!(a, b, "descending registration changed the export");
    assert_eq!(a, c, "interleaved registration changed the export");
    // And the export really is the sorted association list.
    let ids: Vec<u64> = a.iter().map(|(id, _)| *id).collect();
    assert_eq!(ids, ascending);
    for (id, model) in &a {
        assert_eq!(model, models[*id as usize]);
    }
}

/// `SlopePredictor::export_state` exports the `personal` per-device-model
/// map sorted by model name (the waiver in `crates/profiler/src/iprof.rs`).
///
/// The per-model observation *subsequences* are kept identical across
/// permutations — only the interleaving between models changes, which is the
/// part a `HashMap` could leak. The total observation count stays below the
/// predictor's retrain threshold so the shared global model (and with it the
/// personal-model bootstrap) is identical in every run.
#[test]
fn iprof_personal_models_ignore_observation_interleaving() {
    let models = ["Pixel-3", "Galaxy-S7", "Honor-10"];
    let per_model = 8usize; // 3 × 8 = 24 observations, below retrain_every

    let export = |rounds: &dyn Fn(usize) -> Vec<usize>| {
        let mut iprof = IProf::new(Slo::both(3.0, 0.05));
        // counts[m] = how many observations model m has received so far, so
        // every permutation feeds model m the *same* k-th observation.
        let mut counts = [0usize; 3];
        for step in 0..(models.len() * per_model) {
            for m in rounds(step) {
                let k = counts[m];
                counts[m] += 1;
                let f = DeviceFeatures {
                    temperature_celsius: 25.0 + k as f32,
                    ..DeviceFeatures::default()
                };
                let batch = 32 + 8 * m;
                let secs = 0.002 * (k + 1) as f32 * (m + 1) as f32;
                let energy = 0.001 * (k + 1) as f32;
                iprof.observe(models[m], &f, batch, secs, energy);
            }
            if counts.iter().sum::<usize>() == models.len() * per_model {
                break;
            }
        }
        assert_eq!(counts, [per_model; 3]);
        iprof.export_state()
    };

    // Round-robin 0,1,2,0,1,2,…
    let round_robin = export(&|step: usize| vec![step % 3]);
    // Blocked: all of model 0, then all of 1, then all of 2.
    let blocked = export(&|step: usize| vec![step / per_model]);
    // Reverse round-robin 2,1,0,2,1,0,…
    let reversed = export(&|step: usize| vec![2 - step % 3]);

    // The `calibration` replay buffer is a Vec in arrival order — legitimately
    // interleaving-dependent (and deterministic given the request sequence).
    // The HashMap-backed component under audit is `personal`; `global` and
    // `seen_range` must also be order-insensitive (no retrain below the
    // threshold; min/max over the same multiset).
    for (other, how) in [(&blocked, "blocked"), (&reversed, "reversed")] {
        for (a, b) in [
            (&round_robin.latency, &other.latency),
            (&round_robin.energy, &other.energy),
        ] {
            assert_eq!(a.personal, b.personal, "{how} order changed `personal`");
            assert_eq!(a.global, b.global, "{how} order changed `global`");
            assert_eq!(a.seen_range, b.seen_range, "{how} order changed range");
        }
    }
    // The export is sorted by model name, not by insertion history.
    let names: Vec<&str> = round_robin
        .latency
        .personal
        .iter()
        .map(|(name, _, _)| name.as_str())
        .collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted);
    assert_eq!(names.len(), models.len());
}
