//! The asynchronous parameter server applying weighted worker gradients
//! (Eq. 3 of the paper).

use crate::aggregator::Aggregator;
use crate::update::WorkerUpdate;
use fleet_ml::Gradient;

/// Result of submitting one worker update to the [`ParameterServer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubmitOutcome {
    /// The weight `min(1, Λ(τ)·1/sim)` that was attached to the gradient.
    pub scaling_factor: f64,
    /// Whether this submission triggered a model update (the K-th gradient of
    /// the current aggregation round).
    pub applied: bool,
    /// The server's logical clock after the submission.
    pub clock: u64,
}

/// A parameter server holding the flat model parameters, a logical clock and
/// an aggregation buffer of `K` gradients per update (§2.3: `K` can be 1 for
/// maximum update frequency, or larger / time-window based).
#[derive(Debug)]
pub struct ParameterServer<A: Aggregator> {
    parameters: Vec<f32>,
    aggregator: A,
    learning_rate: f32,
    aggregation_k: usize,
    pending: Vec<Gradient>,
    clock: u64,
    updates_applied: u64,
    updates_received: u64,
}

impl<A: Aggregator> ParameterServer<A> {
    /// Creates a server over an initial flat parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not positive or `aggregation_k` is zero.
    pub fn new(
        initial_parameters: Vec<f32>,
        aggregator: A,
        learning_rate: f32,
        aggregation_k: usize,
    ) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!(
            aggregation_k > 0,
            "aggregation parameter K must be positive"
        );
        Self {
            parameters: initial_parameters,
            aggregator,
            learning_rate,
            aggregation_k,
            pending: Vec::new(),
            clock: 0,
            updates_applied: 0,
            updates_received: 0,
        }
    }

    /// The current flat model parameters (what a worker pulls in step 4 of
    /// Fig. 2).
    pub fn parameters(&self) -> &[f32] {
        &self.parameters
    }

    /// The server's logical clock `t`: the number of model updates so far.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Number of gradients received (applied or pending).
    pub fn updates_received(&self) -> u64 {
        self.updates_received
    }

    /// Number of gradients that have been folded into the model.
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// The configured learning rate γ.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Access to the aggregator (e.g. to inspect `τ_thres`).
    pub fn aggregator(&self) -> &A {
        &self.aggregator
    }

    /// Submits one worker update. The gradient is scaled by the aggregator's
    /// weight and buffered; once `K` gradients have accumulated the model is
    /// updated and the logical clock advances.
    ///
    /// # Panics
    ///
    /// Panics if the gradient length differs from the parameter length.
    pub fn submit(&mut self, update: WorkerUpdate) -> SubmitOutcome {
        assert_eq!(
            update.gradient.len(),
            self.parameters.len(),
            "gradient length {} does not match parameter length {}",
            update.gradient.len(),
            self.parameters.len()
        );
        let scaling = self.aggregator.scaling_factor(&update);
        self.aggregator.record(&update);
        self.updates_received += 1;

        self.pending.push(update.gradient.scaled(scaling as f32));
        let applied = if self.pending.len() >= self.aggregation_k {
            self.apply_pending();
            true
        } else {
            false
        };
        SubmitOutcome {
            scaling_factor: scaling,
            applied,
            clock: self.clock,
        }
    }

    fn apply_pending(&mut self) {
        for gradient in &self.pending {
            for (p, g) in self.parameters.iter_mut().zip(gradient.as_slice()) {
                *p -= self.learning_rate * g;
            }
            self.updates_applied += 1;
        }
        self.pending.clear();
        self.clock += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::{AdaSgd, DynSgd, FedAvg};
    use fleet_data::LabelDistribution;

    fn update(gradient: Vec<f32>, staleness: u64) -> WorkerUpdate {
        WorkerUpdate::new(
            Gradient::from_vec(gradient),
            staleness,
            LabelDistribution::uniform(4),
            10,
            0,
        )
    }

    #[test]
    fn k1_applies_immediately() {
        let mut server = ParameterServer::new(vec![1.0, 1.0], FedAvg::new(), 0.5, 1);
        let outcome = server.submit(update(vec![1.0, -1.0], 0));
        assert!(outcome.applied);
        assert_eq!(outcome.clock, 1);
        assert_eq!(server.parameters(), &[0.5, 1.5]);
    }

    #[test]
    fn k3_buffers_until_full() {
        let mut server = ParameterServer::new(vec![0.0], FedAvg::new(), 1.0, 3);
        assert!(!server.submit(update(vec![1.0], 0)).applied);
        assert!(!server.submit(update(vec![1.0], 0)).applied);
        assert_eq!(server.clock(), 0);
        assert_eq!(server.parameters(), &[0.0]);
        let third = server.submit(update(vec![1.0], 0));
        assert!(third.applied);
        assert_eq!(server.clock(), 1);
        assert_eq!(server.parameters(), &[-3.0]);
        assert_eq!(server.updates_applied(), 3);
        assert_eq!(server.updates_received(), 3);
    }

    #[test]
    fn stale_gradients_are_dampened_by_dynsgd() {
        let mut server = ParameterServer::new(vec![0.0], DynSgd::new(), 1.0, 1);
        server.submit(update(vec![1.0], 9)); // weight 0.1
        assert!((server.parameters()[0] + 0.1).abs() < 1e-6);
    }

    #[test]
    fn adasgd_server_end_to_end() {
        let mut server = ParameterServer::new(vec![0.0, 0.0], AdaSgd::new(4, 99.7), 0.1, 1);
        for i in 0..50 {
            let outcome = server.submit(update(vec![0.5, -0.5], i % 5));
            assert!(outcome.applied);
            assert!(outcome.scaling_factor > 0.0 && outcome.scaling_factor <= 1.0);
        }
        assert_eq!(server.clock(), 50);
        // The parameters moved in the gradient-descent direction.
        assert!(server.parameters()[0] < 0.0);
        assert!(server.parameters()[1] > 0.0);
    }

    #[test]
    #[should_panic(expected = "does not match parameter length")]
    fn mismatched_gradient_length_panics() {
        let mut server = ParameterServer::new(vec![0.0, 0.0], FedAvg::new(), 0.1, 1);
        server.submit(update(vec![1.0], 0));
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn non_positive_learning_rate_panics() {
        let _ = ParameterServer::new(vec![0.0], FedAvg::new(), 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "aggregation parameter K must be positive")]
    fn zero_k_panics() {
        let _ = ParameterServer::new(vec![0.0], FedAvg::new(), 0.1, 0);
    }
}
