//! Controlled-staleness asynchronous training simulation (§3.2).
//!
//! The paper evaluates AdaSGD against DynSGD/FedAvg/SSGD by *controlling* the
//! staleness of worker updates: each gradient applied at global step `t` with
//! staleness `τ` was computed against the model as it was at step `t − τ`,
//! where `τ` is drawn from a Gaussian (D1 = N(6,2), D2 = N(12,4)) or forced
//! for specific classes (the long-tail experiment of Fig. 9). The simulation
//! keeps a bounded history of past model versions so the gradient can be
//! computed against exactly the right snapshot.
//!
//! # Fault injection
//!
//! A [`FaultPlan`] on the config turns the simulation into a deterministic
//! chaos harness: requests are dropped before the worker computes, uploaded
//! results are dropped, duplicated or delayed (stragglers), and workers
//! crash-restart, losing their in-flight uploads. Every planned task carries
//! a server-issued lease in a [`TaskTable`]; results ship through the v3 wire
//! codec with their task id and are classified on delivery — duplicates and
//! expired leases never touch the model. Fault decisions are pure hashes of
//! `(seed, round, worker)`, so they consume no RNG stream: a run under
//! [`FaultPlan::none`] is byte-identical to a run without the fault layer,
//! and a faulty run is bit-stable across thread counts and SIMD modes.
//!
//! # Checkpoint / restore
//!
//! [`AsyncSimulation::run_until`] stops after a prefix of the configured
//! steps and returns a [`SimulationCheckpoint`] capturing every piece of
//! mutable state — RNG streams, server state, snapshot history, in-flight
//! delayed results, the lease table and the partial history.
//! [`AsyncSimulation::resume`] continues from it; the resumed run reproduces
//! the uninterrupted run bit for bit (the crash-restart determinism test
//! pins this).

use crate::faults::{FaultPlan, FaultStats, ResultFate};
use crate::protocol::{ResultDisposition, TaskResult};
use crate::tasks::{TaskTable, TaskTableState};
use crate::wire;
use bytes::Bytes;
use fleet_core::{
    Aggregator, ApplyMode, ConfigError, CoreConfig, ParameterServer, ParameterServerState,
    WorkerUpdate,
};
use fleet_data::partition::UserPartition;
use fleet_data::sampling::MiniBatchSampler;
use fleet_data::{Dataset, LabelDistribution};
use fleet_dp::GaussianMechanism;
use fleet_ml::metrics::{accuracy, class_accuracy};
use fleet_ml::Sequential;
use fleet_telemetry::{Counter, TelemetryHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Distribution the per-update staleness is drawn from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StalenessDistribution {
    /// No staleness (the synchronous SSGD baseline).
    None,
    /// A fixed staleness for every update.
    Constant(u64),
    /// Gaussian staleness (rounded and clamped at zero), the paper's D1/D2.
    Gaussian {
        /// Mean staleness μ.
        mean: f64,
        /// Standard deviation σ.
        std: f64,
    },
}

impl StalenessDistribution {
    /// The paper's D1 = N(6, 2).
    pub fn d1() -> Self {
        StalenessDistribution::Gaussian {
            mean: 6.0,
            std: 2.0,
        }
    }

    /// The paper's D2 = N(12, 4).
    pub fn d2() -> Self {
        StalenessDistribution::Gaussian {
            mean: 12.0,
            std: 4.0,
        }
    }

    fn sample(&self, rng: &mut StdRng) -> u64 {
        match *self {
            StalenessDistribution::None => 0,
            StalenessDistribution::Constant(v) => v,
            StalenessDistribution::Gaussian { mean, std } => {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (mean + std * z).round().max(0.0) as u64
            }
        }
    }
}

/// Configuration of one asynchronous training run.
///
/// The learning-rate / K / shards / apply-mode cluster lives in the embedded
/// [`CoreConfig`] (shared with the FLeet server and the load harness);
/// [`SimulationConfig::builder`] flattens those knobs. The engine ignores
/// `core.max_pending` — the simulation has no admission layer to shed load.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// The shared core knobs: learning rate γ, aggregation parameter K,
    /// shard count and apply mode.
    pub core: CoreConfig,
    /// Number of global model updates (steps).
    pub steps: usize,
    /// Mini-batch size per learning task (the paper uses 100).
    pub batch_size: usize,
    /// Staleness distribution of worker updates.
    pub staleness: StalenessDistribution,
    /// Forces the staleness of every task whose mini-batch contains the given
    /// class to the given value (the Fig. 9 long-tail straggler setup).
    pub class_straggler: Option<(usize, u64)>,
    /// Differential-privacy noise: `(clip_norm, noise_multiplier)`; `None`
    /// disables the Gaussian mechanism.
    pub dp: Option<(f32, f32)>,
    /// Evaluate the model on the test set every this many steps.
    pub eval_every: usize,
    /// Number of test examples used per evaluation (caps evaluation cost).
    pub eval_examples: usize,
    /// Track the accuracy of this class separately (Fig. 9a).
    pub track_class: Option<usize>,
    /// In per-shard mode, flush one shard (round-robin) after the first
    /// submission of every `flush_every`-th round — a deterministic stand-in
    /// for the divergent shard cadences a deployed scheduler would produce
    /// under uneven load, which is what makes the vector clock actually
    /// diverge in a simulation whose submissions all span the full model.
    /// `0` disables; ignored in lockstep mode. Needs `aggregation_k ≥ 2` to
    /// have any effect (with K = 1 nothing is ever pending to flush).
    pub flush_every: usize,
    /// The fault-injection schedule. [`FaultPlan::none`] (the default) is
    /// byte-identical to running without the fault layer; fault decisions
    /// are stateless hashes, so they never perturb the RNG streams.
    pub faults: FaultPlan,
    /// RNG seed for user selection, mini-batch sampling and staleness.
    pub seed: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            core: CoreConfig::default(),
            steps: 500,
            batch_size: 100,
            staleness: StalenessDistribution::d1(),
            class_straggler: None,
            dp: None,
            eval_every: 50,
            eval_examples: 512,
            track_class: None,
            flush_every: 0,
            faults: FaultPlan::none(),
            seed: 0,
        }
    }
}

impl SimulationConfig {
    /// A builder over the defaults.
    pub fn builder() -> SimulationConfigBuilder {
        SimulationConfigBuilder {
            config: SimulationConfig::default(),
        }
    }

    /// A builder seeded from this configuration.
    pub fn to_builder(&self) -> SimulationConfigBuilder {
        SimulationConfigBuilder {
            config: self.clone(),
        }
    }

    /// Checks the combined invariants (core cluster plus the simulation
    /// knobs) and returns the first violation.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.core.validate()?;
        if self.steps == 0 {
            return Err(ConfigError::ZeroSteps);
        }
        if self.batch_size == 0 {
            return Err(ConfigError::ZeroBatchSize);
        }
        if self.eval_every == 0 {
            return Err(ConfigError::ZeroEvalEvery);
        }
        if self.flush_every > 0 && self.core.apply_mode == ApplyMode::Lockstep {
            return Err(ConfigError::LockstepFlush {
                flush_every: self.flush_every,
            });
        }
        Ok(())
    }
}

/// Builder for [`SimulationConfig`]; `build` validates and returns a typed
/// [`ConfigError`] — e.g. [`ConfigError::LockstepFlush`] for a scripted
/// flush cadence in lockstep mode, which would silently do nothing. The
/// core-cluster setters (`learning_rate`, `aggregation_k`, `shards`,
/// `apply_mode`) are flattened into this builder.
#[derive(Debug, Clone)]
pub struct SimulationConfigBuilder {
    config: SimulationConfig,
}

impl SimulationConfigBuilder {
    /// Sets the learning rate γ.
    pub fn learning_rate(mut self, value: f32) -> Self {
        self.config.core.learning_rate = value;
        self
    }

    /// Sets the aggregation parameter K.
    pub fn aggregation_k(mut self, value: usize) -> Self {
        self.config.core.aggregation_k = value;
        self
    }

    /// Sets the parameter-server shard count.
    pub fn shards(mut self, value: usize) -> Self {
        self.config.core.shards = value;
        self
    }

    /// Sets the shard apply-scheduling mode.
    pub fn apply_mode(mut self, value: ApplyMode) -> Self {
        self.config.core.apply_mode = value;
        self
    }

    /// Replaces the whole core cluster at once.
    pub fn core(mut self, value: CoreConfig) -> Self {
        self.config.core = value;
        self
    }

    /// Sets the number of global steps.
    pub fn steps(mut self, value: usize) -> Self {
        self.config.steps = value;
        self
    }

    /// Sets the mini-batch size per learning task.
    pub fn batch_size(mut self, value: usize) -> Self {
        self.config.batch_size = value;
        self
    }

    /// Sets the staleness distribution of worker updates.
    pub fn staleness(mut self, value: StalenessDistribution) -> Self {
        self.config.staleness = value;
        self
    }

    /// Forces the staleness of tasks containing `class` to `staleness`.
    pub fn class_straggler(mut self, class: usize, staleness: u64) -> Self {
        self.config.class_straggler = Some((class, staleness));
        self
    }

    /// Enables the Gaussian DP mechanism with `(clip_norm, noise_multiplier)`.
    pub fn dp(mut self, clip_norm: f32, noise_multiplier: f32) -> Self {
        self.config.dp = Some((clip_norm, noise_multiplier));
        self
    }

    /// Sets the evaluation cadence in steps.
    pub fn eval_every(mut self, value: usize) -> Self {
        self.config.eval_every = value;
        self
    }

    /// Caps the number of test examples per evaluation.
    pub fn eval_examples(mut self, value: usize) -> Self {
        self.config.eval_examples = value;
        self
    }

    /// Tracks the accuracy of one class separately.
    pub fn track_class(mut self, class: usize) -> Self {
        self.config.track_class = Some(class);
        self
    }

    /// Sets the scripted shard-flush cadence (per-shard mode only).
    pub fn flush_every(mut self, value: usize) -> Self {
        self.config.flush_every = value;
        self
    }

    /// Sets the fault-injection schedule.
    pub fn faults(mut self, value: FaultPlan) -> Self {
        self.config.faults = value;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, value: u64) -> Self {
        self.config.seed = value;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<SimulationConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// One evaluation point of a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalPoint {
    /// Global step at which the evaluation happened.
    pub step: usize,
    /// Top-1 accuracy on the (capped) test set.
    pub accuracy: f32,
    /// Accuracy restricted to the tracked class, if configured.
    pub class_accuracy: Option<f32>,
}

/// The result of a training run.
///
/// `PartialEq` compares bit-for-bit (accuracies and scaling factors), which
/// is what the reproducibility tests rely on: two runs with the same seed
/// must produce equal histories, parallel or not.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainingHistory {
    /// Name of the aggregation algorithm that produced this history.
    pub algorithm: &'static str,
    /// Evaluation points, in step order.
    pub evals: Vec<EvalPoint>,
    /// The weight attached to every applied gradient, in submission order.
    pub scaling_factors: Vec<f64>,
    /// What the fault plan injected and how deliveries were classified.
    /// All-zero except `applied` under [`FaultPlan::none`].
    pub faults: FaultStats,
}

impl TrainingHistory {
    /// The last recorded accuracy (0.0 when no evaluation happened).
    pub fn final_accuracy(&self) -> f32 {
        self.evals.last().map(|e| e.accuracy).unwrap_or(0.0)
    }

    /// The first step at which the accuracy reached `target`, if any.
    pub fn steps_to_accuracy(&self, target: f32) -> Option<usize> {
        self.evals
            .iter()
            .find(|e| e.accuracy >= target)
            .map(|e| e.step)
    }

    /// The best accuracy observed during the run.
    pub fn best_accuracy(&self) -> f32 {
        self.evals.iter().map(|e| e.accuracy).fold(0.0, f32::max)
    }
}

/// Everything mutable about a run in flight, captured between rounds.
///
/// `PartialEq` compares bit-for-bit; a checkpoint taken at step `s` of a run
/// equals the checkpoint taken at step `s` of any replay of that run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationCheckpoint {
    /// The next step to execute.
    pub step: usize,
    /// State of the planning RNG.
    pub rng_state: u64,
    /// State of the mini-batch sampler's RNG.
    pub sampler_state: u64,
    /// State of the DP mechanism's RNG, if DP is enabled.
    pub dp_state: Option<u64>,
    /// Full parameter-server state (parameters, pending buffers, clocks,
    /// aggregator).
    pub server: ParameterServerState,
    /// The bounded snapshot history, oldest first.
    pub history: Vec<Vec<f32>>,
    /// The shard vector clock at each snapshot (per-shard mode; empty in
    /// lockstep).
    pub clock_history: Vec<Vec<u64>>,
    /// The lease table.
    pub tasks: TaskTableState,
    /// In-flight delayed results as `(due_step, sequence, worker, encoded
    /// wire bytes)`.
    pub delayed: Vec<(u64, u64, u64, Vec<u8>)>,
    /// Next delayed-result sequence number.
    pub next_seq: u64,
    /// Evaluation points recorded so far.
    pub evals: Vec<EvalPoint>,
    /// Scaling factors recorded so far.
    pub scaling_factors: Vec<f64>,
    /// Fault counters so far.
    pub faults: FaultStats,
}

/// One pre-sampled worker task of an aggregation round: everything phase 2
/// needs to compute the gradient without touching the (serial) RNG streams.
#[derive(Debug)]
struct PlannedTask {
    user: usize,
    inputs: fleet_ml::Tensor,
    labels: Vec<usize>,
    staleness: u64,
    snapshot_index: usize,
    /// The leased task id; `None` when the fault plan dropped the request
    /// (the worker never received an assignment that round).
    task_id: Option<u64>,
}

/// A result held back by the fault plan, delivered at a later round start.
#[derive(Debug)]
struct DelayedResult {
    due_step: u64,
    seq: u64,
    worker: u64,
    bytes: Vec<u8>,
}

/// The asynchronous training simulation engine.
#[derive(Debug)]
pub struct AsyncSimulation<'a> {
    train: &'a Dataset,
    test: &'a Dataset,
    users: &'a UserPartition,
    config: SimulationConfig,
    /// Where round/delivery events are reported; disabled by default.
    telemetry: TelemetryHandle,
}

/// The mutable state of a run in flight (see the phase comments in
/// [`Engine::round`]). Extracted from the former monolithic `run` loop so
/// checkpoint/restore can capture and rebuild it between rounds.
struct Engine<'s, 'a, A: Aggregator> {
    sim: &'s AsyncSimulation<'a>,
    rng: StdRng,
    sampler: MiniBatchSampler,
    dp: Option<GaussianMechanism>,
    server: ParameterServer<A>,
    per_shard: bool,
    max_history: usize,
    history: VecDeque<Vec<f32>>,
    clock_history: VecDeque<Vec<u64>>,
    tasks_table: TaskTable,
    delayed: Vec<DelayedResult>,
    next_seq: u64,
    result: TrainingHistory,
    eval_inputs: fleet_ml::Tensor,
    eval_labels: Vec<usize>,
}

impl<'s, 'a, A: Aggregator> Engine<'s, 'a, A> {
    fn new(sim: &'s AsyncSimulation<'a>, model: &Sequential, aggregator: A) -> Self {
        let cfg = &sim.config;
        let algorithm = aggregator.name();
        let server = ParameterServer::new(
            model.parameters(),
            aggregator,
            cfg.core.learning_rate,
            cfg.core.aggregation_k,
        )
        .with_shards(cfg.core.shards.max(1))
        .with_apply_mode(cfg.core.apply_mode);
        let per_shard = cfg.core.apply_mode == ApplyMode::PerShard;

        // Bounded history of past parameter snapshots; index 0 is the oldest.
        let max_history = sim.max_history();
        let mut history: VecDeque<Vec<f32>> = VecDeque::with_capacity(max_history);
        history.push_back(server.parameters().to_vec());
        // In per-shard mode, the shard vector clock at each snapshot — what a
        // worker pulling that snapshot observed, kept index-aligned with
        // `history` so the read clock ships with the gradient.
        let mut clock_history: VecDeque<Vec<u64>> = VecDeque::new();
        if per_shard {
            clock_history.push_back(server.shard_clocks());
        }

        let (eval_inputs, eval_labels) = sim.eval_batch();
        Self {
            sim,
            rng: StdRng::seed_from_u64(cfg.seed),
            sampler: MiniBatchSampler::new(cfg.seed.wrapping_add(1)),
            dp: cfg
                .dp
                .map(|(clip, sigma)| GaussianMechanism::new(clip, sigma, cfg.seed.wrapping_add(2))),
            server,
            per_shard,
            max_history,
            history,
            clock_history,
            tasks_table: TaskTable::new(),
            delayed: Vec::new(),
            next_seq: 0,
            result: TrainingHistory {
                algorithm,
                ..TrainingHistory::default()
            },
            eval_inputs,
            eval_labels,
        }
    }

    fn from_checkpoint(
        sim: &'s AsyncSimulation<'a>,
        aggregator: A,
        checkpoint: &SimulationCheckpoint,
    ) -> Self {
        let cfg = &sim.config;
        let algorithm = aggregator.name();
        let mut server = ParameterServer::new(
            checkpoint.server.parameters.clone(),
            aggregator,
            cfg.core.learning_rate,
            cfg.core.aggregation_k,
        )
        .with_shards(cfg.core.shards.max(1))
        .with_apply_mode(cfg.core.apply_mode);
        server.restore_state(checkpoint.server.clone());

        let (eval_inputs, eval_labels) = sim.eval_batch();
        Self {
            sim,
            rng: StdRng::from_state(checkpoint.rng_state),
            sampler: MiniBatchSampler::from_rng_state(checkpoint.sampler_state),
            dp: cfg.dp.map(|(clip, sigma)| {
                let state = checkpoint
                    .dp_state
                    .expect("a checkpoint of a DP run records the DP RNG state");
                GaussianMechanism::from_rng_state(clip, sigma, state)
            }),
            server,
            per_shard: cfg.core.apply_mode == ApplyMode::PerShard,
            max_history: sim.max_history(),
            history: checkpoint.history.iter().cloned().collect(),
            clock_history: checkpoint.clock_history.iter().cloned().collect(),
            tasks_table: TaskTable::from_state(checkpoint.tasks.clone()),
            delayed: checkpoint
                .delayed
                .iter()
                .map(|(due_step, seq, worker, bytes)| DelayedResult {
                    due_step: *due_step,
                    seq: *seq,
                    worker: *worker,
                    bytes: bytes.clone(),
                })
                .collect(),
            next_seq: checkpoint.next_seq,
            result: TrainingHistory {
                algorithm,
                evals: checkpoint.evals.clone(),
                scaling_factors: checkpoint.scaling_factors.clone(),
                faults: checkpoint.faults,
            },
            eval_inputs,
            eval_labels,
        }
    }

    fn checkpoint(&self, next_step: usize) -> SimulationCheckpoint {
        SimulationCheckpoint {
            step: next_step,
            rng_state: self.rng.state(),
            sampler_state: self.sampler.rng_state(),
            dp_state: self.dp.as_ref().map(|m| m.rng_state()),
            server: self.server.export_state(),
            history: self.history.iter().cloned().collect(),
            clock_history: self.clock_history.iter().cloned().collect(),
            tasks: self.tasks_table.export_state(),
            delayed: self
                .delayed
                .iter()
                .map(|d| (d.due_step, d.seq, d.worker, d.bytes.clone()))
                .collect(),
            next_seq: self.next_seq,
            evals: self.result.evals.clone(),
            scaling_factors: self.result.scaling_factors.clone(),
            faults: self.result.faults,
        }
    }

    /// Delivers one encoded result to the server: decode, classify against
    /// the lease table, and submit only `Applied` results. Duplicates and
    /// expired leases bump their counters and never touch the model.
    fn deliver(&mut self, bytes: Bytes, was_delayed: bool) {
        let decoded =
            wire::decode_result(bytes).expect("self-encoded worker results always decode");
        let task_id = decoded
            .task_id
            .expect("simulation results always carry a task id");
        match self.tasks_table.classify(task_id, decoded.worker_id) {
            ResultDisposition::Applied => {
                // Staleness as the server derives it in the real protocol:
                // clock now minus the model version the gradient was computed
                // on. For immediate deliveries within a round the clock is
                // constant (the model only updates on the round's last
                // submission), so this equals the planned staleness exactly;
                // delayed deliveries naturally pick up the rounds they spent
                // in flight.
                let staleness = self.server.clock() - decoded.model_version;
                let mut update = WorkerUpdate::new(
                    decoded.gradient,
                    staleness,
                    decoded.label_distribution,
                    decoded.num_samples,
                    decoded.worker_id,
                );
                update.read_clock = decoded.read_clock;
                let applied_before = if self.sim.telemetry.is_enabled() {
                    self.server.shard_applied_counts()
                } else {
                    Vec::new()
                };
                let outcome = self.server.submit(update);
                if let Some(sink) = self.sim.telemetry.get() {
                    sink.add(Counter::Results, 1);
                    sink.add(Counter::Applied, 1);
                    if outcome.applied {
                        sink.add(Counter::ModelUpdates, 1);
                    }
                    let applied_after = self.server.shard_applied_counts();
                    for (shard, (after, before)) in
                        applied_after.iter().zip(applied_before.iter()).enumerate()
                    {
                        if after > before {
                            sink.shard_applies(shard, after - before);
                        }
                    }
                    for (shard, depth) in self.server.shard_pending_depths().iter().enumerate() {
                        sink.queue_depth(shard, *depth as u64);
                    }
                }
                self.result.scaling_factors.push(outcome.scaling_factor);
                self.result.faults.applied += 1;
                if was_delayed {
                    self.result.faults.delayed_delivered += 1;
                }
            }
            disposition => {
                if let Some(sink) = self.sim.telemetry.get() {
                    sink.add(Counter::Results, 1);
                    sink.add(
                        match disposition {
                            ResultDisposition::Duplicate => Counter::Duplicates,
                            ResultDisposition::Expired => Counter::Expired,
                            _ => Counter::Unsolicited,
                        },
                        1,
                    );
                }
                match disposition {
                    ResultDisposition::Duplicate => self.result.faults.duplicates_rejected += 1,
                    ResultDisposition::Expired => self.result.faults.expired_rejected += 1,
                    // The simulation only replays results it leased itself,
                    // so this arm is unreachable in practice; counting keeps
                    // it honest.
                    _ => self.result.faults.expired_rejected += 1,
                }
            }
        }
    }

    /// Runs one aggregation round (global step).
    fn round(&mut self, model: &mut Sequential, step: usize) {
        let cfg = &self.sim.config;
        let plan = &cfg.faults;
        let round = step as u64;

        // Phase 0 — the fault preamble. Skipped entirely under a fault-free
        // plan (nothing can be queued or expire), keeping the fast path
        // byte-identical to the pre-fault engine.
        if !plan.is_none() {
            // Deliver due delayed results in (due round, send order).
            self.delayed.sort_by_key(|d| (d.due_step, d.seq));
            let split = self.delayed.partition_point(|d| d.due_step <= round);
            let due: Vec<DelayedResult> = self.delayed.drain(..split).collect();
            for d in due {
                self.deliver(Bytes::from(d.bytes), true);
            }
            // Crash-restarts: the worker loses whatever it still had in
            // flight, then rejoins immediately.
            for worker in plan.crashes_at(round) {
                let before = self.delayed.len();
                self.delayed.retain(|d| d.worker != worker);
                self.result.faults.crash_discarded += (before - self.delayed.len()) as u64;
            }
            // Reclaim expired leases so late results classify as `Expired`.
            let _ = self.tasks_table.reclaim_expired(round);
        }

        // Phase 1 — plan the round's K worker tasks *serially*, consuming
        // the RNG streams in exactly the order the sequential engine did.
        // Within a round the server clock and the snapshot history are
        // constant (the model only updates on the K-th submission), so
        // planning commutes with gradient computation bit-for-bit. Fault
        // decisions are stateless hashes — they consume nothing.
        let clock = self.server.clock();
        let mut tasks = Vec::with_capacity(cfg.core.aggregation_k);
        for _ in 0..cfg.core.aggregation_k {
            // Pick a user with local data.
            let user = loop {
                let candidate = self.rng.gen_range(0..self.sim.users.len());
                if !self.sim.users[candidate].is_empty() {
                    break candidate;
                }
            };
            let batch_indices = self.sampler.sample(&self.sim.users[user], cfg.batch_size);
            let (inputs, labels) = self.sim.train.batch(&batch_indices);

            // Staleness: sampled, then possibly overridden for straggler classes.
            let mut staleness = cfg.staleness.sample(&mut self.rng);
            if let Some((class, forced)) = cfg.class_straggler {
                if labels.contains(&class) {
                    staleness = forced;
                }
            }
            staleness = staleness.min(clock).min(self.history.len() as u64 - 1);
            let snapshot_index = self.history.len() - 1 - staleness as usize;
            // A dropped request never reaches the server: no lease is issued
            // and the worker computes nothing that round.
            let task_id = if plan.drops_request(round, user as u64) {
                None
            } else {
                Some(
                    self.tasks_table
                        .issue(user as u64, round, plan.lease_rounds),
                )
            };
            tasks.push(PlannedTask {
                user,
                inputs,
                labels,
                staleness,
                snapshot_index,
                task_id,
            });
        }

        // Phase 2 — compute the K independent worker gradients, in
        // parallel when it pays: each worker *thread* clones one model
        // replica and reuses it across its contiguous run of tasks.
        // Gradient computation is deterministic (no RNG) and
        // compute_gradient zeroes accumulated state first, so replica
        // reuse and fan-out both preserve results bit-for-bit. (Tasks whose
        // request was dropped are computed and discarded — filtering them
        // here would complicate the fan-out for no observable difference.)
        let history = &self.history;
        let gradients: Vec<fleet_ml::Gradient> =
            if tasks.len() > 1 && fleet_parallel::max_threads() > 1 {
                let replica_of = &*model;
                fleet_parallel::parallel_map_with(
                    &tasks,
                    || replica_of.clone(),
                    |replica, task| {
                        replica
                            .set_parameters(&history[task.snapshot_index])
                            .expect("history snapshots always match the architecture");
                        let (_, gradient) = replica
                            .compute_gradient(&task.inputs, &task.labels)
                            .expect("training batches always match the architecture");
                        gradient
                    },
                )
            } else {
                tasks
                    .iter()
                    .map(|task| {
                        model
                            .set_parameters(&history[task.snapshot_index])
                            .expect("history snapshots always match the architecture");
                        let (_, gradient) = model
                            .compute_gradient(&task.inputs, &task.labels)
                            .expect("training batches always match the architecture");
                        gradient
                    })
                    .collect()
            };

        // Phase 3 — privatise (worker-side DP noise), ship each result
        // through the versioned wire codec exactly as the deployed
        // protocol does, route it through the fault plan, and submit in
        // fixed worker-index order so noise draws and aggregator state
        // updates replay identically. Serialization cost is therefore part
        // of every simulation bench.
        for (index, (task, mut gradient)) in tasks.into_iter().zip(gradients).enumerate() {
            if let Some(task_id) = task.task_id {
                if let Some(mechanism) = self.dp.as_mut() {
                    mechanism.privatize(gradient.as_mut_slice(), task.labels.len());
                }
                let task_result = TaskResult {
                    worker_id: task.user as u64,
                    // The worker pulled the model `task.staleness` updates ago
                    // (planning clamps staleness to the clock, so this cannot
                    // underflow).
                    model_version: clock - task.staleness,
                    gradient,
                    label_distribution: LabelDistribution::from_labels(
                        &task.labels,
                        self.sim.train.num_classes(),
                    ),
                    num_samples: task.labels.len(),
                    computation_seconds: 0.0,
                    energy_pct: 0.0,
                    // Per-shard mode: ship the vector clock the worker
                    // observed at its snapshot, exactly as a deployed worker
                    // echoes `TaskAssignment::shard_clocks`.
                    read_clock: self
                        .per_shard
                        .then(|| self.clock_history[task.snapshot_index].clone()),
                    task_id: Some(task_id),
                };
                let encoded = wire::encode_result(&task_result);
                match plan.result_fate(round, task.user as u64) {
                    ResultFate::Deliver => self.deliver(encoded, false),
                    ResultFate::Drop => self.result.faults.dropped_results += 1,
                    ResultFate::Duplicate => {
                        // The network delivers the same bytes twice
                        // back-to-back; dedup must reject the second copy.
                        self.deliver(encoded.clone(), false);
                        self.deliver(encoded, false);
                    }
                    ResultFate::Delay(rounds) => {
                        self.delayed.push(DelayedResult {
                            due_step: round + rounds,
                            seq: self.next_seq,
                            worker: task.user as u64,
                            bytes: encoded.to_vec(),
                        });
                        self.next_seq += 1;
                    }
                }
            } else {
                self.result.faults.dropped_requests += 1;
            }

            // The deterministic divergence schedule: after the round's
            // first task resolves (delivered or not), flush one shard
            // round-robin every `flush_every`-th round. The flushed shard
            // applies its pending run early and its clock pulls ahead — the
            // scripted stand-in for shards draining at different cadences.
            if self.per_shard
                && cfg.flush_every > 0
                && index == 0
                && (step + 1).is_multiple_of(cfg.flush_every)
            {
                let target = (step + 1) / cfg.flush_every % self.server.num_shards();
                self.server.flush_shard(target);
            }
        }

        self.history.push_back(self.server.parameters().to_vec());
        if self.per_shard {
            self.clock_history.push_back(self.server.shard_clocks());
        }
        if self.history.len() > self.max_history {
            self.history.pop_front();
            if self.per_shard {
                self.clock_history.pop_front();
            }
        }

        if (step + 1).is_multiple_of(cfg.eval_every) || step + 1 == cfg.steps {
            model
                .set_parameters(self.server.parameters())
                .expect("server parameters always match the architecture");
            let predictions = model
                .predict(&self.eval_inputs)
                .expect("evaluation batch always matches the architecture");
            self.result.evals.push(EvalPoint {
                step: step + 1,
                accuracy: accuracy(&predictions, &self.eval_labels),
                class_accuracy: cfg
                    .track_class
                    .and_then(|c| class_accuracy(&predictions, &self.eval_labels, c)),
            });
        }
        if let Some(sink) = self.sim.telemetry.get() {
            sink.add(Counter::SimRounds, 1);
        }
    }

    fn finish(self, model: &mut Sequential) -> TrainingHistory {
        model
            .set_parameters(self.server.parameters())
            .expect("server parameters always match the architecture");
        self.result
    }
}

impl<'a> AsyncSimulation<'a> {
    /// Creates a simulation over a train/test split and a user partition.
    ///
    /// # Panics
    ///
    /// Panics if the partition is empty or the config has zero steps.
    pub fn new(
        train: &'a Dataset,
        test: &'a Dataset,
        users: &'a UserPartition,
        config: SimulationConfig,
    ) -> Self {
        assert!(!users.is_empty(), "user partition must not be empty");
        assert!(config.steps > 0, "steps must be positive");
        Self {
            train,
            test,
            users,
            config,
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Installs a telemetry sink; round and delivery events from here on are
    /// reported through it. Telemetry never influences the trajectory — a
    /// run with a sink installed stays bit-identical to one without.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = telemetry;
    }

    /// Runs the simulation with the given aggregator, starting from `model`'s
    /// current parameters. The model is left holding the final parameters.
    pub fn run<A: Aggregator>(&self, model: &mut Sequential, aggregator: A) -> TrainingHistory {
        let mut engine = Engine::new(self, model, aggregator);
        for step in 0..self.config.steps {
            engine.round(model, step);
        }
        engine.finish(model)
    }

    /// Runs the first `stop_step` rounds and returns a checkpoint from which
    /// [`AsyncSimulation::resume`] reproduces the rest of the run bit for
    /// bit. The model is left holding the parameters at the stop point.
    ///
    /// # Panics
    ///
    /// Panics if `stop_step` exceeds the configured number of steps.
    pub fn run_until<A: Aggregator>(
        &self,
        model: &mut Sequential,
        aggregator: A,
        stop_step: usize,
    ) -> SimulationCheckpoint {
        assert!(
            stop_step <= self.config.steps,
            "stop step {stop_step} exceeds configured steps {}",
            self.config.steps
        );
        let mut engine = Engine::new(self, model, aggregator);
        for step in 0..stop_step {
            engine.round(model, step);
        }
        let checkpoint = engine.checkpoint(stop_step);
        engine.finish(model);
        checkpoint
    }

    /// Resumes a run from a [`SimulationCheckpoint`] — e.g. after a server
    /// crash-restart — and runs it to completion. The aggregator must be
    /// constructed with the same parameters as the original's (its mutable
    /// state is restored from the checkpoint); the resumed trajectory is
    /// bit-identical to the uninterrupted run's.
    pub fn resume<A: Aggregator>(
        &self,
        model: &mut Sequential,
        aggregator: A,
        checkpoint: &SimulationCheckpoint,
    ) -> TrainingHistory {
        let mut engine = Engine::from_checkpoint(self, aggregator, checkpoint);
        for step in checkpoint.step..self.config.steps {
            engine.round(model, step);
        }
        engine.finish(model)
    }

    /// Pre-builds the (deterministic) evaluation batch.
    fn eval_batch(&self) -> (fleet_ml::Tensor, Vec<usize>) {
        let eval_indices: Vec<usize> =
            (0..self.test.len().min(self.config.eval_examples.max(1))).collect();
        self.test.batch(&eval_indices)
    }

    fn max_history(&self) -> usize {
        let from_distribution = match self.config.staleness {
            StalenessDistribution::None => 1,
            StalenessDistribution::Constant(v) => v as usize + 1,
            StalenessDistribution::Gaussian { mean, std } => (mean + 6.0 * std).ceil() as usize + 1,
        };
        let from_straggler = self
            .config
            .class_straggler
            .map(|(_, s)| s as usize + 1)
            .unwrap_or(1);
        from_distribution.max(from_straggler).max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet_core::{AdaSgd, DynSgd, FedAvg, Ssgd};
    use fleet_data::partition::{iid_partition, non_iid_shards};
    use fleet_data::synthetic::{generate, SyntheticSpec};
    use fleet_ml::models::mlp_classifier;

    fn world() -> (Dataset, Dataset, UserPartition) {
        let data = generate(&SyntheticSpec::vector(5, 8, 600), 3);
        let (train, test) = data.split(0.2);
        let users = non_iid_shards(&train, 12, 2, 1);
        (train, test, users)
    }

    fn fast_config(staleness: StalenessDistribution) -> SimulationConfig {
        SimulationConfig {
            core: CoreConfig {
                learning_rate: 0.1,
                ..CoreConfig::default()
            },
            steps: 150,
            batch_size: 20,
            eval_every: 50,
            eval_examples: 120,
            staleness,
            seed: 9,
            ..SimulationConfig::default()
        }
    }

    #[test]
    fn ssgd_learns_on_iid_data() {
        let data = generate(&SyntheticSpec::vector(4, 6, 400), 1);
        let (train, test) = data.split(0.25);
        let users = iid_partition(&train, 8, 0);
        let sim = AsyncSimulation::new(
            &train,
            &test,
            &users,
            fast_config(StalenessDistribution::None),
        );
        let mut model = mlp_classifier(6, &[16], 4, 0);
        let history = sim.run(&mut model, Ssgd::new());
        assert_eq!(history.algorithm, "SSGD");
        assert!(
            history.final_accuracy() > 0.5,
            "accuracy {}",
            history.final_accuracy()
        );
        assert!(history.scaling_factors.iter().all(|&s| s == 1.0));
        assert_eq!(history.faults.applied, 150);
        assert_eq!(history.faults.dropped_requests, 0);
    }

    #[test]
    fn staleness_aware_beats_unaware_under_heavy_staleness() {
        let (train, test, users) = world();
        let cfg = fast_config(StalenessDistribution::Gaussian {
            mean: 10.0,
            std: 3.0,
        });
        let sim = AsyncSimulation::new(&train, &test, &users, cfg);

        let mut ada_model = mlp_classifier(8, &[16], 5, 7);
        let ada = sim.run(&mut ada_model, AdaSgd::new(5, 99.7));
        let mut fed_model = mlp_classifier(8, &[16], 5, 7);
        let fed = sim.run(&mut fed_model, FedAvg::new());
        assert!(
            ada.final_accuracy() >= fed.final_accuracy(),
            "AdaSGD {} should be at least as good as FedAvg {}",
            ada.final_accuracy(),
            fed.final_accuracy()
        );
    }

    #[test]
    fn histories_record_expected_number_of_points() {
        let (train, test, users) = world();
        let sim = AsyncSimulation::new(
            &train,
            &test,
            &users,
            fast_config(StalenessDistribution::d1()),
        );
        let mut model = mlp_classifier(8, &[16], 5, 1);
        let history = sim.run(&mut model, DynSgd::new());
        assert_eq!(history.evals.len(), 3);
        assert_eq!(history.scaling_factors.len(), 150);
        assert!(history.best_accuracy() >= history.evals[0].accuracy);
    }

    #[test]
    fn class_straggler_overrides_staleness() {
        let (train, test, users) = world();
        let mut cfg = fast_config(StalenessDistribution::Constant(2));
        cfg.class_straggler = Some((0, 30));
        cfg.track_class = Some(0);
        let sim = AsyncSimulation::new(&train, &test, &users, cfg);
        let mut model = mlp_classifier(8, &[16], 5, 2);
        let history = sim.run(&mut model, AdaSgd::new(5, 99.7));
        // Scaling factors of straggler updates are well below the constant-2
        // dampening of the others, so the distribution must be bimodal.
        let min = history
            .scaling_factors
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = history.scaling_factors.iter().cloned().fold(0.0, f64::max);
        assert!(min < 0.3 && max > 0.3, "min {min}, max {max}");
        assert!(history.evals.iter().any(|e| e.class_accuracy.is_some()));
    }

    #[test]
    fn dp_noise_slows_convergence() {
        let data = generate(&SyntheticSpec::vector(4, 6, 400), 5);
        let (train, test) = data.split(0.25);
        let users = iid_partition(&train, 8, 0);
        let mut clean_cfg = fast_config(StalenessDistribution::Constant(3));
        clean_cfg.steps = 200;
        let mut noisy_cfg = clean_cfg.clone();
        // Heavy noise (σ = 60 on a clip of 1.0 over batches of 20) keeps the
        // noisy run close to chance level while the clean run converges.
        noisy_cfg.dp = Some((1.0, 60.0));

        let sim_clean = AsyncSimulation::new(&train, &test, &users, clean_cfg);
        let sim_noisy = AsyncSimulation::new(&train, &test, &users, noisy_cfg);
        let mut m1 = mlp_classifier(6, &[16], 4, 3);
        let mut m2 = mlp_classifier(6, &[16], 4, 3);
        let clean = sim_clean.run(&mut m1, AdaSgd::new(4, 99.7));
        let noisy = sim_noisy.run(&mut m2, AdaSgd::new(4, 99.7));
        assert!(
            clean.final_accuracy() > noisy.final_accuracy() + 0.05,
            "clean {} vs noisy {}",
            clean.final_accuracy(),
            noisy.final_accuracy()
        );
    }

    #[test]
    fn same_seed_gives_identical_history() {
        // The parallel worker fan-out must keep runs bit-for-bit reproducible:
        // two runs with one seed produce equal histories and equal final
        // parameters, whatever the thread count.
        let (train, test, users) = world();
        let mut cfg = fast_config(StalenessDistribution::d1());
        cfg.core.aggregation_k = 4;
        cfg.steps = 40;
        let sim = AsyncSimulation::new(&train, &test, &users, cfg);

        let mut model_a = mlp_classifier(8, &[16], 5, 3);
        let mut model_b = mlp_classifier(8, &[16], 5, 3);
        let history_a = sim.run(&mut model_a, AdaSgd::new(5, 99.7));
        let history_b = sim.run(&mut model_b, AdaSgd::new(5, 99.7));
        assert_eq!(history_a, history_b);
        assert_eq!(model_a.parameters(), model_b.parameters());
    }

    #[test]
    fn shard_count_does_not_change_results() {
        // The sharded parameter server's determinism contract, end to end:
        // training histories and final parameters are bit-for-bit identical
        // across {1, 2, 8} shards for a fixed seed.
        let (train, test, users) = world();
        let mut histories = Vec::new();
        let mut params = Vec::new();
        for shards in [1usize, 2, 8] {
            let mut cfg = fast_config(StalenessDistribution::d1());
            cfg.core.aggregation_k = 4;
            cfg.steps = 30;
            cfg.core.shards = shards;
            let sim = AsyncSimulation::new(&train, &test, &users, cfg);
            let mut model = mlp_classifier(8, &[16], 5, 3);
            histories.push(sim.run(&mut model, AdaSgd::new(5, 99.7)));
            params.push(model.parameters());
        }
        assert_eq!(histories[0], histories[1]);
        assert_eq!(histories[0], histories[2]);
        assert_eq!(params[0], params[1]);
        assert_eq!(params[0], params[2]);
    }

    #[test]
    fn per_shard_without_flushes_matches_lockstep_bitwise() {
        // With no scripted flushes the shard clocks never diverge, every
        // per-shard τ_s equals the scalar staleness, and the whole engine —
        // vector clocks through the wire codec included — reproduces the
        // lockstep run bit for bit.
        let (train, test, users) = world();
        let mut runs = Vec::new();
        for mode in [ApplyMode::Lockstep, ApplyMode::PerShard] {
            let mut cfg = fast_config(StalenessDistribution::d1());
            cfg.core.aggregation_k = 4;
            cfg.steps = 30;
            cfg.core.shards = 4;
            cfg.core.apply_mode = mode;
            let sim = AsyncSimulation::new(&train, &test, &users, cfg);
            let mut model = mlp_classifier(8, &[16], 5, 3);
            runs.push((
                sim.run(&mut model, AdaSgd::new(5, 99.7)),
                model.parameters(),
            ));
        }
        assert_eq!(runs[0].0, runs[1].0);
        assert_eq!(runs[0].1, runs[1].1);
    }

    #[test]
    fn per_shard_flush_schedule_diverges_and_replays() {
        // The scripted flush schedule makes the shard clocks genuinely
        // diverge — the per-shard run must differ from lockstep — while
        // staying bit-for-bit reproducible for the fixed seed.
        let (train, test, users) = world();
        let run = |mode: ApplyMode, flush_every: usize| {
            let mut cfg = fast_config(StalenessDistribution::d1());
            cfg.core.aggregation_k = 4;
            cfg.steps = 30;
            cfg.core.shards = 4;
            cfg.core.apply_mode = mode;
            cfg.flush_every = flush_every;
            let sim = AsyncSimulation::new(&train, &test, &users, cfg);
            let mut model = mlp_classifier(8, &[16], 5, 3);
            (
                sim.run(&mut model, AdaSgd::new(5, 99.7)),
                model.parameters(),
            )
        };
        let lockstep = run(ApplyMode::Lockstep, 0);
        let a = run(ApplyMode::PerShard, 2);
        let b = run(ApplyMode::PerShard, 2);
        assert_eq!(a, b, "per-shard runs must replay exactly");
        assert_ne!(
            a.1, lockstep.1,
            "flush-diverged shard clocks must change the trajectory"
        );
    }

    #[test]
    fn dp_runs_are_reproducible_too() {
        // DP noise is drawn in the ordered apply phase; it must replay.
        let (train, test, users) = world();
        let mut cfg = fast_config(StalenessDistribution::Constant(2));
        cfg.core.aggregation_k = 3;
        cfg.steps = 30;
        cfg.dp = Some((1.0, 0.5));
        let sim = AsyncSimulation::new(&train, &test, &users, cfg);
        let mut m1 = mlp_classifier(8, &[16], 5, 4);
        let mut m2 = mlp_classifier(8, &[16], 5, 4);
        assert_eq!(
            sim.run(&mut m1, DynSgd::new()),
            sim.run(&mut m2, DynSgd::new())
        );
    }

    #[test]
    fn staleness_distribution_samples_are_sane() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = StalenessDistribution::d2();
        let samples: Vec<u64> = (0..2000).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((mean - 12.0).abs() < 1.0, "mean {mean}");
        assert_eq!(StalenessDistribution::None.sample(&mut rng), 0);
        assert_eq!(StalenessDistribution::Constant(7).sample(&mut rng), 7);
    }

    #[test]
    fn chaos_plan_fires_and_replays_exactly() {
        // A faulty run must (a) actually inject every fault class, (b) be
        // bit-for-bit reproducible, and (c) differ from the clean run.
        let (train, test, users) = world();
        let mut cfg = fast_config(StalenessDistribution::d1());
        cfg.core.aggregation_k = 4;
        cfg.steps = 40;
        cfg.faults = FaultPlan::chaos(7);
        let sim = AsyncSimulation::new(&train, &test, &users, cfg.clone());

        let mut m1 = mlp_classifier(8, &[16], 5, 3);
        let mut m2 = mlp_classifier(8, &[16], 5, 3);
        let a = sim.run(&mut m1, AdaSgd::new(5, 99.7));
        let b = sim.run(&mut m2, AdaSgd::new(5, 99.7));
        assert_eq!(a, b, "faulty runs must replay exactly");
        assert_eq!(m1.parameters(), m2.parameters());

        let stats = a.faults;
        assert!(stats.dropped_requests > 0, "{stats:?}");
        assert!(stats.dropped_results > 0, "{stats:?}");
        assert!(stats.duplicates_rejected > 0, "{stats:?}");
        assert!(stats.delayed_delivered > 0, "{stats:?}");
        assert!(stats.applied > 0, "{stats:?}");
        // Every duplicated delivery was rejected exactly once: applied
        // submissions equal the scaling factors recorded.
        assert_eq!(stats.applied as usize, a.scaling_factors.len());

        let mut clean_cfg = cfg;
        clean_cfg.faults = FaultPlan::none();
        let clean_sim = AsyncSimulation::new(&train, &test, &users, clean_cfg);
        let mut m3 = mlp_classifier(8, &[16], 5, 3);
        clean_sim.run(&mut m3, AdaSgd::new(5, 99.7));
        assert_ne!(
            m1.parameters(),
            m3.parameters(),
            "the chaos plan must perturb the trajectory"
        );
    }

    #[test]
    fn zero_fault_plan_is_byte_identical_to_no_fault_layer() {
        // FaultPlan::none() must not perturb anything: same history, same
        // parameters as the default config (which is FaultPlan::none() —
        // this guards the invariant that fault decisions consume no RNG).
        let (train, test, users) = world();
        let mut cfg = fast_config(StalenessDistribution::d1());
        cfg.core.aggregation_k = 4;
        cfg.steps = 30;
        let mut explicit = cfg.clone();
        explicit.faults = FaultPlan::none();

        let sim_a = AsyncSimulation::new(&train, &test, &users, cfg);
        let sim_b = AsyncSimulation::new(&train, &test, &users, explicit);
        let mut m1 = mlp_classifier(8, &[16], 5, 3);
        let mut m2 = mlp_classifier(8, &[16], 5, 3);
        let a = sim_a.run(&mut m1, AdaSgd::new(5, 99.7));
        let b = sim_b.run(&mut m2, AdaSgd::new(5, 99.7));
        assert_eq!(a, b);
        assert_eq!(m1.parameters(), m2.parameters());
    }

    #[test]
    fn checkpoint_resume_reproduces_the_uninterrupted_run() {
        // Crash-restart recovery: stop at a flush boundary, rebuild the
        // engine from the checkpoint, and the resumed run must match the
        // uninterrupted one bit for bit — under faults and DP no less.
        let (train, test, users) = world();
        let mut cfg = fast_config(StalenessDistribution::d1());
        cfg.core.aggregation_k = 4;
        cfg.steps = 40;
        cfg.core.shards = 4;
        cfg.core.apply_mode = ApplyMode::PerShard;
        cfg.flush_every = 2;
        cfg.dp = Some((1.0, 0.5));
        cfg.faults = FaultPlan::chaos(3);
        let sim = AsyncSimulation::new(&train, &test, &users, cfg);

        let mut uninterrupted_model = mlp_classifier(8, &[16], 5, 3);
        let uninterrupted = sim.run(&mut uninterrupted_model, AdaSgd::new(5, 99.7));

        let mut model = mlp_classifier(8, &[16], 5, 3);
        let checkpoint = sim.run_until(&mut model, AdaSgd::new(5, 99.7), 20);
        // Simulate the crash: a fresh model, a fresh aggregator, state only
        // from the checkpoint.
        let mut restored_model = mlp_classifier(8, &[16], 5, 99);
        let resumed = sim.resume(&mut restored_model, AdaSgd::new(5, 99.7), &checkpoint);
        assert_eq!(resumed, uninterrupted);
        assert_eq!(
            restored_model.parameters(),
            uninterrupted_model.parameters()
        );
    }

    #[test]
    fn checkpoints_are_reproducible() {
        let (train, test, users) = world();
        let mut cfg = fast_config(StalenessDistribution::d1());
        cfg.core.aggregation_k = 3;
        cfg.steps = 30;
        cfg.faults = FaultPlan::chaos(11);
        let sim = AsyncSimulation::new(&train, &test, &users, cfg);
        let mut m1 = mlp_classifier(8, &[16], 5, 3);
        let mut m2 = mlp_classifier(8, &[16], 5, 3);
        let a = sim.run_until(&mut m1, AdaSgd::new(5, 99.7), 17);
        let b = sim.run_until(&mut m2, AdaSgd::new(5, 99.7), 17);
        assert_eq!(a, b);
        assert!(a.step == 17);
    }

    #[test]
    fn adasgd_absorbs_chaos_churn() {
        // The Fig. 8-style robustness claim under churn: with 10% dropped
        // requests, 10% dropped results, 5% duplicates and 5% stragglers,
        // AdaSGD's staleness dampening keeps the final accuracy within a
        // modest margin of the fault-free run.
        let (train, test, users) = world();
        let mut cfg = fast_config(StalenessDistribution::d1());
        cfg.core.aggregation_k = 4;
        cfg.steps = 150;
        let mut chaos_cfg = cfg.clone();
        chaos_cfg.faults = FaultPlan::chaos(5);

        let clean_sim = AsyncSimulation::new(&train, &test, &users, cfg);
        let chaos_sim = AsyncSimulation::new(&train, &test, &users, chaos_cfg);
        let mut m1 = mlp_classifier(8, &[16], 5, 3);
        let mut m2 = mlp_classifier(8, &[16], 5, 3);
        let clean = clean_sim.run(&mut m1, AdaSgd::new(5, 99.7));
        let chaos = chaos_sim.run(&mut m2, AdaSgd::new(5, 99.7));
        assert!(
            chaos.final_accuracy() >= clean.final_accuracy() - 0.12,
            "chaos {} vs clean {}",
            chaos.final_accuracy(),
            clean.final_accuracy()
        );
    }

    #[test]
    fn duplicates_never_advance_the_clock() {
        // Satellite: for any fault plan, what the model sees equals the
        // applied-once schedule — `applied` (the dedup-surviving deliveries)
        // exactly matches the scaling factors and the server clock the
        // history reflects; duplicate copies contribute nothing.
        let (train, test, users) = world();
        for seed in [1u64, 2, 3] {
            let mut cfg = fast_config(StalenessDistribution::d1());
            cfg.core.aggregation_k = 4;
            cfg.steps = 30;
            let mut plan = FaultPlan::chaos(seed);
            // Exaggerate duplication so the test bites.
            plan.duplicate_result = 0.5;
            plan.drop_result = 0.0;
            plan.drop_request = 0.0;
            plan.delay_result = 0.0;
            plan.crash_restarts.clear();
            cfg.faults = plan;
            let sim = AsyncSimulation::new(&train, &test, &users, cfg);
            let mut model = mlp_classifier(8, &[16], 5, 3);
            let history = sim.run(&mut model, AdaSgd::new(5, 99.7));
            let stats = history.faults;
            assert!(stats.duplicates_rejected > 0, "{stats:?}");
            // Every result was delivered at least once and duplicates were
            // all rejected: applied == planned tasks, scaling factors match.
            assert_eq!(stats.applied, 30 * 4);
            assert_eq!(history.scaling_factors.len(), 30 * 4);
            assert_eq!(
                stats.applied + stats.duplicates_rejected,
                30 * 4 + stats.duplicates_rejected
            );
        }
    }
}
