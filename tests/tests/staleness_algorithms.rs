//! Cross-crate integration tests of the staleness-aware learning algorithms
//! under the asynchronous simulation engine (the §3.2 experiments at test
//! scale), and of the per-shard vector-clock staleness attribution.

use fleet_core::{AdaSgd, ApplyMode, DynSgd, FedAvg, ParameterServer, Ssgd, WorkerUpdate};
use fleet_server::{AsyncSimulation, SimulationConfig, StalenessDistribution, TrainingHistory};
use fleet_tests::{small_model, small_world};

fn run_with(
    staleness: StalenessDistribution,
    steps: usize,
    run: impl FnOnce(&AsyncSimulation) -> TrainingHistory,
) -> TrainingHistory {
    let (train, test, users) = small_world(2000, 40, 11);
    let config = SimulationConfig::builder()
        .steps(steps)
        .learning_rate(0.05)
        .batch_size(40)
        .staleness(staleness)
        .eval_every(steps / 4)
        .eval_examples(400)
        .seed(21)
        .build()
        .expect("staleness config is valid");
    let sim = AsyncSimulation::new(&train, &test, &users, config);
    run(&sim)
}

#[test]
fn synchronous_baseline_converges() {
    let history = run_with(StalenessDistribution::None, 500, |sim| {
        sim.run(&mut small_model(1), Ssgd::new())
    });
    assert!(
        history.best_accuracy() > 0.45,
        "SSGD should converge, got {}",
        history.best_accuracy()
    );
}

#[test]
fn staleness_hurts_but_dampening_helps() {
    let heavy = StalenessDistribution::Gaussian {
        mean: 12.0,
        std: 4.0,
    };
    let steps = 500;
    let ssgd = run_with(StalenessDistribution::None, steps, |sim| {
        sim.run(&mut small_model(1), Ssgd::new())
    });
    let ada = run_with(heavy, steps, |sim| {
        sim.run(&mut small_model(1), AdaSgd::new(10, 99.7))
    });
    let fed = run_with(heavy, steps, |sim| {
        sim.run(&mut small_model(1), FedAvg::new())
    });

    // The ideal staleness-free run is the upper bound.
    assert!(ssgd.best_accuracy() >= ada.best_accuracy() - 0.05);
    // The staleness-aware algorithm should not be (meaningfully) worse than
    // the unaware one.
    assert!(
        ada.best_accuracy() >= fed.best_accuracy() - 0.05,
        "AdaSGD {} vs FedAvg {}",
        ada.best_accuracy(),
        fed.best_accuracy()
    );
}

/// Per-shard staleness regression: a scripted schedule in which two shards
/// diverge by more than one clock tick must produce per-shard τ values (and
/// dampening weights) that differ from the lockstep run — asserted exactly.
#[test]
fn per_shard_staleness_diverges_from_lockstep_exactly() {
    use fleet_data::LabelDistribution;
    use fleet_ml::Gradient;

    let update = |staleness: u64| {
        WorkerUpdate::new(
            Gradient::from_vec(vec![1.0; 4]),
            staleness,
            LabelDistribution::uniform(4),
            10,
            0,
        )
    };
    let make = |mode: ApplyMode| {
        ParameterServer::new(vec![0.0; 4], DynSgd::new(), 1.0, 3)
            .with_shards(2)
            .with_apply_mode(mode)
    };

    // The scripted schedule: three submissions, all computed against the
    // same read snapshot (vector clock [0, 0]); shard 0 is flushed after
    // each of the first two, so its clock runs 2 ticks ahead of shard 1's
    // by the third submission.
    let mut per_shard = make(ApplyMode::PerShard);
    per_shard.submit(update(0).with_read_clock(vec![0, 0]));
    per_shard.flush_shard(0);
    per_shard.submit(update(0).with_read_clock(vec![0, 0]));
    per_shard.flush_shard(0);
    assert_eq!(per_shard.shard_clocks(), vec![2, 0], "diverged by 2 ticks");
    per_shard.submit(update(0).with_read_clock(vec![0, 0]));

    // Per-shard τ at the third submission: shard 0 applied twice since the
    // read, shard 1 never. DynSGD weights are exactly 1/(τ_s + 1).
    assert_eq!(per_shard.last_shard_staleness(), &[2, 0]);
    assert_eq!(
        per_shard.last_shard_weights(),
        &[(1.0f64 / 3.0) as f32, 1.0]
    );

    // The lockstep run of the *same* submissions sees scalar staleness 0
    // everywhere: weight 1 for every gradient on every shard, applied on the
    // K=3rd submission.
    let mut lockstep = make(ApplyMode::Lockstep);
    for _ in 0..3 {
        let outcome = lockstep.submit(update(0));
        assert_eq!(outcome.applied_weight, 1.0);
    }
    assert_eq!(lockstep.parameters(), &[-3.0; 4]);

    // The per-shard trajectory differs: shard 1's range matches lockstep
    // (its clock never diverged), shard 0's does not — its second gradient
    // was dampened at τ=1 (weight 1/2) and its third (τ=2, weight 1/3) is
    // still pending at this point of the schedule.
    assert_eq!(&per_shard.parameters()[2..4], &[-3.0, -3.0]);
    assert_eq!(&per_shard.parameters()[0..2], &[-1.5, -1.5]);
    per_shard.flush();
    let expected = -1.5 - (1.0f64 / 3.0) as f32;
    assert_eq!(&per_shard.parameters()[0..2], &[expected, expected]);
    assert_ne!(per_shard.parameters(), lockstep.parameters());
}

#[test]
fn adasgd_and_dynsgd_dampen_stale_updates_differently() {
    let heavy = StalenessDistribution::Constant(24);
    let ada = run_with(heavy, 200, |sim| {
        sim.run(&mut small_model(2), AdaSgd::new(10, 99.7))
    });
    let dyn_ = run_with(heavy, 200, |sim| {
        sim.run(&mut small_model(2), DynSgd::new())
    });
    // With constant staleness 24, DynSGD's weight is exactly 1/25 once the
    // run is past its warm-up (staleness is clamped to the clock early on);
    // AdaSGD's exponential dampening plus boosting gives a different profile.
    let dyn_late = *dyn_.scaling_factors.last().unwrap();
    assert!((dyn_late - 1.0 / 25.0).abs() < 1e-9, "got {dyn_late}");
    let ada_late = *ada.scaling_factors.last().unwrap();
    assert!(ada_late > 0.0 && ada_late <= 1.0);
    assert!((ada_late - dyn_late).abs() > 1e-6);
}
