//! Quickstart: a minimal Online FL deployment with the FLeet middleware.
//!
//! Builds a small federated world (non-IID synthetic data spread over a few
//! simulated phones), runs the full request → profile → control → learn →
//! aggregate protocol for a handful of rounds and prints how the global model
//! improves.
//!
//! Run with: `cargo run -p fleet-examples --example quickstart`

use fleet_data::partition::non_iid_shards;
use fleet_data::synthetic::{generate, SyntheticSpec};
use fleet_device::profile::catalogue;
use fleet_device::Device;
use fleet_ml::metrics::accuracy;
use fleet_ml::models::mlp_classifier;
use fleet_server::protocol::TaskResponse;
use fleet_server::{FleetServer, FleetServerConfig, Worker};
use std::sync::Arc;

fn main() {
    // 1. The data: a 10-class classification task, split non-IID over 8 users.
    let dataset = Arc::new(generate(&SyntheticSpec::vector(10, 32, 2000), 7));
    let users = non_iid_shards(&dataset, 8, 2, 1);

    // 2. The global model and the FLeet server that owns it.
    let model = mlp_classifier(32, &[32], 10, 0);
    let mut server = FleetServer::new(
        model.parameters(),
        FleetServerConfig::builder()
            .num_classes(10)
            .learning_rate(0.05)
            .build()
            .expect("server config is valid"),
    );

    // 3. The workers: one simulated phone per user.
    let phones = catalogue();
    let mut workers: Vec<Worker> = users
        .into_iter()
        .enumerate()
        .map(|(i, indices)| {
            Worker::new(
                i as u64,
                Device::new(phones[i % phones.len()].clone(), i as u64),
                Arc::clone(&dataset),
                indices,
                mlp_classifier(32, &[32], 10, 0),
                42 + i as u64,
            )
        })
        .collect();

    // Evaluation helper over the whole dataset.
    let all: Vec<usize> = (0..dataset.len()).collect();
    let (eval_x, eval_y) = dataset.batch(&all);
    let mut eval_model = mlp_classifier(32, &[32], 10, 0);

    println!("round, model_updates, accuracy");
    for round in 0..20 {
        for worker in workers.iter_mut() {
            // Step 1: the worker asks for a task.
            let request = worker.request();
            // Steps 2-4: I-Prof bounds the batch, the controller admits the task.
            match server.handle_request(&request) {
                TaskResponse::Assignment(mut assignment) => {
                    // Keep the example fast: cap the workload.
                    assignment.mini_batch_size = assignment.mini_batch_size.min(64);
                    // Step 5: compute the gradient on-device and send it back.
                    let result = worker.execute(&assignment).expect("compatible model");
                    server.handle_result(result);
                }
                TaskResponse::Rejected(reason) => {
                    println!("  worker {} rejected: {:?}", worker.id(), reason);
                }
            }
        }
        eval_model
            .set_parameters(server.parameters())
            .expect("same architecture");
        let acc = accuracy(&eval_model.predict(&eval_x).expect("eval"), &eval_y);
        println!("{round}, {}, {acc:.3}", server.clock());
    }

    println!(
        "\nDone: {} model updates, {} tasks accepted, {} rejected.",
        server.clock(),
        server.controller().accepted(),
        server.controller().rejected()
    );
}
