//! Figure 10: staleness awareness with IID data — E-MNIST-like (62 classes)
//! and CIFAR-100-like (100 classes) stand-ins under D2 staleness.

use crate::experiments::common;
use crate::{ExperimentWriter, Scale};
use fleet_core::{AdaSgd, Aggregator, DynSgd, FedAvg, Ssgd};
use fleet_server::{AsyncSimulation, SimulationConfig, StalenessDistribution, TrainingHistory};

fn run_one<A: Aggregator>(
    world: &common::World,
    scale: Scale,
    staleness: StalenessDistribution,
    aggregator: A,
) -> TrainingHistory {
    let cfg = SimulationConfig::builder()
        .steps(scale.pick(400, 3000))
        .learning_rate(0.2)
        .batch_size(scale.pick(32, 100))
        .staleness(staleness)
        .eval_every(scale.pick(60, 150))
        .eval_examples(1000)
        .seed(3)
        .build()
        .expect("fig10 config is valid");
    let sim = AsyncSimulation::new(&world.train, &world.test, &world.users, cfg);
    let mut model = common::model(world.train.num_classes(), 4);
    sim.run(&mut model, aggregator)
}

/// Runs the IID comparison on the two many-class datasets.
pub fn run(scale: Scale) {
    let mut out = ExperimentWriter::new("fig10_iid_data");
    out.comment("Figure 10: staleness awareness with IID data (D2 staleness)");
    out.row("dataset,algorithm,step,accuracy");

    let datasets = [
        ("E-MNIST-like", 62usize, scale.pick(2500, 12_000)),
        ("CIFAR-100-like", 100usize, scale.pick(3000, 15_000)),
    ];
    for (name, classes, examples) in datasets {
        let world = common::many_class_iid(classes, examples, 100, 91);
        let runs = vec![
            (
                "SSGD (ideal)",
                run_one(&world, scale, StalenessDistribution::None, Ssgd::new()),
            ),
            (
                "AdaSGD",
                run_one(
                    &world,
                    scale,
                    StalenessDistribution::d2(),
                    AdaSgd::new(classes, 99.7),
                ),
            ),
            (
                "DynSGD",
                run_one(&world, scale, StalenessDistribution::d2(), DynSgd::new()),
            ),
            (
                "FedAvg",
                run_one(&world, scale, StalenessDistribution::d2(), FedAvg::new()),
            ),
        ];
        for (alg, history) in &runs {
            for e in &history.evals {
                out.row(format!("{name},{alg},{},{:.4}", e.step, e.accuracy));
            }
            out.comment(format!(
                "{name} {alg}: final={:.4}",
                history.final_accuracy()
            ));
        }
    }
    out.finish();
}
