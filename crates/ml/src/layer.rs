//! The [`Layer`] trait implemented by every building block of a
//! [`crate::model::Sequential`] model.

use crate::tensor::Tensor;
use crate::Result;

/// A differentiable layer.
///
/// A layer caches whatever it needs during [`Layer::forward`] so that the
/// following [`Layer::backward`] call can compute both the gradient with
/// respect to its input (returned) and the gradients with respect to its own
/// parameters (accumulated internally and exposed via [`Layer::gradients`]).
///
/// Layers are used exclusively through [`crate::model::Sequential`], but the
/// trait is public so that downstream users can add custom layers.
pub trait Layer: std::fmt::Debug + Send + Sync {
    /// Human-readable layer name used in model summaries.
    fn name(&self) -> &str;

    /// Runs the forward pass for a batch, caching activations for backward.
    ///
    /// # Errors
    ///
    /// Returns [`crate::MlError::ShapeMismatch`] when the input shape is not
    /// compatible with the layer.
    fn forward(&mut self, input: &Tensor) -> Result<Tensor>;

    /// Runs the backward pass, consuming the gradient with respect to the
    /// layer output and returning the gradient with respect to the input.
    /// Parameter gradients are accumulated internally.
    ///
    /// # Errors
    ///
    /// Returns [`crate::MlError::ShapeMismatch`] when `grad_output` does not
    /// match the shape produced by the preceding forward pass, or
    /// [`crate::MlError::InvalidArgument`] when called before `forward`.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// The layer's parameter tensors (possibly empty).
    fn parameters(&self) -> Vec<&Tensor>;

    /// Mutable access to the layer's parameter tensors.
    fn parameters_mut(&mut self) -> Vec<&mut Tensor>;

    /// The gradients accumulated by the latest backward pass, in the same
    /// order as [`Layer::parameters`].
    fn gradients(&self) -> Vec<&Tensor>;

    /// Resets all accumulated parameter gradients to zero.
    fn zero_gradients(&mut self);

    /// Total number of scalar parameters held by the layer.
    fn parameter_count(&self) -> usize {
        self.parameters().iter().map(|p| p.len()).sum()
    }

    /// Hands a tensor previously returned by [`Layer::forward`] back to the
    /// layer once the pipeline is done reading it, so the allocation can back
    /// the next forward pass. [`crate::model::Sequential`] calls this for
    /// every intermediate activation; layers with an output workspace
    /// (convolution, pooling, activations) reclaim the buffer, the default
    /// implementation simply drops it. Correctness never depends on this
    /// being called.
    fn recycle_output(&mut self, output: Tensor) {
        let _ = output;
    }

    /// Backward twin of [`Layer::recycle_output`]: hands a tensor previously
    /// returned by [`Layer::backward`] back to the layer once the upstream
    /// layer has consumed it, so the allocation can back the next backward
    /// pass. The default drops it; correctness never depends on this being
    /// called.
    fn recycle_grad(&mut self, grad: Tensor) {
        let _ = grad;
    }

    /// [`Layer::backward`] for the *first* layer of a model, where the
    /// returned input gradient has no consumer: layers whose input gradient
    /// is expensive (convolution: one full GEMM plus a scatter) override this
    /// to skip computing it. Parameter gradients are accumulated exactly as
    /// in [`Layer::backward`]. The default runs the full backward pass and
    /// drops the result.
    ///
    /// # Errors
    ///
    /// Same contract as [`Layer::backward`].
    fn backward_input_unneeded(&mut self, grad_output: &Tensor) -> Result<()> {
        self.backward(grad_output).map(|_| ())
    }

    /// Boxed deep clone of the layer (parameters, gradients and caches).
    ///
    /// Powers `Clone` for [`crate::model::Sequential`], which the parallel
    /// async simulation uses to hand each worker thread its own model replica.
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}
