//! Mini-batch sampling from a user's local data.
//!
//! FLeet workers sample a mini-batch of the size dictated by I-Prof from their
//! locally collected data (step 5 of Fig. 2). The sampler draws uniformly
//! with replacement when the requested size exceeds the available data, and
//! without replacement otherwise, mirroring `ξ_i` drawn uniformly from the
//! local dataset `x_i` in Eq. 3 of the paper.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Deterministic mini-batch sampler over a user's local example indices.
#[derive(Debug, Clone)]
pub struct MiniBatchSampler {
    rng: StdRng,
}

impl MiniBatchSampler {
    /// Creates a sampler seeded for reproducibility.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The raw RNG state, for checkpoint/restore of a mid-run sampler.
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Rebuilds a sampler from a state captured with
    /// [`MiniBatchSampler::rng_state`]; it continues the exact draw stream.
    pub fn from_rng_state(state: u64) -> Self {
        Self {
            rng: StdRng::from_state(state),
        }
    }

    /// Samples `batch_size` indices from `local_indices`.
    ///
    /// Sampling is without replacement while the local dataset is large
    /// enough, and with replacement otherwise. Returns an empty vector when
    /// either input is empty or zero.
    pub fn sample(&mut self, local_indices: &[usize], batch_size: usize) -> Vec<usize> {
        if local_indices.is_empty() || batch_size == 0 {
            return Vec::new();
        }
        if batch_size <= local_indices.len() {
            let mut pool = local_indices.to_vec();
            pool.shuffle(&mut self.rng);
            pool.truncate(batch_size);
            pool
        } else {
            (0..batch_size)
                .map(|_| local_indices[self.rng.gen_range(0..local_indices.len())])
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn empty_inputs_give_empty_batch() {
        let mut s = MiniBatchSampler::new(0);
        assert!(s.sample(&[], 10).is_empty());
        assert!(s.sample(&[1, 2, 3], 0).is_empty());
    }

    #[test]
    fn without_replacement_when_enough_data() {
        let mut s = MiniBatchSampler::new(1);
        let pool: Vec<usize> = (0..100).collect();
        let batch = s.sample(&pool, 50);
        assert_eq!(batch.len(), 50);
        let unique: HashSet<usize> = batch.iter().cloned().collect();
        assert_eq!(unique.len(), 50);
        assert!(batch.iter().all(|i| pool.contains(i)));
    }

    #[test]
    fn with_replacement_when_batch_exceeds_pool() {
        let mut s = MiniBatchSampler::new(2);
        let pool = vec![7, 8, 9];
        let batch = s.sample(&pool, 10);
        assert_eq!(batch.len(), 10);
        assert!(batch.iter().all(|i| pool.contains(i)));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let pool: Vec<usize> = (0..20).collect();
        let a = MiniBatchSampler::new(5).sample(&pool, 10);
        let b = MiniBatchSampler::new(5).sample(&pool, 10);
        let c = MiniBatchSampler::new(6).sample(&pool, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
