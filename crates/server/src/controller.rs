//! The controller of Fig. 2: decides whether a learning task is worth
//! executing before any energy is spent on it (§2.4, §3.5).

use crate::protocol::RejectionReason;
use serde::{Deserialize, Serialize};

/// Thresholds the controller enforces before handing out a learning task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ControllerThresholds {
    /// Minimum mini-batch size worth computing (Fig. 3 motivates this: tiny
    /// batches from weak devices add noise that can cancel the benefit of the
    /// strong ones). `0` disables the check.
    pub min_batch_size: usize,
    /// Maximum similarity (Bhattacharyya coefficient with the global label
    /// distribution) a task may have. Tasks that are *more* similar than this
    /// carry little new information and are pruned. `None` disables the check.
    pub max_similarity: Option<f32>,
}

/// The controller: applies [`ControllerThresholds`] and keeps acceptance
/// statistics (used by the A/B-style threshold tuning described in §2.4).
#[derive(Debug, Clone, Default)]
pub struct Controller {
    thresholds: ControllerThresholds,
    accepted: u64,
    rejected_size: u64,
    rejected_similarity: u64,
    rejected_overload: u64,
}

/// The controller's acceptance counters, exported for checkpointing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ControllerCounters {
    /// Accepted tasks.
    pub accepted: u64,
    /// Rejected: batch too small.
    pub rejected_size: u64,
    /// Rejected: data too similar.
    pub rejected_similarity: u64,
    /// Rejected: server overloaded (backpressure).
    pub rejected_overload: u64,
}

impl Controller {
    /// Creates a controller with the given thresholds.
    pub fn new(thresholds: ControllerThresholds) -> Self {
        Self {
            thresholds,
            ..Self::default()
        }
    }

    /// A controller that accepts everything (thresholds disabled).
    pub fn permissive() -> Self {
        Self::new(ControllerThresholds::default())
    }

    /// The active thresholds.
    pub fn thresholds(&self) -> ControllerThresholds {
        self.thresholds
    }

    /// Replaces the thresholds (the A/B procedure of §2.4 raises them
    /// gradually).
    pub fn set_thresholds(&mut self, thresholds: ControllerThresholds) {
        self.thresholds = thresholds;
    }

    /// Decides whether a task with the proposed mini-batch size and
    /// similarity should run. Returns `Ok(())` to accept or the rejection
    /// reason.
    ///
    /// # Errors
    ///
    /// Returns the [`RejectionReason`] when a threshold is violated.
    pub fn admit(&mut self, batch_size: usize, similarity: f32) -> Result<(), RejectionReason> {
        if self.thresholds.min_batch_size > 0 && batch_size < self.thresholds.min_batch_size {
            self.rejected_size += 1;
            return Err(RejectionReason::BatchTooSmall {
                proposed: batch_size,
                minimum: self.thresholds.min_batch_size,
            });
        }
        if let Some(max_sim) = self.thresholds.max_similarity {
            if similarity > max_sim {
                self.rejected_similarity += 1;
                return Err(RejectionReason::TooSimilar);
            }
        }
        self.accepted += 1;
        Ok(())
    }

    /// Number of accepted tasks.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Number of tasks rejected because the batch was too small.
    pub fn rejected_for_size(&self) -> u64 {
        self.rejected_size
    }

    /// Number of tasks rejected because the data was too similar.
    pub fn rejected_for_similarity(&self) -> u64 {
        self.rejected_similarity
    }

    /// Number of tasks shed because the server was overloaded. The overload
    /// check happens *before* admission (no point scoring a task the server
    /// cannot absorb), so the caller reports it here rather than through
    /// [`Controller::admit`].
    pub fn note_overload(&mut self) {
        self.rejected_overload += 1;
    }

    /// Number of tasks shed under overload backpressure.
    pub fn rejected_for_overload(&self) -> u64 {
        self.rejected_overload
    }

    /// Total number of rejected tasks.
    pub fn rejected(&self) -> u64 {
        self.rejected_size + self.rejected_similarity + self.rejected_overload
    }

    /// Exports the acceptance counters for checkpointing.
    pub fn counters(&self) -> ControllerCounters {
        ControllerCounters {
            accepted: self.accepted,
            rejected_size: self.rejected_size,
            rejected_similarity: self.rejected_similarity,
            rejected_overload: self.rejected_overload,
        }
    }

    /// Restores counters captured with [`Controller::counters`].
    pub fn restore_counters(&mut self, counters: ControllerCounters) {
        self.accepted = counters.accepted;
        self.rejected_size = counters.rejected_size;
        self.rejected_similarity = counters.rejected_similarity;
        self.rejected_overload = counters.rejected_overload;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permissive_controller_accepts_everything() {
        let mut c = Controller::permissive();
        assert!(c.admit(1, 1.0).is_ok());
        assert!(c.admit(0, 0.0).is_ok());
        assert_eq!(c.accepted(), 2);
        assert_eq!(c.rejected(), 0);
    }

    #[test]
    fn size_threshold_rejects_small_batches() {
        let mut c = Controller::new(ControllerThresholds {
            min_batch_size: 10,
            max_similarity: None,
        });
        assert_eq!(
            c.admit(5, 0.5),
            Err(RejectionReason::BatchTooSmall {
                proposed: 5,
                minimum: 10
            })
        );
        assert!(c.admit(10, 0.5).is_ok());
        assert_eq!(c.rejected_for_size(), 1);
    }

    #[test]
    fn similarity_threshold_rejects_redundant_tasks() {
        let mut c = Controller::new(ControllerThresholds {
            min_batch_size: 0,
            max_similarity: Some(0.9),
        });
        assert_eq!(c.admit(100, 0.95), Err(RejectionReason::TooSimilar));
        assert!(c.admit(100, 0.85).is_ok());
        assert_eq!(c.rejected_for_similarity(), 1);
    }

    #[test]
    fn thresholds_can_be_tightened_at_runtime() {
        let mut c = Controller::permissive();
        assert!(c.admit(3, 1.0).is_ok());
        c.set_thresholds(ControllerThresholds {
            min_batch_size: 5,
            max_similarity: Some(0.5),
        });
        assert!(c.admit(3, 0.4).is_err());
        assert!(c.admit(6, 0.6).is_err());
        assert!(c.admit(6, 0.4).is_ok());
        assert_eq!(c.accepted(), 2);
        assert_eq!(c.rejected(), 2);
    }

    #[test]
    fn overload_counts_as_a_rejection() {
        let mut c = Controller::permissive();
        assert!(c.admit(5, 0.1).is_ok());
        c.note_overload();
        c.note_overload();
        assert_eq!(c.rejected_for_overload(), 2);
        assert_eq!(c.rejected(), 2);
        assert_eq!(c.accepted(), 1);
    }

    #[test]
    fn counters_roundtrip_through_checkpoint() {
        let mut c = Controller::new(ControllerThresholds {
            min_batch_size: 10,
            max_similarity: Some(0.9),
        });
        let _ = c.admit(5, 0.5);
        let _ = c.admit(100, 0.95);
        let _ = c.admit(100, 0.5);
        c.note_overload();
        let counters = c.counters();
        let mut restored = Controller::new(c.thresholds());
        restored.restore_counters(counters);
        assert_eq!(restored.counters(), counters);
        assert_eq!(restored.accepted(), 1);
        assert_eq!(restored.rejected(), 3);
    }
}
