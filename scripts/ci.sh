#!/usr/bin/env bash
# CI gate for the FLeet reproduction workspace.
#
#   scripts/ci.sh           full gate: fmt, clippy, build, tier-1 tests,
#                           bench smoke writing BENCH_kernels.json and
#                           BENCH_shards.json
#   scripts/ci.sh --quick   skip the bench smoke
#
# The bench smoke keeps machine-readable perf records (BENCH_kernels.json and
# BENCH_shards.json at the repo root) so successive PRs can track the kernel
# and aggregation-throughput trajectories; timings are per-machine, so compare
# runs from the same host only.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

if [[ "${1:-}" != "--quick" ]]; then
    echo "==> bench smoke (ml_kernels -> BENCH_kernels.json)"
    FLEET_BENCH_TIME_MS="${FLEET_BENCH_TIME_MS:-200}" \
    FLEET_BENCH_JSON="$PWD/BENCH_kernels.json" \
        cargo bench --bench ml_kernels
    echo "==> wrote BENCH_kernels.json"

    echo "==> bench smoke (shards -> BENCH_shards.json)"
    FLEET_BENCH_TIME_MS="${FLEET_BENCH_TIME_MS:-200}" \
    FLEET_BENCH_JSON="$PWD/BENCH_shards.json" \
        cargo bench --bench shards
    echo "==> wrote BENCH_shards.json"
fi

echo "==> CI gate passed"
