//! Multi-process Online FL over the socket transport.
//!
//! One binary, four roles:
//!
//! * `demo` — binds a [`TransportServer`] on a Unix socket, spawns N real
//!   worker *processes*, runs R gated rounds and proves the resulting model
//!   is **bit-for-bit identical** to the same schedule run in-process. This
//!   is the reproduction's cross-process determinism claim, and its digest
//!   is pinned in `scripts/expected_digests.txt`.
//! * `worker <socket> <id> <n> <rounds>` — one worker process: waits for its
//!   globally gated turn (the server's step counter), then runs the
//!   request → execute → upload protocol over the socket.
//! * `chaos` — the fault-tolerance showcase: a worker dies mid-upload with a
//!   torn frame, a disconnected worker's lease is reclaimed and its
//!   straggler upload expired, an overloaded shard rejects on the wire, a
//!   duplicate upload is deduplicated, a garbage connection is shrugged
//!   off — and the server drains cleanly with a deterministic digest.
//! * `turn <socket> <id> [torn]` — a single worker turn over raw frames,
//!   optionally dying mid-upload (used by `chaos` as the crashing process).
//! * `kill` — the durable-recovery showcase: a *durable* server process is
//!   SIGKILLed mid-run, a second server process recovers checkpoint + journal
//!   from disk, the workers ride their retry loops across the outage, and
//!   the finished model reproduces the uninterrupted digest bit-for-bit
//!   (pinned as `chaos_kill`).
//! * `serve <socket> <dir>` — one durable server process (used by `kill` as
//!   both the victim and the survivor): binds with a write-ahead journal
//!   under `<dir>`, serves until a client requests shutdown, then drains
//!   and prints its digest.
//!
//! Run with: `cargo run -p fleet-examples --example socket_demo -- demo`

use fleet_data::partition::non_iid_shards;
use fleet_data::synthetic::{generate, SyntheticSpec};
use fleet_device::profile::catalogue;
use fleet_device::Device;
use fleet_ml::models::mlp_classifier;
use fleet_server::protocol::{RejectionReason, TaskResponse};
use fleet_server::{wire, FleetServer, FleetServerConfig, ResultDisposition, RetryPolicy, Worker};
use fleet_transport::{
    frame, ClientConfig, Endpoint, FrameKind, Stream, TransportConfig, TransportServer,
    WorkerClient, MAX_FRAME_LEN,
};
use std::io::Write as _;
use std::process::Command;
use std::sync::Arc;
use std::time::Duration;

/// The demo world: a 4-class synthetic task split non-IID over the fleet.
/// Every process rebuilds it from the same seeds, so worker `i` is the same
/// worker everywhere.
fn build_workers(count: usize) -> Vec<Worker> {
    let dataset = Arc::new(generate(&SyntheticSpec::vector(4, 6, 160), 11));
    let users = non_iid_shards(&dataset, count, 2, 12);
    let profiles = catalogue();
    users
        .into_iter()
        .enumerate()
        .map(|(i, indices)| {
            Worker::new(
                i as u64,
                Device::new(profiles[i % profiles.len()].clone(), i as u64),
                Arc::clone(&dataset),
                indices,
                mlp_classifier(6, &[8], 4, 0),
                i as u64 + 100,
            )
        })
        .collect()
}

fn model_parameters() -> Vec<f32> {
    mlp_classifier(6, &[8], 4, 0).parameters()
}

fn base_config() -> FleetServerConfig {
    FleetServerConfig::builder()
        .num_classes(4)
        .build()
        .expect("base config is valid")
}

/// FNV-1a over the parameter bit patterns: equal digests mean bit-for-bit
/// equal models.
fn digest(params: &[f32]) -> u64 {
    params.iter().fold(0xcbf29ce484222325u64, |h, p| {
        (h ^ u64::from(p.to_bits())).wrapping_mul(0x100000001b3)
    })
}

fn socket_path(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("fleet-{tag}-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn self_command(args: &[String]) -> Command {
    let mut cmd = Command::new(std::env::current_exe().expect("current exe"));
    cmd.args(args);
    cmd
}

const DEMO_WORKERS: usize = 3;
const DEMO_ROUNDS: usize = 2;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("demo") => demo(),
        Some("worker") => worker_process(&args[1..]),
        Some("chaos") => chaos(),
        Some("turn") => turn(&args[1..]),
        Some("kill") => kill(),
        Some("serve") => serve(&args[1..]),
        _ => {
            eprintln!(
                "usage: socket_demo demo|chaos|kill|worker <socket> <id> <n> <rounds> [lenient]\
                 |turn <socket> <id> [torn]|serve <socket> <dir>"
            );
            std::process::exit(2);
        }
    }
}

/// The same schedule as the socket run, entirely in-process — but routed
/// through the *wire* entry points, so the label-distribution
/// requantisation matches what the socket path decodes.
fn in_process_digest() -> u64 {
    let mut server = FleetServer::new(model_parameters(), base_config());
    let mut fleet = build_workers(DEMO_WORKERS);
    for _ in 0..DEMO_ROUNDS {
        for worker in fleet.iter_mut() {
            let response = server
                .handle_request_wire(worker.request_wire())
                .expect("self-encoded request");
            match response {
                TaskResponse::Assignment(assignment) => {
                    let raw = worker.execute_wire(&assignment).expect("execute");
                    server.handle_result_wire(raw).expect("self-encoded result");
                }
                TaskResponse::Rejected(reason) => panic!("unexpected rejection: {reason:?}"),
            }
        }
    }
    digest(server.parameters())
}

fn demo() {
    let reference = in_process_digest();
    println!("in-process reference digest: {reference:#018x}");

    let endpoint = Endpoint::uds(socket_path("demo"));
    let server = TransportServer::bind(
        &endpoint,
        FleetServer::new(model_parameters(), base_config()),
        TransportConfig::default(),
    )
    .expect("bind demo socket");
    let socket = match server.endpoint() {
        Endpoint::Uds(path) => path.display().to_string(),
        Endpoint::Tcp(addr) => addr.to_string(),
    };

    let children: Vec<std::process::Child> = (0..DEMO_WORKERS)
        .map(|id| {
            self_command(&[
                "worker".into(),
                socket.clone(),
                id.to_string(),
                DEMO_WORKERS.to_string(),
                DEMO_ROUNDS.to_string(),
            ])
            .spawn()
            .expect("spawn worker process")
        })
        .collect();
    for (id, mut child) in children.into_iter().enumerate() {
        let status = child.wait().expect("wait for worker");
        assert!(status.success(), "worker process {id} failed: {status}");
    }

    assert_eq!(server.steps(), (DEMO_WORKERS * DEMO_ROUNDS) as u64);
    let state = server.shutdown().expect("shutdown");
    let socket_digest = digest(&state.parameter_server.parameters);
    println!("socket digest: {socket_digest:#018x}");
    assert_eq!(
        socket_digest, reference,
        "the multi-process run must reproduce the in-process model bit-for-bit"
    );
    println!(
        "demo: {DEMO_WORKERS} worker processes x {DEMO_ROUNDS} rounds over uds \
         reproduced the in-process digest"
    );
}

/// One worker process. The server's step counter gates the global order:
/// worker `w` takes round `r`'s turn when exactly `r * n + w` steps have
/// completed, which makes the distributed schedule identical to the
/// in-process double loop.
fn worker_process(args: &[String]) {
    let (socket, id, n, rounds, lenient) = match args {
        [socket, id, n, rounds] => (socket, id, n, rounds, false),
        [socket, id, n, rounds, flag] if flag == "lenient" => (socket, id, n, rounds, true),
        _ => {
            eprintln!("usage: socket_demo worker <socket> <id> <n> <rounds> [lenient]");
            std::process::exit(2);
        }
    };
    let id = id.parse::<usize>().expect("worker id");
    let n = n.parse::<usize>().expect("worker count");
    let rounds = rounds.parse::<usize>().expect("round count");
    let endpoint = Endpoint::uds(socket.clone());
    // In lenient mode the server process may be SIGKILLed and restarted
    // under the worker's feet: retry patiently instead of giving up, and
    // accept `Duplicate` — the crash may land between the journal append
    // and the ack, in which case the retransmitted upload was already
    // applied before the crash.
    let mut client = if lenient {
        WorkerClient::with_config(endpoint, patient_client_config())
    } else {
        WorkerClient::new(endpoint)
    };
    let mut worker = build_workers(n).remove(id);
    for round in 0..rounds {
        let gate = (round * n + id) as u64;
        let mut polls = 0u32;
        loop {
            let steps = if lenient {
                match client.status() {
                    Ok(status) => status.steps,
                    Err(_) => 0, // server mid-restart: keep polling
                }
            } else {
                client.status().expect("status").steps
            };
            if steps >= gate {
                break;
            }
            polls += 1;
            assert!(polls < 30_000, "worker {id}: gate {gate} never arrived");
            std::thread::sleep(Duration::from_millis(2));
        }
        match client.request(&worker.request()).expect("request") {
            TaskResponse::Assignment(assignment) => {
                let result = worker.execute(&assignment).expect("execute");
                let ack = client.submit(&result).expect("submit");
                if lenient {
                    assert!(
                        matches!(
                            ack.disposition,
                            ResultDisposition::Applied | ResultDisposition::Duplicate
                        ),
                        "worker {id} round {round}: unexpected disposition {:?}",
                        ack.disposition
                    );
                } else {
                    assert_eq!(ack.disposition, ResultDisposition::Applied);
                }
            }
            TaskResponse::Rejected(reason) => panic!("worker {id} rejected: {reason:?}"),
        }
    }
}

/// A retry plan wide enough to ride out a server kill-and-restart: forty
/// attempts with backoff capped at 32 rounds of the 10 ms unit gives the
/// replacement process ten-plus seconds to come back up.
fn patient_client_config() -> ClientConfig {
    ClientConfig {
        retry: RetryPolicy {
            base_rounds: 1,
            max_backoff_rounds: 32,
            max_attempts: 40,
        },
        ..ClientConfig::default()
    }
}

/// A single worker turn over *raw frames* (no client conveniences), dying
/// mid-upload when asked to: with `torn`, only half of the result frame is
/// written before the process exits, so the server sees a connection die
/// inside a frame — the crash the reclaim path exists for.
fn turn(args: &[String]) {
    let (socket, id, torn) = match args {
        [socket, id] => (
            socket.clone(),
            id.parse::<usize>().expect("worker id"),
            false,
        ),
        [socket, id, flag] if flag == "torn" => (
            socket.clone(),
            id.parse::<usize>().expect("worker id"),
            true,
        ),
        _ => {
            eprintln!("usage: socket_demo turn <socket> <id> [torn]");
            std::process::exit(2);
        }
    };
    let endpoint = Endpoint::uds(socket);
    let mut worker = build_workers(CHAOS_WORKERS).remove(id);
    let mut stream = Stream::connect(&endpoint).expect("connect");
    frame::write_frame(
        &mut stream,
        FrameKind::Request,
        &wire::encode_request(&worker.request()).to_vec(),
    )
    .expect("send request");
    let (kind, payload) = frame::read_frame(&mut stream, MAX_FRAME_LEN).expect("response frame");
    assert_eq!(kind, FrameKind::Response);
    let assignment = match wire::decode_response(bytes::Bytes::from(payload)).expect("response") {
        TaskResponse::Assignment(assignment) => assignment,
        TaskResponse::Rejected(reason) => panic!("turn {id} rejected: {reason:?}"),
    };
    let result = worker.execute(&assignment).expect("execute");
    let payload = wire::encode_result(&result).to_vec();
    if torn {
        // Frame the result by hand and stop half way: header, kind and the
        // first half of the payload hit the wire, then the process is gone.
        let mut framed = Vec::new();
        frame::write_frame(&mut framed, FrameKind::Result, &payload).expect("frame result");
        stream
            .write_all(&framed[..framed.len() / 2])
            .expect("torn write");
        stream.flush().expect("flush");
        std::process::exit(0);
    }
    frame::write_frame(&mut stream, FrameKind::Result, &payload).expect("send result");
    let (kind, payload) = frame::read_frame(&mut stream, MAX_FRAME_LEN).expect("ack frame");
    assert_eq!(kind, FrameKind::Ack);
    let ack = wire::decode_ack(bytes::Bytes::from(payload)).expect("ack");
    assert_eq!(ack.disposition, ResultDisposition::Applied);
}

const CHAOS_WORKERS: usize = 8;

/// Spawns a `turn` child and waits for it.
fn run_turn(socket: &str, id: usize, torn: bool) {
    let mut args = vec!["turn".to_string(), socket.to_string(), id.to_string()];
    if torn {
        args.push("torn".into());
    }
    let status = self_command(&args).status().expect("spawn turn process");
    assert!(status.success(), "turn process {id} failed: {status}");
}

/// Polls the server until its outstanding-lease count reaches `want`.
fn await_outstanding(monitor: &mut WorkerClient, want: u64, what: &str) {
    let mut polls = 0u32;
    loop {
        let status = monitor.status().expect("status");
        if status.outstanding == want {
            return;
        }
        polls += 1;
        assert!(
            polls < 2_500,
            "{what}: outstanding stuck at {} (want {want})",
            status.outstanding
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn chaos() {
    // Per-shard apply with K = 3 and a one-deep pending bound: after a
    // single buffered gradient every shard is "saturated", so overload is
    // easy to provoke; generous leases keep reclaim deliberate (forced by
    // disconnects, never by the clock).
    let config = base_config()
        .to_builder()
        .apply_mode(fleet_core::ApplyMode::PerShard)
        .shards(2)
        .aggregation_k(3)
        .max_pending(1)
        .lease_min_rounds(64)
        .build()
        .expect("chaos config is valid");
    let endpoint = Endpoint::uds(socket_path("chaos"));
    let server = TransportServer::bind(
        &endpoint,
        FleetServer::new(model_parameters(), config),
        TransportConfig::default(),
    )
    .expect("bind chaos socket");
    let socket = match server.endpoint() {
        Endpoint::Uds(path) => path.display().to_string(),
        Endpoint::Tcp(addr) => addr.to_string(),
    };
    let mut fleet = build_workers(CHAOS_WORKERS);
    let mut monitor = WorkerClient::new(server.endpoint().clone());

    // A worker (H) gets a task, then vanishes: its lease is reclaimed, and
    // the straggler upload it left behind comes back `Expired`.
    let mut h = WorkerClient::new(server.endpoint().clone());
    let h_assignment = match h.request(&fleet[7].request()).expect("request H") {
        TaskResponse::Assignment(a) => a,
        TaskResponse::Rejected(r) => panic!("H rejected: {r:?}"),
    };
    let h_result = fleet[7].execute(&h_assignment).expect("execute H");
    h.disconnect();
    await_outstanding(&mut monitor, 0, "H's lease after its disconnect");
    let ack = h.submit(&h_result).expect("straggler upload");
    assert_eq!(ack.disposition, ResultDisposition::Expired);
    println!("chaos: dead worker's lease reclaimed, straggler upload expired");

    // A, B, C and E all get assignments while the shards are idle.
    let mut clients: Vec<WorkerClient> = (0..CHAOS_WORKERS)
        .map(|_| WorkerClient::new(server.endpoint().clone()))
        .collect();
    let mut assignments = std::collections::BTreeMap::new();
    for id in [0usize, 1, 2, 4] {
        match clients[id].request(&fleet[id].request()).expect("request") {
            TaskResponse::Assignment(a) => assignments.insert(id, a),
            TaskResponse::Rejected(r) => panic!("worker {id} rejected: {r:?}"),
        };
    }
    await_outstanding(&mut monitor, 4, "four live leases");

    // D dies mid-upload with a torn frame; the server survives and reclaims
    // its lease.
    run_turn(&socket, 3, true);
    await_outstanding(&mut monitor, 4, "D's lease after its torn crash");
    println!("chaos: torn mid-upload crash survived, lease reclaimed");

    // A's gradient lands in the pending buffers (K = 3, nothing applies
    // yet) — and now every shard is at the bound, so F is shed with a real
    // `Overloaded` on the wire.
    let a_result = fleet[0].execute(&assignments[&0]).expect("execute A");
    assert_eq!(
        clients[0].submit(&a_result).expect("submit A").disposition,
        ResultDisposition::Applied
    );
    match clients[5].request(&fleet[5].request()).expect("request F") {
        TaskResponse::Rejected(RejectionReason::Overloaded { shard }) => {
            println!("chaos: overloaded shard {shard} shed a request on the wire");
        }
        other => panic!("F should have been shed, got {other:?}"),
    }

    // B uploads twice (a retry after a lost ack): one Applied, one
    // Duplicate, one gradient.
    let b_raw =
        wire::encode_result(&fleet[1].execute(&assignments[&1]).expect("execute B")).to_vec();
    assert_eq!(
        clients[1]
            .submit_raw(&b_raw)
            .expect("B first copy")
            .disposition,
        ResultDisposition::Applied
    );
    clients[1].disconnect();
    assert_eq!(
        clients[1].submit_raw(&b_raw).expect("B resend").disposition,
        ResultDisposition::Duplicate
    );
    println!("chaos: duplicate upload after reconnect deduplicated");

    // A vandal connection spews garbage; the server boots it and carries on.
    let mut vandal = Stream::connect(server.endpoint()).expect("vandal connect");
    vandal
        .write_all(&[0xff, 0xff, 0xff, 0xff, 0x00, 0x13, 0x37])
        .expect("vandal write");
    drop(vandal);
    monitor.status().expect("alive after garbage");
    println!("chaos: garbage connection shrugged off");

    // C's gradient is the third: both shards apply and the buffers empty.
    let c_result = fleet[2].execute(&assignments[&2]).expect("execute C");
    assert_eq!(
        clients[2].submit(&c_result).expect("submit C").disposition,
        ResultDisposition::Applied
    );

    // The shed worker F retries and is admitted now that pressure is gone;
    // the crashed worker D retries its whole turn as a fresh process.
    let f_assignment = match clients[5].request(&fleet[5].request()).expect("F retry") {
        TaskResponse::Assignment(a) => a,
        TaskResponse::Rejected(r) => panic!("F retry rejected: {r:?}"),
    };
    run_turn(&socket, 3, false);
    println!("chaos: shed worker re-admitted, crashed worker resumed cleanly");

    // E and F complete the second aggregation round.
    let e_result = fleet[4].execute(&assignments[&4]).expect("execute E");
    assert_eq!(
        clients[4].submit(&e_result).expect("submit E").disposition,
        ResultDisposition::Applied
    );
    let f_result = fleet[5].execute(&f_assignment).expect("execute F");
    assert_eq!(
        clients[5].submit(&f_result).expect("submit F").disposition,
        ResultDisposition::Applied
    );

    // G leaves one gradient stranded in the pending buffers...
    let g_assignment = match clients[6].request(&fleet[6].request()).expect("request G") {
        TaskResponse::Assignment(a) => a,
        TaskResponse::Rejected(r) => panic!("G rejected: {r:?}"),
    };
    let g_result = fleet[6].execute(&g_assignment).expect("execute G");
    assert_eq!(
        clients[6].submit(&g_result).expect("submit G").disposition,
        ResultDisposition::Applied
    );

    // ... and the graceful drain flushes it into the model on shutdown.
    let state = server.shutdown().expect("shutdown");
    assert!(
        state
            .parameter_server
            .shard_pending
            .iter()
            .all(Vec::is_empty),
        "drain must flush every shard's pending buffer"
    );
    let chaos_digest = digest(&state.parameter_server.parameters);
    println!("chaos digest: {chaos_digest:#018x}");
    println!("chaos: survived a crash, a torn frame, overload and garbage; drained clean");
}

/// Steps the `kill` monitor waits for before SIGKILLing the first server
/// process: far enough in that real state (checkpoint + journal tail) is on
/// disk, early enough that most of the schedule still runs post-restart.
const KILL_AT_STEPS: u64 = 2;

/// One durable server process: binds the socket with a write-ahead journal
/// under `<dir>`, serves until a client requests shutdown, drains and prints
/// its digest. `kill` runs this twice over the same `<dir>` — the second
/// incarnation recovers the first's checkpoint and journal before accepting
/// connections. Exiting on request (never on a step count) matters: the
/// last journaled step may have an unacked worker still retransmitting, and
/// only the driver knows when every ack has landed.
fn serve(args: &[String]) {
    let (socket, dir) = match args {
        [socket, dir] => (socket.clone(), std::path::PathBuf::from(dir)),
        _ => {
            eprintln!("usage: socket_demo serve <socket> <dir>");
            std::process::exit(2);
        }
    };
    // A SIGKILLed predecessor leaves its socket file behind; claim it.
    let _ = std::fs::remove_file(&socket);
    let server = TransportServer::bind(
        &Endpoint::uds(socket),
        FleetServer::new(model_parameters(), base_config()),
        TransportConfig::builder()
            .durable(dir)
            .checkpoint_every(KILL_AT_STEPS)
            .build()
            .expect("durable config is valid"),
    )
    .expect("bind durable socket");
    let mut polls = 0u32;
    while !server.shutdown_requested() {
        polls += 1;
        assert!(polls < 60_000, "serve: shutdown never requested");
        std::thread::sleep(Duration::from_millis(2));
    }
    let state = server.shutdown().expect("shutdown");
    println!(
        "serve digest: {:#018x}",
        digest(&state.parameter_server.parameters)
    );
}

/// The durable-recovery showcase: the same gated schedule as `demo`, but the
/// server is a *separate process* that gets SIGKILLed mid-run — no drain, no
/// final checkpoint, a dead socket file left behind — and a replacement
/// process recovers checkpoint + journal from disk. The lenient workers ride
/// their retry loops across the outage, and the finished model must
/// reproduce the uninterrupted in-process digest bit-for-bit.
fn kill() {
    let reference = in_process_digest();
    println!("in-process reference digest: {reference:#018x}");

    let dir = std::env::temp_dir().join(format!("fleet-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let socket = socket_path("kill");
    let socket_arg = socket.display().to_string();
    let dir_arg = dir.display().to_string();

    // First server incarnation — the victim. It never prints a digest: it
    // serves until SIGKILLed.
    let mut victim = self_command(&["serve".into(), socket_arg.clone(), dir_arg.clone()])
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn victim server");

    let workers: Vec<std::process::Child> = (0..DEMO_WORKERS)
        .map(|id| {
            self_command(&[
                "worker".into(),
                socket_arg.clone(),
                id.to_string(),
                DEMO_WORKERS.to_string(),
                DEMO_ROUNDS.to_string(),
                "lenient".into(),
            ])
            .spawn()
            .expect("spawn lenient worker")
        })
        .collect();

    // Wait until durable state exists on disk, then SIGKILL the server —
    // mid-run, no warning, exactly what a machine failure looks like to the
    // protocol.
    let mut monitor =
        WorkerClient::with_config(Endpoint::uds(socket.clone()), patient_client_config());
    let mut polls = 0u32;
    loop {
        if let Ok(status) = monitor.status() {
            if status.steps >= KILL_AT_STEPS {
                break;
            }
        }
        polls += 1;
        assert!(polls < 30_000, "kill: step {KILL_AT_STEPS} never arrived");
        std::thread::sleep(Duration::from_millis(2));
    }
    monitor.disconnect();
    victim.kill().expect("SIGKILL server");
    victim.wait().expect("reap server");
    println!("kill: server SIGKILLed after step {KILL_AT_STEPS}");

    // Second incarnation over the same directory: recovers, finishes the
    // schedule against the still-retrying workers, drains, prints its digest.
    let survivor = self_command(&["serve".into(), socket_arg.clone(), dir_arg.clone()])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn survivor server");

    // Every worker exiting cleanly means every upload was acked — only then
    // may the survivor drain and go down.
    for (id, mut child) in workers.into_iter().enumerate() {
        let status = child.wait().expect("wait for worker");
        assert!(status.success(), "lenient worker {id} failed: {status}");
    }
    let mut closer =
        WorkerClient::with_config(Endpoint::uds(socket.clone()), patient_client_config());
    closer
        .request_shutdown()
        .expect("request survivor shutdown");
    closer.disconnect();
    let output = survivor.wait_with_output().expect("wait for survivor");
    assert!(
        output.status.success(),
        "survivor server failed: {}",
        output.status
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let line = stdout
        .lines()
        .find_map(|l| l.strip_prefix("serve digest: 0x"))
        .expect("survivor digest line");
    let kill_digest = u64::from_str_radix(line.trim(), 16).expect("digest hex");

    assert_eq!(
        kill_digest, reference,
        "the kill-restart run must reproduce the uninterrupted digest bit-for-bit"
    );
    println!("chaos-kill digest: {kill_digest:#018x}");
    println!(
        "chaos-kill: SIGKILL mid-run + recovery from checkpoint/journal \
         reproduced the in-process digest"
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&socket);
}
