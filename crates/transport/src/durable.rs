//! Glue between the [`TransportServer`] core and [`fleet_durability`]: crash
//! recovery on startup and the journal/checkpoint bookkeeping the apply path
//! carries per event.
//!
//! The replay contract mirrors the live `handle_frame` path exactly — same
//! entry points, same step accounting — so `recover` is the live path run
//! against journaled bytes instead of socket bytes. That is what makes a
//! kill-restart run reproduce the uninterrupted run's digest bit-for-bit:
//! the core never sees a different event sequence, only a differently
//! sourced one.
//!
//! [`TransportServer`]: crate::server::TransportServer

use bytes::Bytes;
use fleet_durability::{DurabilityOptions, DurableStore, EventKind};
use fleet_server::protocol::{RejectionReason, TaskResponse};
use fleet_server::{decode_checkpoint, encode_checkpoint, FleetServer};
use std::io;

/// The durable half of the transport core, living inside the core mutex so
/// journal order is exactly apply order.
pub(crate) struct Durable {
    pub(crate) store: DurableStore,
    /// Applied steps between policy-driven checkpoints (0 = startup and
    /// shutdown only).
    pub(crate) checkpoint_every: u64,
    /// The step counter when the last checkpoint was written.
    pub(crate) steps_at_checkpoint: u64,
}

impl Durable {
    /// Journals one applied event. Called *before* the reply frame is sent,
    /// so an acknowledged exchange is always on disk (or in the kernel, per
    /// fsync policy) — a reply can never outlive its journal entry.
    pub(crate) fn append(&mut self, kind: EventKind, payload: Bytes) -> io::Result<u64> {
        self.store.append(kind, payload)
    }

    /// Writes a cadence checkpoint when enough steps have passed since the
    /// last one; returns whether one was written.
    pub(crate) fn maybe_checkpoint(
        &mut self,
        server: &FleetServer,
        steps: u64,
    ) -> io::Result<bool> {
        if self.checkpoint_every == 0
            || steps.saturating_sub(self.steps_at_checkpoint) < self.checkpoint_every
        {
            return Ok(false);
        }
        self.force_checkpoint(server, steps)?;
        Ok(true)
    }

    /// Writes a checkpoint unconditionally (shutdown path).
    pub(crate) fn force_checkpoint(&mut self, server: &FleetServer, steps: u64) -> io::Result<()> {
        let payload = Bytes::from(encode_checkpoint(&server.checkpoint()).to_vec());
        self.store.checkpoint(payload, steps)?;
        self.steps_at_checkpoint = steps;
        Ok(())
    }
}

/// Recovers `server` from the durable directory and returns the live
/// [`Durable`] plus the recovered step counter.
///
/// Recovery = restore the newest valid checkpoint, then replay the journal
/// suffix through the same wire entry points the live path uses (with the
/// same step accounting), then seal the result as a fresh checkpoint
/// generation so the journal never grows without bound across restarts.
///
/// Replay is forgiving the same way the on-disk readers are: a record the
/// core rejects ends the replay there (everything after it depended on state
/// this build cannot reconstruct) instead of failing startup.
pub(crate) fn recover(
    server: &mut FleetServer,
    options: &DurabilityOptions,
) -> io::Result<(Durable, u64)> {
    let (mut store, recovered) = DurableStore::open(options)?;

    let mut steps = 0u64;
    let mut covered_seq = 0u64;
    if let Some(doc) = &recovered.checkpoint {
        let state = decode_checkpoint(doc.payload.clone())
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))?;
        server.restore_checkpoint(state);
        steps = doc.steps;
        covered_seq = doc.seq;
    }

    for record in &recovered.records {
        match record.kind {
            EventKind::Request => {
                match server.handle_request_wire(record.payload.clone()) {
                    // Same accounting as the live path: terminal rejections
                    // consume the worker's turn, overload does not.
                    Ok(TaskResponse::Rejected(RejectionReason::Overloaded { .. })) => {}
                    Ok(TaskResponse::Rejected(_)) => steps += 1,
                    Ok(TaskResponse::Assignment(_)) => {}
                    Err(_) => break,
                }
            }
            EventKind::Result => match server.handle_result_wire(record.payload.clone()) {
                Ok(ack) => {
                    if ack.disposition == fleet_server::ResultDisposition::Applied {
                        steps += 1;
                    }
                }
                Err(_) => break,
            },
            EventKind::Reclaim => {
                let raw = record.payload.to_vec();
                let Ok(raw) = <[u8; 8]>::try_from(raw.as_slice()) else {
                    break;
                };
                server.reclaim_task(u64::from_le_bytes(raw));
            }
        }
        covered_seq = record.seq;
    }

    let payload = Bytes::from(encode_checkpoint(&server.checkpoint()).to_vec());
    store.begin(payload, covered_seq, steps)?;
    Ok((
        Durable {
            store,
            checkpoint_every: options.checkpoint_every,
            steps_at_checkpoint: steps,
        },
        steps,
    ))
}

/// Encodes a reclaim record payload (8-byte LE task id).
pub(crate) fn reclaim_payload(task_id: u64) -> Bytes {
    Bytes::from(task_id.to_le_bytes().to_vec())
}
