//! # fleet-bench
//!
//! The experiment harness of the FLeet reproduction: one module per table or
//! figure of the paper's evaluation (§3), each regenerating the corresponding
//! rows/series from the simulated substrate. The binaries under `src/bin/`
//! are thin wrappers around these modules; `all_experiments` runs everything
//! and writes CSV output under the workspace `results/` directory.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`experiments::fig03_weak_workers`] | Fig. 3 — weak workers cancel strong workers |
//! | [`experiments::fig04_device_linearity`] | Fig. 4 — latency/energy linear in batch size |
//! | [`experiments::fig06_online_vs_standard`] | Fig. 6 — Online FL vs Standard FL |
//! | [`experiments::fig07_staleness_distribution`] | Fig. 7 — staleness distribution |
//! | [`experiments::table01_models`] | Table 1 — CNN topologies |
//! | [`experiments::fig08_staleness_impact`] | Fig. 8 — AdaSGD vs DynSGD vs FedAvg vs SSGD |
//! | [`experiments::fig09_similarity_boosting`] | Fig. 9 — long-tail stragglers & similarity boost |
//! | [`experiments::fig10_iid_data`] | Fig. 10 — IID datasets |
//! | [`experiments::fig11_differential_privacy`] | Fig. 11 — differentially-private training |
//! | [`experiments::fig12_iprof_latency`] | Fig. 12 — I-Prof vs MAUI, computation-time SLO |
//! | [`experiments::fig13_iprof_energy`] | Fig. 13 — I-Prof vs MAUI, energy SLO |
//! | [`experiments::table02_caloree_transfer`] | Table 2 — CALOREE on unseen devices |
//! | [`experiments::fig14_resource_allocation`] | Fig. 14 — FLeet allocation vs CALOREE |
//! | [`experiments::fig15_controller_thresholds`] | Fig. 15 — controller threshold pruning |
//! | [`experiments::energy_budget`] | §3.1 — daily energy budget of Online FL |

#![forbid(unsafe_code)]

pub mod experiments;
pub mod output;

pub use output::ExperimentWriter;

/// How much compute an experiment run should spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// A fast configuration used by tests and smoke runs.
    Quick,
    /// The full laptop-scale configuration used by the reported results.
    #[default]
    Full,
}

impl Scale {
    /// Parses `--quick` from command-line arguments (anything else is Full).
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Picks between two values depending on the scale.
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}
