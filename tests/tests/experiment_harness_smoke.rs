//! Smoke tests of the experiment harnesses: the cheap ones run end-to-end at
//! Quick scale and leave their CSV output under `results/`.

use fleet_bench::{experiments, Scale};

#[test]
fn table01_and_device_experiments_run() {
    experiments::table01_models::run(Scale::Quick);
    experiments::fig04_device_linearity::run(Scale::Quick);
    experiments::fig07_staleness_distribution::run(Scale::Quick);
    experiments::energy_budget::run(Scale::Quick);
}

#[test]
fn caloree_and_allocation_experiments_run() {
    experiments::table02_caloree_transfer::run(Scale::Quick);
    experiments::fig14_resource_allocation::run(Scale::Quick);
}
