//! The durable store: a directory of generational checkpoint containers and
//! write-ahead journals, plus the recovery scan that turns whatever a crash
//! left behind into `newest valid checkpoint + contiguous record suffix`.
//!
//! Directory layout (`{gen:020}` so lexicographic order is numeric order):
//!
//! ```text
//! ckpt-00000000000000000003.bin   checkpoint container, generation 3
//! wal-00000000000000000003.log    journal of records after checkpoint 3
//! *.tmp                           in-flight atomic writes; deleted on open
//! ```
//!
//! Writing checkpoint generation `G` rotates the journal: records appended
//! afterwards land in `wal-G`. Sequence numbers chain across rotations, so
//! when checkpoint `G` itself is torn, recovery falls back to `G-1` and
//! replays `wal-(G-1)` *and* `wal-G` seamlessly — the contiguity check is on
//! `seq`, not on file boundaries.

use crate::codec::{decode_doc, encode_doc, CheckpointDoc, EventKind, JournalRecord};
use crate::journal::{read_journal, JournalWriter};
use crate::{DurabilityOptions, FsyncPolicy};
use bytes::Bytes;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

fn ckpt_name(generation: u64) -> String {
    format!("ckpt-{generation:020}.bin")
}

fn wal_name(generation: u64) -> String {
    format!("wal-{generation:020}.log")
}

fn parse_generation(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    fs::File::open(dir)?.sync_all()
}

/// What [`DurableStore::open`] recovered from disk: the newest checkpoint
/// that passed its integrity checks (if any) plus the contiguous run of
/// journal records after it. The embedding layer restores the checkpoint
/// payload, replays the records, then calls [`DurableStore::begin`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovered {
    /// Newest valid checkpoint, or `None` for an empty/unrecoverable store.
    pub checkpoint: Option<CheckpointDoc>,
    /// Journal records after the checkpoint, strictly contiguous by `seq`.
    pub records: Vec<JournalRecord>,
}

impl Recovered {
    /// The highest sequence number the recovered state covers (0 when the
    /// store was empty).
    pub fn last_seq(&self) -> u64 {
        self.records
            .last()
            .map(|record| record.seq)
            .or_else(|| self.checkpoint.as_ref().map(|doc| doc.seq))
            .unwrap_or(0)
    }
}

/// A live durable store. Construct with [`DurableStore::open`], restore the
/// [`Recovered`] state, then [`DurableStore::begin`] a fresh generation
/// before the first [`DurableStore::append`].
pub struct DurableStore {
    dir: PathBuf,
    fsync: FsyncPolicy,
    keep_generations: u64,
    /// Highest generation number present (or ever seen) on disk; the next
    /// checkpoint uses `generation + 1` so even a corrupt newest generation
    /// is never reused.
    generation: u64,
    next_seq: u64,
    writer: Option<JournalWriter>,
}

impl DurableStore {
    /// Opens (creating if needed) the store directory and scans it for the
    /// newest recoverable state. Never fails on corrupt *content* — torn
    /// checkpoints are skipped, torn journal tails truncated — only on I/O
    /// errors reaching the directory itself.
    pub fn open(options: &DurabilityOptions) -> io::Result<(DurableStore, Recovered)> {
        fs::create_dir_all(&options.dir)?;

        let mut checkpoints: Vec<u64> = Vec::new();
        let mut journals: Vec<u64> = Vec::new();
        let mut max_seen = 0u64;
        for entry in fs::read_dir(&options.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            if name.ends_with(".tmp") {
                // An in-flight atomic write that never got renamed; dead.
                let _ = fs::remove_file(entry.path());
                continue;
            }
            if let Some(generation) = parse_generation(&name, "ckpt-", ".bin") {
                checkpoints.push(generation);
                max_seen = max_seen.max(generation);
            } else if let Some(generation) = parse_generation(&name, "wal-", ".log") {
                journals.push(generation);
                max_seen = max_seen.max(generation);
            }
        }
        checkpoints.sort_unstable_by(|a, b| b.cmp(a));
        journals.sort_unstable();

        // Newest checkpoint whose container decodes AND whose embedded
        // generation matches its filename (a cross-renamed file is corrupt).
        let mut base: Option<CheckpointDoc> = None;
        for &generation in &checkpoints {
            let Ok(raw) = fs::read(options.dir.join(ckpt_name(generation))) else {
                continue;
            };
            match decode_doc(Bytes::from(raw)) {
                Ok(doc) if doc.generation == generation => {
                    base = Some(doc);
                    break;
                }
                _ => continue,
            }
        }

        let base_generation = base.as_ref().map(|doc| doc.generation).unwrap_or(0);
        let base_seq = base.as_ref().map(|doc| doc.seq).unwrap_or(0);

        // Replay journals from the base generation up, chaining on strict
        // seq contiguity. Any unusable journal or gap ends the history —
        // later records without their predecessors are unusable.
        let mut records: Vec<JournalRecord> = Vec::new();
        let mut expected_seq = base_seq + 1;
        'journals: for &generation in journals.iter().filter(|&&g| g >= base_generation) {
            let Some(read) = read_journal(&options.dir.join(wal_name(generation))) else {
                break;
            };
            if read.generation != generation {
                break;
            }
            for record in read.records {
                if record.seq < expected_seq {
                    // Already folded into the base checkpoint.
                    continue;
                }
                if record.seq != expected_seq {
                    break 'journals;
                }
                expected_seq += 1;
                records.push(record);
            }
        }

        let store = DurableStore {
            dir: options.dir.clone(),
            fsync: options.fsync,
            keep_generations: options.keep_generations.max(1),
            generation: max_seen,
            next_seq: 0,
            writer: None,
        };
        Ok((
            store,
            Recovered {
                checkpoint: base,
                records,
            },
        ))
    }

    /// Seals the recovered (or initial) state into a fresh checkpoint
    /// generation and opens its journal. `seq` is the sequence number the
    /// payload covers through ([`Recovered::last_seq`] after replay); the
    /// first [`DurableStore::append`] gets `seq + 1`.
    pub fn begin(&mut self, state_payload: Bytes, seq: u64, steps: u64) -> io::Result<u64> {
        self.write_generation(state_payload, seq, steps)
    }

    /// Appends one event to the active journal, returning its sequence
    /// number. The record is in the kernel (or, under
    /// [`FsyncPolicy::EveryRecord`], on stable storage) before this returns,
    /// so a reply sent afterwards can never outlive the journal entry.
    pub fn append(&mut self, kind: EventKind, payload: Bytes) -> io::Result<u64> {
        let writer = self
            .writer
            .as_mut()
            .expect("DurableStore::begin must run before append");
        let seq = self.next_seq;
        writer.append(&JournalRecord { seq, kind, payload })?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Writes a new checkpoint generation covering everything appended so
    /// far, rotates the journal, and prunes generations beyond the retention
    /// window. Returns the new generation number.
    pub fn checkpoint(&mut self, state_payload: Bytes, steps: u64) -> io::Result<u64> {
        if let Some(writer) = self.writer.as_mut() {
            // The rotated-out journal must be stable before the checkpoint
            // that supersedes it claims to cover it.
            writer.sync()?;
        }
        let seq = self.next_seq.saturating_sub(1);
        self.write_generation(state_payload, seq, steps)
    }

    fn write_generation(&mut self, state_payload: Bytes, seq: u64, steps: u64) -> io::Result<u64> {
        let generation = self.generation + 1;
        let doc = CheckpointDoc {
            generation,
            seq,
            steps,
            payload: state_payload,
        };
        let final_path = self.dir.join(ckpt_name(generation));
        let tmp_path = self.dir.join(format!("{}.tmp", ckpt_name(generation)));
        {
            let mut file = fs::File::create(&tmp_path)?;
            io::Write::write_all(&mut file, &encode_doc(&doc).to_vec())?;
            if !matches!(self.fsync, FsyncPolicy::Never) {
                file.sync_all()?;
            }
        }
        fs::rename(&tmp_path, &final_path)?;
        if !matches!(self.fsync, FsyncPolicy::Never) {
            sync_dir(&self.dir)?;
        }

        self.writer = Some(JournalWriter::create(
            &self.dir.join(wal_name(generation)),
            generation,
            self.fsync,
        )?);
        self.generation = generation;
        self.next_seq = seq + 1;
        self.prune();
        Ok(generation)
    }

    /// Deletes checkpoint/journal generations older than the retention
    /// window. Best-effort: a file that cannot be deleted is just retained.
    fn prune(&self) {
        let cutoff = self.generation.saturating_sub(self.keep_generations - 1);
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            let generation = parse_generation(&name, "ckpt-", ".bin")
                .or_else(|| parse_generation(&name, "wal-", ".log"));
            if let Some(generation) = generation {
                if generation < cutoff {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
    }

    /// The current checkpoint generation (0 before [`DurableStore::begin`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The sequence number the next [`DurableStore::append`] will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fleet-store-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn options(dir: &Path) -> DurabilityOptions {
        let mut options = DurabilityOptions::new(dir.to_path_buf());
        options.fsync = FsyncPolicy::Never;
        options
    }

    fn payload(tag: u8) -> Bytes {
        Bytes::from(vec![tag; 8])
    }

    #[test]
    fn empty_store_recovers_to_nothing() {
        let dir = scratch("empty");
        let (mut store, recovered) = DurableStore::open(&options(&dir)).unwrap();
        assert_eq!(
            recovered,
            Recovered {
                checkpoint: None,
                records: Vec::new()
            }
        );
        assert_eq!(recovered.last_seq(), 0);
        assert_eq!(store.begin(payload(0), 0, 0).unwrap(), 1);
        assert_eq!(store.next_seq(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn records_and_checkpoints_chain_across_restart() {
        let dir = scratch("chain");
        {
            let (mut store, _) = DurableStore::open(&options(&dir)).unwrap();
            store.begin(payload(0), 0, 0).unwrap();
            for i in 0..5u8 {
                store.append(EventKind::Request, payload(10 + i)).unwrap();
            }
            assert_eq!(store.checkpoint(payload(1), 5).unwrap(), 2);
            for i in 0..3u8 {
                store.append(EventKind::Result, payload(20 + i)).unwrap();
            }
        }
        let (_store, recovered) = DurableStore::open(&options(&dir)).unwrap();
        let doc = recovered.checkpoint.as_ref().unwrap();
        assert_eq!(doc.generation, 2);
        assert_eq!(doc.seq, 5);
        assert_eq!(doc.steps, 5);
        assert_eq!(doc.payload, payload(1));
        assert_eq!(
            recovered.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![6, 7, 8]
        );
        assert_eq!(recovered.last_seq(), 8);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_newest_checkpoint_falls_back_across_both_journals() {
        let dir = scratch("fallback");
        {
            let (mut store, _) = DurableStore::open(&options(&dir)).unwrap();
            store.begin(payload(0), 0, 0).unwrap();
            for i in 0..4u8 {
                store.append(EventKind::Request, payload(i)).unwrap();
            }
            store.checkpoint(payload(1), 4).unwrap();
            store.append(EventKind::Result, payload(9)).unwrap();
        }
        // Lose the newest checkpoint entirely: recovery must use generation
        // 1 and replay wal-1 (seqs 1..=4) plus wal-2 (seq 5).
        fs::remove_file(dir.join(ckpt_name(2))).unwrap();
        let (mut store, recovered) = DurableStore::open(&options(&dir)).unwrap();
        assert_eq!(recovered.checkpoint.as_ref().unwrap().generation, 1);
        assert_eq!(
            recovered.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
        // A corrupt/lost generation number is never reused.
        assert_eq!(store.begin(payload(2), 5, 5).unwrap(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_checkpoint_is_skipped() {
        let dir = scratch("corrupt");
        {
            let (mut store, _) = DurableStore::open(&options(&dir)).unwrap();
            store.begin(payload(0), 0, 0).unwrap();
            store.append(EventKind::Request, payload(1)).unwrap();
            store.checkpoint(payload(1), 1).unwrap();
        }
        let ckpt = dir.join(ckpt_name(2));
        let mut raw = fs::read(&ckpt).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        fs::write(&ckpt, &raw).unwrap();
        let (_store, recovered) = DurableStore::open(&options(&dir)).unwrap();
        assert_eq!(recovered.checkpoint.as_ref().unwrap().generation, 1);
        assert_eq!(recovered.last_seq(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pruning_respects_retention_window() {
        let dir = scratch("prune");
        let mut opts = options(&dir);
        opts.keep_generations = 2;
        let (mut store, _) = DurableStore::open(&opts).unwrap();
        store.begin(payload(0), 0, 0).unwrap();
        for generation in 2..=5u8 {
            store
                .append(EventKind::Request, payload(generation))
                .unwrap();
            store
                .checkpoint(payload(generation), u64::from(generation))
                .unwrap();
        }
        let mut names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![ckpt_name(4), ckpt_name(5), wal_name(4), wal_name(5)]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seq_gap_ends_replay() {
        let dir = scratch("gap");
        {
            let (mut store, _) = DurableStore::open(&options(&dir)).unwrap();
            store.begin(payload(0), 0, 0).unwrap();
            for i in 0..3u8 {
                store.append(EventKind::Request, payload(i)).unwrap();
            }
        }
        // Hand-build a journal whose records jump from seq 3 to seq 5.
        {
            let mut writer =
                JournalWriter::create(&dir.join(wal_name(1)), 1, FsyncPolicy::Never).unwrap();
            for seq in [1u64, 2, 3, 5, 6] {
                writer
                    .append(&JournalRecord {
                        seq,
                        kind: EventKind::Request,
                        payload: payload(seq as u8),
                    })
                    .unwrap();
            }
        }
        let (_store, recovered) = DurableStore::open(&options(&dir)).unwrap();
        assert_eq!(
            recovered.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
