//! # fleet-server
//!
//! The FLeet middleware itself (Fig. 2 of the paper): the server that owns the
//! global model, the controller that accepts or rejects learning tasks, the
//! worker runtime that executes them on (simulated) mobile devices, the wire
//! protocol connecting the two sides, and the asynchronous simulation engine
//! used by every experiment.
//!
//! The protocol follows the five steps of the paper:
//!
//! 1. the worker sends a [`protocol::TaskRequest`] with its device features
//!    and local label information,
//! 2. I-Prof bounds the workload (mini-batch size) from the device features,
//! 3. AdaSGD computes the similarity of the request with past learning tasks,
//! 4. the [`controller::Controller`] accepts or rejects the task; accepted
//!    tasks receive a [`protocol::TaskAssignment`] with the current model and
//!    the mini-batch size,
//! 5. the worker computes the gradient and returns a [`protocol::TaskResult`],
//!    which the server folds into the model with AdaSGD's weight.

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod controller;
pub mod faults;
pub mod online;
pub mod protocol;
pub mod server;
pub mod simulation;
pub mod staleness_model;
pub mod tasks;
pub mod wire;
pub mod worker;

pub use checkpoint::{decode_checkpoint, encode_checkpoint};
pub use controller::{Controller, ControllerCounters, ControllerThresholds};
pub use faults::{FaultPlan, FaultStats, ResultFate};
pub use fleet_core::ApplyMode;
pub use protocol::ResultDisposition;
pub use server::{FleetServer, FleetServerConfig, FleetServerConfigBuilder, FleetServerState};
pub use simulation::{
    AsyncSimulation, SimulationCheckpoint, SimulationConfig, SimulationConfigBuilder,
    StalenessDistribution, TrainingHistory,
};
pub use tasks::{Lease, TaskTable, TaskTableState};
pub use worker::{RetryPolicy, Worker};
