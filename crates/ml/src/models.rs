//! Model builders.
//!
//! [`table1_mnist_cnn`], [`table1_emnist_cnn`] and [`table1_cifar100_cnn`]
//! reproduce the exact topologies of the paper's Table 1, and since the
//! im2col convolution engine landed they run their convolutions on the SIMD
//! GEMM kernels (`cargo bench --bench conv` tracks the step times against
//! the direct loop-nest baseline). The experiment harnesses still default to
//! the scaled-down [`small_cnn`] and [`mlp_classifier`] builders, which
//! preserve the training dynamics (non-convex model, softmax cross-entropy,
//! mini-batch SGD) at a fraction of the cost.

use crate::init::Initializer;
use crate::layers::{Conv2d, Dense, Flatten, MaxPool2d, Relu};
use crate::model::Sequential;

/// Multinomial logistic regression: a single dense layer from `input_dim` to
/// `classes`.
pub fn logistic_regression(input_dim: usize, classes: usize, seed: u64) -> Sequential {
    Sequential::new().with_layer(Box::new(Dense::new(
        input_dim,
        classes,
        Initializer::Xavier,
        seed,
    )))
}

/// Multi-layer perceptron with ReLU activations between the hidden layers.
pub fn mlp_classifier(input_dim: usize, hidden: &[usize], classes: usize, seed: u64) -> Sequential {
    let mut model = Sequential::new();
    let mut prev = input_dim;
    for (i, &h) in hidden.iter().enumerate() {
        model.push(Box::new(Dense::new(
            prev,
            h,
            Initializer::He,
            seed.wrapping_add(i as u64),
        )));
        model.push(Box::new(Relu::new()));
        prev = h;
    }
    model.push(Box::new(Dense::new(
        prev,
        classes,
        Initializer::Xavier,
        seed.wrapping_add(hidden.len() as u64),
    )));
    model
}

/// A small CNN for `channels x size x size` images: one convolution, one
/// max-pool and a dense classifier head. Used by the laptop-scale experiment
/// harnesses in place of the full Table 1 models.
pub fn small_cnn(channels: usize, size: usize, classes: usize, seed: u64) -> Sequential {
    let conv_out = size - 3 + 1; // 3x3 kernel, stride 1
    let pool_out = conv_out / 2; // 2x2 pool, stride 2
    let flat = 8 * pool_out * pool_out;
    Sequential::new()
        .with_layer(Box::new(Conv2d::new(
            channels,
            8,
            3,
            1,
            Initializer::He,
            seed,
        )))
        .with_layer(Box::new(Relu::new()))
        .with_layer(Box::new(MaxPool2d::new(2, 2)))
        .with_layer(Box::new(Flatten::new()))
        .with_layer(Box::new(Dense::new(
            flat,
            classes,
            Initializer::Xavier,
            seed + 1,
        )))
}

/// The paper's Table 1 MNIST model: 28x28x1 input, Conv 5x5x8 (stride 1),
/// Pool 3x3 (stride 3), Conv 5x5x48 (stride 1), Pool 2x2 (stride 2), FC 10.
pub fn table1_mnist_cnn(seed: u64) -> Sequential {
    Sequential::new()
        .with_layer(Box::new(Conv2d::new(1, 8, 5, 1, Initializer::He, seed)))
        .with_layer(Box::new(Relu::new()))
        .with_layer(Box::new(MaxPool2d::new(3, 3)))
        .with_layer(Box::new(Conv2d::new(
            8,
            48,
            5,
            1,
            Initializer::He,
            seed + 1,
        )))
        .with_layer(Box::new(Relu::new()))
        .with_layer(Box::new(MaxPool2d::new(2, 2)))
        .with_layer(Box::new(Flatten::new()))
        .with_layer(Box::new(Dense::new(192, 10, Initializer::Xavier, seed + 2)))
}

/// The paper's Table 1 E-MNIST model: 28x28x1 input, Conv 5x5x10, Pool 2x2,
/// Conv 5x5x10, Pool 2x2, FC 15, FC 62.
pub fn table1_emnist_cnn(seed: u64) -> Sequential {
    Sequential::new()
        .with_layer(Box::new(Conv2d::new(1, 10, 5, 1, Initializer::He, seed)))
        .with_layer(Box::new(Relu::new()))
        .with_layer(Box::new(MaxPool2d::new(2, 2)))
        .with_layer(Box::new(Conv2d::new(
            10,
            10,
            5,
            1,
            Initializer::He,
            seed + 1,
        )))
        .with_layer(Box::new(Relu::new()))
        .with_layer(Box::new(MaxPool2d::new(2, 2)))
        .with_layer(Box::new(Flatten::new()))
        .with_layer(Box::new(Dense::new(160, 15, Initializer::He, seed + 2)))
        .with_layer(Box::new(Relu::new()))
        .with_layer(Box::new(Dense::new(15, 62, Initializer::Xavier, seed + 3)))
}

/// The paper's Table 1 CIFAR-100 model: 32x32x3 input, Conv 3x3x16, Pool 3x3
/// (stride 2), Conv 3x3x64, Pool 4x4 (stride 4), FC 384, FC 192, FC 100.
pub fn table1_cifar100_cnn(seed: u64) -> Sequential {
    Sequential::new()
        .with_layer(Box::new(Conv2d::new(3, 16, 3, 1, Initializer::He, seed)))
        .with_layer(Box::new(Relu::new()))
        .with_layer(Box::new(MaxPool2d::new(3, 2)))
        .with_layer(Box::new(Conv2d::new(
            16,
            64,
            3,
            1,
            Initializer::He,
            seed + 1,
        )))
        .with_layer(Box::new(Relu::new()))
        .with_layer(Box::new(MaxPool2d::new(4, 4)))
        .with_layer(Box::new(Flatten::new()))
        .with_layer(Box::new(Dense::new(576, 384, Initializer::He, seed + 2)))
        .with_layer(Box::new(Relu::new()))
        .with_layer(Box::new(Dense::new(384, 192, Initializer::He, seed + 3)))
        .with_layer(Box::new(Relu::new()))
        .with_layer(Box::new(Dense::new(
            192,
            100,
            Initializer::Xavier,
            seed + 4,
        )))
}

/// Summary of a Table 1 topology (used by the `table01_models` harness).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelSummary {
    /// Dataset name from Table 1.
    pub dataset: &'static str,
    /// Input shape `[channels, height, width]`.
    pub input_shape: [usize; 3],
    /// Number of layers in the built model (including activations/adapters).
    pub layers: usize,
    /// Total scalar parameter count.
    pub parameters: usize,
}

/// Builds every Table 1 model and reports its shape/parameter summary.
pub fn table1_summaries() -> Vec<ModelSummary> {
    vec![
        ModelSummary {
            dataset: "MNIST",
            input_shape: [1, 28, 28],
            layers: table1_mnist_cnn(0).num_layers(),
            parameters: table1_mnist_cnn(0).parameter_count(),
        },
        ModelSummary {
            dataset: "E-MNIST",
            input_shape: [1, 28, 28],
            layers: table1_emnist_cnn(0).num_layers(),
            parameters: table1_emnist_cnn(0).parameter_count(),
        },
        ModelSummary {
            dataset: "CIFAR-100",
            input_shape: [3, 32, 32],
            layers: table1_cifar100_cnn(0).num_layers(),
            parameters: table1_cifar100_cnn(0).parameter_count(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn logistic_regression_shapes() {
        let mut m = logistic_regression(6, 4, 0);
        let out = m.forward(&Tensor::zeros(&[3, 6])).unwrap();
        assert_eq!(out.shape(), &[3, 4]);
        assert_eq!(m.parameter_count(), 6 * 4 + 4);
    }

    #[test]
    fn mlp_shapes_and_depth() {
        let mut m = mlp_classifier(10, &[32, 16], 5, 1);
        assert_eq!(m.num_layers(), 5); // dense, relu, dense, relu, dense
        let out = m.forward(&Tensor::zeros(&[2, 10])).unwrap();
        assert_eq!(out.shape(), &[2, 5]);
    }

    #[test]
    fn small_cnn_forward_shape() {
        let mut m = small_cnn(1, 8, 10, 0);
        let out = m.forward(&Tensor::zeros(&[2, 1, 8, 8])).unwrap();
        assert_eq!(out.shape(), &[2, 10]);
    }

    #[test]
    fn table1_mnist_forward_and_params() {
        let mut m = table1_mnist_cnn(0);
        let out = m.forward(&Tensor::zeros(&[1, 1, 28, 28])).unwrap();
        assert_eq!(out.shape(), &[1, 10]);
        // conv1: 5*5*1*8+8, conv2: 5*5*8*48+48, fc: 192*10+10
        assert_eq!(m.parameter_count(), 208 + 9648 + 1930);
    }

    #[test]
    fn table1_emnist_forward_shape() {
        let mut m = table1_emnist_cnn(0);
        let out = m.forward(&Tensor::zeros(&[1, 1, 28, 28])).unwrap();
        assert_eq!(out.shape(), &[1, 62]);
    }

    #[test]
    fn table1_cifar_forward_shape() {
        let mut m = table1_cifar100_cnn(0);
        let out = m.forward(&Tensor::zeros(&[1, 3, 32, 32])).unwrap();
        assert_eq!(out.shape(), &[1, 100]);
    }

    #[test]
    fn table1_summaries_cover_all_datasets() {
        let summaries = table1_summaries();
        assert_eq!(summaries.len(), 3);
        assert!(summaries.iter().all(|s| s.parameters > 0));
        assert_eq!(summaries[0].dataset, "MNIST");
    }

    #[test]
    fn mnist_cnn_gradient_has_param_length() {
        let mut m = table1_mnist_cnn(3);
        let x = Tensor::zeros(&[2, 1, 28, 28]);
        let (_, g) = m.compute_gradient(&x, &[0, 1]).unwrap();
        assert_eq!(g.len(), m.parameter_count());
    }
}
