//! Online passive-aggressive regression (Crammer et al., JMLR 2006), the
//! per-device-model personalised estimator of I-Prof (§2.2 of the paper).
//!
//! For each observation `(x, α)` the model parameters are updated as
//!
//! ```text
//! θ ← θ + (f / ‖x‖²) · sign(α − xᵀθ) · x
//! ```
//!
//! where `f` is the ε-insensitive loss `max(0, |xᵀθ − α| − ε)`. The parameter
//! ε controls the aggressiveness: the smaller ε, the larger the update per
//! new observation.

use serde::{Deserialize, Serialize};

/// An online passive-aggressive regressor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PassiveAggressiveRegressor {
    theta: Vec<f32>,
    epsilon: f32,
    updates: u64,
}

impl PassiveAggressiveRegressor {
    /// Creates a regressor of dimensionality `dim` with sensitivity ε,
    /// starting from all-zero parameters.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative.
    pub fn new(dim: usize, epsilon: f32) -> Self {
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        Self {
            theta: vec![0.0; dim],
            epsilon,
            updates: 0,
        }
    }

    /// Bootstraps the regressor from an existing coefficient vector (I-Prof
    /// initialises each personalised model from the cold-start global model's
    /// first prediction for that device).
    pub fn with_initial(theta: Vec<f32>, epsilon: f32) -> Self {
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        Self {
            theta,
            epsilon,
            updates: 0,
        }
    }

    /// Rebuilds a regressor from checkpointed state, preserving the update
    /// count (unlike [`PassiveAggressiveRegressor::with_initial`], which
    /// resets it — the count decides whether a personalised model has seen
    /// real observations and may override the cold-start global model).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative.
    pub fn restore(theta: Vec<f32>, epsilon: f32, updates: u64) -> Self {
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        Self {
            theta,
            epsilon,
            updates,
        }
    }

    /// The current coefficients.
    pub fn coefficients(&self) -> &[f32] {
        &self.theta
    }

    /// Number of updates applied so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The configured ε.
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }

    /// Predicts `xᵀθ` (dimensions beyond the model are ignored).
    pub fn predict(&self, x: &[f32]) -> f32 {
        self.theta.iter().zip(x.iter()).map(|(&t, &v)| t * v).sum()
    }

    /// The ε-insensitive loss for an observation (Eq. 2 of the paper).
    pub fn loss(&self, x: &[f32], target: f32) -> f32 {
        let error = (self.predict(x) - target).abs();
        (error - self.epsilon).max(0.0)
    }

    /// Applies one passive-aggressive update for the observation `(x, target)`.
    /// Observations with zero feature norm are ignored.
    pub fn update(&mut self, x: &[f32], target: f32) {
        let norm_sq: f32 = x.iter().map(|v| v * v).sum();
        if norm_sq <= f32::EPSILON {
            return;
        }
        let loss = self.loss(x, target);
        if loss > 0.0 {
            let direction = if target >= self.predict(x) { 1.0 } else { -1.0 };
            let step = loss / norm_sq;
            for (t, &v) in self.theta.iter_mut().zip(x.iter()) {
                *t += step * direction * v;
            }
        }
        self.updates += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn within_epsilon_observations_do_not_move_theta() {
        let mut pa = PassiveAggressiveRegressor::with_initial(vec![1.0], 0.5);
        pa.update(&[1.0], 1.3); // error 0.3 < epsilon
        assert_eq!(pa.coefficients(), &[1.0]);
        assert_eq!(pa.updates(), 1);
    }

    #[test]
    fn update_moves_prediction_towards_target() {
        let mut pa = PassiveAggressiveRegressor::new(1, 0.0);
        let before = (pa.predict(&[2.0]) - 10.0).abs();
        pa.update(&[2.0], 10.0);
        let after = (pa.predict(&[2.0]) - 10.0).abs();
        assert!(after < before);
        // With epsilon = 0 the PA update lands exactly on the target.
        assert!(after < 1e-5);
    }

    #[test]
    fn converges_to_linear_relation() {
        let mut pa = PassiveAggressiveRegressor::new(2, 0.01);
        for i in 0..500 {
            let x = vec![1.0, (i % 10) as f32];
            let y = 0.5 + 0.2 * x[1];
            pa.update(&x, y);
        }
        let pred = pa.predict(&[1.0, 5.0]);
        assert!((pred - 1.5).abs() < 0.1, "prediction was {pred}");
    }

    #[test]
    fn smaller_epsilon_is_more_aggressive() {
        let mut tight = PassiveAggressiveRegressor::new(1, 0.0);
        let mut loose = PassiveAggressiveRegressor::new(1, 0.5);
        tight.update(&[1.0], 1.0);
        loose.update(&[1.0], 1.0);
        assert!(tight.coefficients()[0] > loose.coefficients()[0]);
    }

    #[test]
    fn zero_norm_features_are_ignored() {
        let mut pa = PassiveAggressiveRegressor::new(2, 0.1);
        pa.update(&[0.0, 0.0], 5.0);
        assert_eq!(pa.coefficients(), &[0.0, 0.0]);
    }

    #[test]
    fn bootstrap_from_initial_coefficients() {
        let pa = PassiveAggressiveRegressor::with_initial(vec![0.2, 0.3], 0.1);
        assert!((pa.predict(&[1.0, 2.0]) - 0.8).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn prop_update_never_overshoots_past_epsilon(initial in -2.0f32..2.0, target in -5.0f32..5.0, x in 0.1f32..3.0) {
            let mut pa = PassiveAggressiveRegressor::with_initial(vec![initial], 0.05);
            pa.update(&[x], target);
            // After one PA step the residual shrinks to at most epsilon
            // (the update is exactly the loss normalised by ||x||^2).
            let residual = (pa.predict(&[x]) - target).abs();
            let before = (initial * x - target).abs();
            prop_assert!(residual <= before + 1e-4);
            prop_assert!(residual <= 0.05 + 1e-3 || residual < before);
        }
    }
}
