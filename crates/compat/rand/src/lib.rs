//! Deterministic stand-in for the `rand` crate, offline build edition.
//!
//! Implements exactly the API surface the FLeet workspace uses: `StdRng`
//! seeded with [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer
//! and float ranges, [`Rng::gen_bool`], `distributions::Uniform` and
//! `seq::SliceRandom::shuffle`. The generator is SplitMix64 (see
//! [`rngs::StdRng`]), so streams are statistically solid and fully
//! reproducible — which is all the simulations need (they never require
//! cryptographic randomness).
//!
//! The numeric streams differ from crates.io `rand`'s `StdRng` (ChaCha12), so
//! seeds are not portable across the two implementations. Within this
//! workspace that is invisible: every consumer treats the RNG as an opaque
//! deterministic stream.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;
pub mod seq;

/// A source of random `u64` words. Object-safe; everything else builds on it.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        crate::unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that uniform samples of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform sample. Consumes the range (they are cheap to build).
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
pub(crate) fn unit_f64(word: u64) -> f64 {
    // 53 top bits -> [0, 1)
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
pub(crate) fn unit_f32(word: u64) -> f32 {
    // 24 top bits -> [0, 1)
    (word >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Uniform u64 in `[0, span)` via widening multiply (no modulo bias worth
/// caring about at simulation scale).
#[inline]
pub(crate) fn below(word: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(below(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty, $unit:ident);*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = $unit(rng.next_u64());
                let v = self.start + u * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                lo + $unit(rng.next_u64()) * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, unit_f32; f64, unit_f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
