//! # fleet-loadgen
//!
//! The open-loop fleet load harness: drives a real
//! [`fleet_transport::TransportServer`] with a synthetic device fleet and
//! reports what the middleware did under that load.
//!
//! The harness is split so determinism and measurement never mix:
//!
//! * [`schedule`] — **deterministic** workload generation. Arrival times
//!   and gradient delays come from the `fleet-device` models (phone
//!   profiles, thermal state, network transfer + RTT); the result is a
//!   virtual-time event stream whose FNV-1a digest is bit-stable across
//!   runs and thread counts, and pinned in CI.
//! * [`fleet`] — real [`fleet_server::Worker`]s over a shared synthetic
//!   dataset, byte-identical per seed.
//! * [`driver`] — replays a schedule over real client connections. All
//!   wall-clock access goes through the telemetry sink, never `Instant`.
//! * [`report`] — one `fleet-bench-v2` entry per run: latency
//!   percentiles, queue depths, per-shard apply rates, rejection/retry
//!   counts, max RSS and CPU seconds.
//!
//! The `fleet_load` example binary (in `examples/`) wires the pieces into
//! a worker-count sweep over a UDS endpoint.

#![forbid(unsafe_code)]

pub mod driver;
pub mod fleet;
pub mod report;
pub mod schedule;

pub use driver::{drive, DriveOptions, DriveStats};
pub use fleet::{build_fleet, model_parameters, FleetShape};
pub use report::{load_entry, load_report};
pub use schedule::{Event, EventKind, Schedule, SpecError, WorkloadSpec};
