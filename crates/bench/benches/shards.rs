//! Shard-scaling of the parameter-server aggregation hot path: per-submit
//! cost of [`ParameterServer::submit`] as the range-partitioned shard count
//! grows, on a large flat model (1M parameters) and on a small one (64k)
//! where the fan-out overhead is expected to dominate.
//!
//! Run via `scripts/ci.sh` (or set `FLEET_BENCH_JSON=BENCH_shards.json`) to
//! record the aggregation-throughput trajectory; timings are per-machine, so
//! compare runs from the same host only. The companion determinism tests
//! guarantee the *outputs* are bit-for-bit identical at every shard count —
//! this bench only measures how much wall-clock the fan-out buys.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fleet_core::{ApplyMode, DynSgd, ParameterServer, WorkerUpdate};
use fleet_data::LabelDistribution;
use fleet_ml::Gradient;
use fleet_server::TaskTable;

/// 1M parameters (4 MB): large enough that splitting, scaling and applying
/// dominate the per-submit cost.
const LARGE_MODEL: usize = 1 << 20;
/// 64k parameters: small enough that thread fan-out is mostly overhead.
const SMALL_MODEL: usize = 1 << 16;

fn bench_sharded_submit(c: &mut Criterion, name: &str, model_size: usize) {
    for shards in [1usize, 2, 4, 8] {
        c.bench_with_input(BenchmarkId::new(name, shards), &shards, |b, &shards| {
            let mut server = ParameterServer::new(vec![0.0; model_size], DynSgd::new(), 0.01, 1)
                .with_shards(shards);
            let template = Gradient::from_vec(vec![0.01; model_size]);
            let labels = LabelDistribution::from_labels(&[0, 1, 2, 3, 4], 10);
            let mut staleness = 0u64;
            b.iter(|| {
                staleness = (staleness + 1) % 20;
                let update = WorkerUpdate::new(template.clone(), staleness, labels.clone(), 100, 7);
                black_box(server.submit(update))
            });
        });
    }
}

fn shard_benches(c: &mut Criterion) {
    bench_sharded_submit(c, "sharded_submit_1m", LARGE_MODEL);
    bench_sharded_submit(c, "sharded_submit_64k", SMALL_MODEL);

    // K = 4 on the large model: the apply pass folds four pending segments
    // per shard, so the fan-out amortises the spawn cost over more work.
    // Lockstep-vs-per-shard pairs at each shard count: the per-shard mode
    // pays the vector-clock staleness attribution (one Λ(τ_s) evaluation
    // per shard, against the read clock the update carries) on top of the
    // identical split/scale/apply work, so the pair isolates that overhead.
    for shards in [1usize, 8] {
        for (name, mode) in [
            ("sharded_submit_1m_k4", ApplyMode::Lockstep),
            ("pershard_submit_1m_k4", ApplyMode::PerShard),
        ] {
            c.bench_with_input(BenchmarkId::new(name, shards), &shards, |b, &shards| {
                let mut server =
                    ParameterServer::new(vec![0.0; LARGE_MODEL], DynSgd::new(), 0.01, 4)
                        .with_shards(shards)
                        .with_apply_mode(mode);
                let template = Gradient::from_vec(vec![0.01; LARGE_MODEL]);
                let labels = LabelDistribution::from_labels(&[0, 1, 2, 3, 4], 10);
                b.iter(|| {
                    let mut update = WorkerUpdate::new(template.clone(), 3, labels.clone(), 100, 7);
                    if mode == ApplyMode::PerShard {
                        // A coherent read three updates in the past — the
                        // steady-state shape of a mildly stale worker.
                        update.read_clock = Some(
                            server
                                .shard_clocks()
                                .iter()
                                .map(|c| c.saturating_sub(3))
                                .collect(),
                        );
                    }
                    black_box(server.submit(update))
                });
            });
        }
    }

    // The chaos-overhead pair: the fault-tolerant protocol wraps every
    // submit in a lease issue + result classification (dedup against the
    // completed set, expiry against the deadline). Benchmarked against the
    // identical plain submit at 8 shards, the pair isolates what the
    // lease/dedup bookkeeping costs per update — it should be noise next to
    // the 4 MB split/scale/apply work.
    for (name, leased) in [("plain_submit_1m", false), ("leased_submit_1m", true)] {
        c.bench_with_input(BenchmarkId::new(name, 8usize), &8usize, |b, &shards| {
            let mut server = ParameterServer::new(vec![0.0; LARGE_MODEL], DynSgd::new(), 0.01, 1)
                .with_shards(shards);
            let mut table = TaskTable::new();
            let template = Gradient::from_vec(vec![0.01; LARGE_MODEL]);
            let labels = LabelDistribution::from_labels(&[0, 1, 2, 3, 4], 10);
            let mut round = 0u64;
            b.iter(|| {
                round += 1;
                let update = WorkerUpdate::new(template.clone(), 3, labels.clone(), 100, 7);
                if leased {
                    let task_id = table.issue(7, round, 6);
                    table.reclaim_expired(round);
                    black_box(table.classify(task_id, 7));
                }
                black_box(server.submit(update))
            });
        });
    }
}

criterion_group!(benches, shard_benches);
criterion_main!(benches);
