#!/usr/bin/env bash
# CI gate for the FLeet reproduction workspace.
#
#   scripts/ci.sh           full gate: fmt, clippy, build, fleet-lint
#                           (workspace invariant rules, also emitting
#                           fleet_lint_findings.json), tier-1 tests,
#                           scalar-forced parity suites, determinism digest
#                           sweep (threads x SIMD; shard + CNN-training +
#                           per-shard digests, checked against the pinned
#                           values in scripts/expected_digests.txt), the
#                           multi-process socket smoke (a TransportServer +
#                           3 worker processes over UDS must reproduce the
#                           pinned in-process digest bit-for-bit) and the
#                           socket chaos smoke (torn frame, dead peer,
#                           overload; run twice, digests must agree), the
#                           kill-restart chaos smoke (a durable server
#                           process SIGKILLed mid-run, a replacement
#                           recovers checkpoint + journal from disk; run
#                           twice, the digest is pinned as chaos_kill and
#                           must equal the uninterrupted trajectory), the
#                           loadgen smoke (the open-loop workload-schedule
#                           digest must be bit-identical at two
#                           FLEET_NUM_THREADS settings and match the pinned
#                           loadgen value, then a small fleet_load sweep
#                           writes FLEET_load.json which must validate as
#                           fleet-bench-v2), bench smoke writing
#                           BENCH_kernels.json, BENCH_shards.json,
#                           BENCH_conv.json, BENCH_transport.json and
#                           BENCH_durability.json
#   scripts/ci.sh --quick   skip the digest sweep and the bench smoke (the
#                           scalar-forced parity suites and fleet-lint still
#                           run: on hosts whose dispatcher auto-selects AVX2,
#                           tier-1 alone never exercises the fallback path)
#
# Env knobs:
#   FLEET_BENCH_COMPARE=1       diff each fresh BENCH_*.json against the
#                               committed baseline via
#                               scripts/bench_compare.py and fail above the
#                               relative-slowdown threshold
#   FLEET_BENCH_MAX_SLOWDOWN=R  threshold for the comparison (default 1.5)
#   FLEET_BENCH_TIME_MS=N       per-benchmark measurement window
#   FLEET_PIN_DIGESTS=1         re-pin scripts/expected_digests.txt from this
#                               host's sweep instead of failing on drift (the
#                               cross-combination identity check still
#                               applies). The digests flow through f32
#                               exp/ln, whose bit patterns depend on the
#                               host's libm — use this, deliberately, when
#                               moving the reference host, and commit the
#                               rewritten file with an explanation.
#
# The bench smoke keeps machine-readable perf records (BENCH_kernels.json,
# BENCH_shards.json and BENCH_conv.json at the repo root) so successive PRs
# can track the kernel, aggregation-throughput and convolution trajectories;
# timings are per-machine (the JSON meta block records threads + ISA features
# and whether the fan-out ran inline), so compare runs from the same host
# only.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

# The workspace invariant gate: unsafe-audit, hash-iteration, wall-clock,
# thread-hygiene and wire-symmetry rules (see crates/lint/README.md). Runs in
# quick mode too — it is fast and these are exactly the invariants the digest
# sweep below depends on. The full gate additionally emits the machine-
# readable findings/audit record next to the bench JSON.
echo "==> fleet-lint (workspace invariant gate)"
cargo run --release -q -p fleet-lint
if [[ "${1:-}" != "--quick" ]]; then
    cargo run --release -q -p fleet-lint -- --json > fleet_lint_findings.json
    echo "==> wrote fleet_lint_findings.json"
fi

echo "==> cargo test -q (tier-1)"
cargo test -q

# Kernel correctness + SIMD/scalar parity property tests, and the
# direct-vs-im2col convolution parity suite, forced onto the scalar fallback.
# This runs in quick mode too: on hosts where dispatch auto-selects AVX2 the
# tier-1 suite never touches the scalar path, so skipping this here would
# leave that path entirely uncovered on PR builds.
echo "==> kernel + conv parity tests with SIMD dispatch forced off"
FLEET_SIMD=off cargo test --release -q -p fleet-ml kernels
FLEET_SIMD=off cargo test --release -q -p fleet-ml conv

# Reads one pinned digest (by name) from scripts/expected_digests.txt.
expected_digest() {
    awk -v key="$1" '$1 == key { print $2 }' scripts/expected_digests.txt
}

# Runs one benchmark and writes its JSON artifact; with FLEET_BENCH_COMPARE=1
# the previous artifact (the committed baseline) is diffed against the fresh
# numbers and a relative slowdown beyond the threshold fails the gate.
run_bench() {
    local bench="$1" json="$PWD/$2" time_ms="$3" baseline=""
    if [[ "${FLEET_BENCH_COMPARE:-0}" == "1" && -f "$json" ]]; then
        baseline="$json.baseline"
        cp "$json" "$baseline"
    fi
    echo "==> bench smoke ($bench -> $2)"
    FLEET_BENCH_TIME_MS="${FLEET_BENCH_TIME_MS:-$time_ms}" \
    FLEET_BENCH_JSON="$json" \
        cargo bench --bench "$bench"
    echo "==> wrote $2"
    if [[ -n "$baseline" ]]; then
        echo "==> bench compare ($2 vs committed baseline)"
        python3 scripts/bench_compare.py "$baseline" "$json"
        rm -f "$baseline"
    fi
}

if [[ "${1:-}" != "--quick" ]]; then
    # The kernels promise bit-for-bit identical results on any thread count
    # with SIMD dispatch on or off. Sweep all six combinations and require
    # one digest per contract — the lockstep sharded-simulation digest, the
    # CNN training digest (which drives the im2col convolution engine,
    # pooling and the batch fan-out) and the per-shard asynchronous-apply
    # digest (vector-clock staleness over the scripted flush schedule). Each
    # must also match the value pinned in scripts/expected_digests.txt: a
    # cross-combination mismatch means an ISA path or a fan-out partition
    # reassociated a reduction; a drift from the pinned value means the
    # numeric trajectory changed silently.
    echo "==> determinism digest sweep (FLEET_NUM_THREADS x FLEET_SIMD)"
    if [[ "${FLEET_PIN_DIGESTS:-0}" == "1" ]]; then
        # Re-pin mode: the first combination becomes the reference (the
        # cross-combination identity check below still applies) and the file
        # is rewritten at the end of the sweep.
        shard_ref=""
        cnn_ref=""
        pershard_ref=""
        chaos_l1_ref=""
        chaos_p1_ref=""
        chaos_l2_ref=""
        chaos_p2_ref=""
        socket_ref=""
        chaos_kill_ref=""
        loadgen_ref=""
    else
        shard_ref=$(expected_digest shard)
        cnn_ref=$(expected_digest cnn)
        pershard_ref=$(expected_digest pershard)
        chaos_l1_ref=$(expected_digest chaos_l1)
        chaos_p1_ref=$(expected_digest chaos_p1)
        chaos_l2_ref=$(expected_digest chaos_l2)
        chaos_p2_ref=$(expected_digest chaos_p2)
        socket_ref=$(expected_digest socket)
        chaos_kill_ref=$(expected_digest chaos_kill)
        loadgen_ref=$(expected_digest loadgen)
        if [[ -z "$shard_ref" || -z "$cnn_ref" || -z "$pershard_ref" ||
              -z "$chaos_l1_ref" || -z "$chaos_p1_ref" ||
              -z "$chaos_l2_ref" || -z "$chaos_p2_ref" || -z "$socket_ref" ||
              -z "$chaos_kill_ref" || -z "$loadgen_ref" ]]; then
            echo "FAIL: scripts/expected_digests.txt is missing a pinned digest"
            exit 1
        fi
    fi
    for threads in 1 4 7; do
        for simd in auto off; do
            simd_env=""
            [[ "$simd" == "off" ]] && simd_env="off"
            out=$(FLEET_NUM_THREADS=$threads FLEET_SIMD=$simd_env \
                cargo test --release -q -p fleet-tests --test parallel_determinism \
                -- --nocapture 2>&1) || {
                echo "FAIL: determinism tests at threads=$threads simd=$simd"
                exit 1
            }
            shard=$(grep -o 'shard-sweep digest: 0x[0-9a-f]*' <<<"$out" | head -1)
            cnn=$(grep -o 'cnn-train digest: 0x[0-9a-f]*' <<<"$out" | head -1)
            pershard=$(grep -o 'pershard digest: 0x[0-9a-f]*' <<<"$out" | head -1)
            chaos_l1=$(grep -o 'chaos-l1 digest: 0x[0-9a-f]*' <<<"$out" | head -1)
            chaos_p1=$(grep -o 'chaos-p1 digest: 0x[0-9a-f]*' <<<"$out" | head -1)
            chaos_l2=$(grep -o 'chaos-l2 digest: 0x[0-9a-f]*' <<<"$out" | head -1)
            chaos_p2=$(grep -o 'chaos-p2 digest: 0x[0-9a-f]*' <<<"$out" | head -1)
            if [[ -z "$shard" || -z "$cnn" || -z "$pershard" ||
                  -z "$chaos_l1" || -z "$chaos_p1" ||
                  -z "$chaos_l2" || -z "$chaos_p2" ]]; then
                echo "FAIL: missing digest line at threads=$threads simd=$simd"
                exit 1
            fi
            shard=${shard##* }
            cnn=${cnn##* }
            pershard=${pershard##* }
            chaos_l1=${chaos_l1##* }
            chaos_p1=${chaos_p1##* }
            chaos_l2=${chaos_l2##* }
            chaos_p2=${chaos_p2##* }
            echo "    threads=$threads simd=$simd -> shard $shard cnn $cnn pershard $pershard"
            echo "        chaos l1 $chaos_l1 p1 $chaos_p1 l2 $chaos_l2 p2 $chaos_p2"
            if [[ -z "$shard_ref" ]]; then
                shard_ref="$shard"
                cnn_ref="$cnn"
                pershard_ref="$pershard"
                chaos_l1_ref="$chaos_l1"
                chaos_p1_ref="$chaos_p1"
                chaos_l2_ref="$chaos_l2"
                chaos_p2_ref="$chaos_p2"
                continue
            fi
            for pair in "shard:$shard:$shard_ref" "cnn:$cnn:$cnn_ref" \
                        "pershard:$pershard:$pershard_ref" \
                        "chaos_l1:$chaos_l1:$chaos_l1_ref" \
                        "chaos_p1:$chaos_p1:$chaos_p1_ref" \
                        "chaos_l2:$chaos_l2:$chaos_l2_ref" \
                        "chaos_p2:$chaos_p2:$chaos_p2_ref"; do
                IFS=: read -r name got want <<<"$pair"
                if [[ "$got" != "$want" ]]; then
                    echo "FAIL: $name digest drifted from $want at threads=$threads simd=$simd"
                    exit 1
                fi
            done
        done
    done
    # Cross-process determinism: a real TransportServer plus three worker
    # *processes* over a Unix socket must land on the pinned digest — the
    # same trajectory the in-process protocol produces (the demo itself
    # asserts socket == in-process; the pin catches silent drift of both).
    echo "==> multi-process socket smoke (3 worker processes over uds)"
    out=$(cargo run --release -q -p fleet-examples --example socket_demo -- demo) || {
        echo "FAIL: multi-process socket demo"
        exit 1
    }
    socket=$(grep -o 'socket digest: 0x[0-9a-f]*' <<<"$out" | head -1)
    if [[ -z "$socket" ]]; then
        echo "FAIL: socket demo printed no digest"
        exit 1
    fi
    socket=${socket##* }
    echo "    socket -> $socket"
    if [[ -z "$socket_ref" ]]; then
        socket_ref="$socket"
    elif [[ "$socket" != "$socket_ref" ]]; then
        echo "FAIL: socket digest drifted from $socket_ref"
        exit 1
    fi

    # Fault tolerance under fire: the chaos choreography (worker killed
    # mid-upload with a torn frame, dead peer's lease reclaimed, straggler
    # upload expired, overload shed on the wire, duplicate deduplicated,
    # garbage connection) must complete with the server alive — twice, with
    # identical digests. The digest is checked for *stability*, not pinned:
    # it asserts the faulty trajectory is deterministic on this host.
    echo "==> socket chaos smoke (torn frame, dead peer, overload) x2"
    chaos_digest() {
        local out
        out=$(cargo run --release -q -p fleet-examples --example socket_demo -- chaos) || {
            echo "FAIL: socket chaos run"
            exit 1
        }
        grep -o 'chaos digest: 0x[0-9a-f]*' <<<"$out" | head -1
    }
    chaos_a=$(chaos_digest)
    chaos_b=$(chaos_digest)
    if [[ -z "$chaos_a" || "$chaos_a" != "$chaos_b" ]]; then
        echo "FAIL: chaos digest unstable across reruns ('$chaos_a' vs '$chaos_b')"
        exit 1
    fi
    echo "    chaos -> ${chaos_a##* } (stable across reruns)"

    # Durable crash recovery: a server process with checkpoints + a
    # write-ahead journal is SIGKILLed mid-run and a replacement process
    # recovers its state from disk; the finished model must be bit-for-bit
    # the uninterrupted trajectory. The digest is pinned (it must equal the
    # socket/in-process value — same schedule, one crash inside it) and the
    # scenario runs twice: the kill lands at a slightly different point each
    # time, and recovery must erase the difference.
    echo "==> kill-restart chaos smoke (SIGKILL mid-run, recover from disk) x2"
    kill_digest() {
        local out
        out=$(cargo run --release -q -p fleet-examples --example socket_demo -- kill) || {
            echo "FAIL: kill-restart chaos run"
            exit 1
        }
        grep -o 'chaos-kill digest: 0x[0-9a-f]*' <<<"$out" | head -1
    }
    kill_a=$(kill_digest)
    kill_b=$(kill_digest)
    if [[ -z "$kill_a" || "$kill_a" != "$kill_b" ]]; then
        echo "FAIL: chaos-kill digest unstable across reruns ('$kill_a' vs '$kill_b')"
        exit 1
    fi
    kill_a=${kill_a##* }
    echo "    chaos_kill -> $kill_a (stable across reruns)"
    if [[ -z "$chaos_kill_ref" ]]; then
        chaos_kill_ref="$kill_a"
    elif [[ "$kill_a" != "$chaos_kill_ref" ]]; then
        echo "FAIL: chaos_kill digest drifted from $chaos_kill_ref"
        exit 1
    fi

    # Open-loop load harness: the workload schedule is a pure function of
    # the spec — generated through the same deterministic fan-out as the
    # kernels, so its digest must be bit-identical across thread counts and
    # match the pinned value (workers=64 ops=2 seed=42). Then a small sweep
    # drives a real TransportServer over UDS and the resulting
    # FLEET_load.json must validate against the frozen fleet-bench-v2 shape
    # (and, with FLEET_BENCH_COMPARE=1, diff cleanly against the committed
    # artifact — latency percentiles included).
    echo "==> loadgen schedule digest (FLEET_NUM_THREADS=1 vs 7)"
    loadgen_digest() {
        local out
        out=$(FLEET_NUM_THREADS=$1 cargo run --release -q -p fleet-examples \
            --example fleet_load -- --digest-only --workers 64 --ops 2) || {
            echo "FAIL: fleet_load --digest-only at FLEET_NUM_THREADS=$1"
            exit 1
        }
        grep -o 'digest: 0x[0-9a-f]*' <<<"$out" | head -1
    }
    load_a=$(loadgen_digest 1)
    load_b=$(loadgen_digest 7)
    if [[ -z "$load_a" || "$load_a" != "$load_b" ]]; then
        echo "FAIL: loadgen digest differs across thread counts ('$load_a' vs '$load_b')"
        exit 1
    fi
    load_a=${load_a##* }
    echo "    loadgen -> $load_a (identical at 1 and 7 threads)"
    if [[ -z "$loadgen_ref" ]]; then
        loadgen_ref="$load_a"
    elif [[ "$load_a" != "$loadgen_ref" ]]; then
        echo "FAIL: loadgen digest drifted from $loadgen_ref"
        exit 1
    fi

    echo "==> loadgen smoke (fleet_load sweep over uds -> FLEET_load.json)"
    load_baseline=""
    if [[ "${FLEET_BENCH_COMPARE:-0}" == "1" && -f FLEET_load.json ]]; then
        load_baseline="FLEET_load.json.baseline"
        cp FLEET_load.json "$load_baseline"
    fi
    cargo run --release -q -p fleet-examples --example fleet_load -- \
        --workers 64,256 --ops 2 --connections 4 --json FLEET_load.json || {
        echo "FAIL: fleet_load sweep"
        exit 1
    }
    echo "==> wrote FLEET_load.json"
    python3 scripts/bench_compare.py --validate FLEET_load.json
    if [[ -n "$load_baseline" ]]; then
        echo "==> bench compare (FLEET_load.json vs committed baseline)"
        python3 scripts/bench_compare.py "$load_baseline" FLEET_load.json
        rm -f "$load_baseline"
    fi

    if [[ "${FLEET_PIN_DIGESTS:-0}" == "1" ]]; then
        # Keep the header comments, replace the pinned values.
        tmp=$(mktemp)
        grep '^#' scripts/expected_digests.txt > "$tmp" || true
        {
            echo "shard $shard_ref"
            echo "cnn $cnn_ref"
            echo "pershard $pershard_ref"
            echo "chaos_l1 $chaos_l1_ref"
            echo "chaos_p1 $chaos_p1_ref"
            echo "chaos_l2 $chaos_l2_ref"
            echo "chaos_p2 $chaos_p2_ref"
            echo "socket $socket_ref"
            echo "chaos_kill $chaos_kill_ref"
            echo "loadgen $loadgen_ref"
        } >> "$tmp"
        mv "$tmp" scripts/expected_digests.txt
        echo "==> re-pinned scripts/expected_digests.txt (commit it deliberately)"
    fi

    # The parity suites again, this time with the dispatcher auto-detecting
    # (the scalar-forced run already happened above, in both modes).
    echo "==> kernel + conv parity tests with SIMD dispatch auto"
    cargo test --release -q -p fleet-ml kernels
    cargo test --release -q -p fleet-ml conv

    run_bench ml_kernels BENCH_kernels.json 200
    run_bench shards BENCH_shards.json 200
    run_bench conv BENCH_conv.json 400
    run_bench transport BENCH_transport.json 200
    run_bench durability BENCH_durability.json 200
fi

echo "==> CI gate passed"
