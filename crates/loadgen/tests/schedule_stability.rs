//! Schedule determinism: the parallel generation path must be bit-stable
//! across thread counts and sensitive to the seed.
//!
//! The thread count is pinned high for the whole test process (it is
//! cached process-wide), and every parallel schedule is compared against
//! the serial oracle — if any fan-out partition reassociated per-worker
//! state, the comparison would catch it. CI additionally pins the digest
//! across *processes* at two `FLEET_NUM_THREADS` settings.

use fleet_loadgen::{Schedule, WorkloadSpec};

fn pin_threads() {
    // First caller wins; both tests want the same pin.
    let _ = fleet_parallel::set_max_threads(8);
}

#[test]
fn parallel_generation_matches_the_serial_oracle() {
    pin_threads();
    for (workers, ops, seed) in [(1usize, 1usize, 0u64), (13, 3, 42), (96, 4, 7)] {
        let spec = WorkloadSpec {
            workers,
            ops_per_worker: ops,
            seed,
            ..WorkloadSpec::default()
        };
        let parallel = Schedule::generate(&spec).expect("spec is valid");
        let serial = Schedule::generate_serial(&spec).expect("spec is valid");
        assert_eq!(
            parallel, serial,
            "parallel generation diverged from the serial oracle \
             (workers={workers} ops={ops} seed={seed})"
        );
        assert_eq!(parallel.digest(), serial.digest());
    }
}

#[test]
fn digest_is_repeatable_and_seed_sensitive() {
    pin_threads();
    let spec = WorkloadSpec {
        workers: 48,
        ops_per_worker: 3,
        ..WorkloadSpec::default()
    };
    let a = Schedule::generate(&spec).expect("spec is valid");
    let b = Schedule::generate(&spec).expect("spec is valid");
    assert_eq!(a.digest(), b.digest(), "same spec, same digest");

    let reseeded = WorkloadSpec {
        seed: spec.seed + 1,
        ..spec
    };
    let c = Schedule::generate(&reseeded).expect("spec is valid");
    assert_ne!(a.digest(), c.digest(), "seed must move the digest");
}
