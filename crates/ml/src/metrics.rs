//! Evaluation metrics used by the paper's experiments.
//!
//! * Top-1 accuracy — Figures 3, 8, 9, 10, 11, 15.
//! * F1-score @ top-k — Figure 6 (the hashtag-recommendation quality metric:
//!   how many of the top-5 recommended hashtags were actually used and how
//!   many of the used hashtags were recommended).

use std::collections::HashSet;

/// Fraction of predictions equal to the label. Returns 0.0 for empty input.
///
/// # Example
///
/// ```
/// use fleet_ml::metrics::accuracy;
/// assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
/// ```
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f32 {
    if predictions.is_empty() || predictions.len() != labels.len() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p == l)
        .count();
    correct as f32 / predictions.len() as f32
}

/// Per-class accuracy: fraction of examples with label `class` that were
/// predicted correctly. Returns `None` when no example carries the class
/// (Figure 9a reports accuracy restricted to class 0).
pub fn class_accuracy(predictions: &[usize], labels: &[usize], class: usize) -> Option<f32> {
    let total = labels.iter().filter(|&&l| l == class).count();
    if total == 0 || predictions.len() != labels.len() {
        return None;
    }
    let correct = predictions
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| **l == class && p == l)
        .count();
    Some(correct as f32 / total as f32)
}

/// Precision/recall/F1 for one recommendation: `recommended` is the ranked
/// top-k output, `actual` the ground-truth set.
///
/// Returns `(precision, recall, f1)`, all zero when either side is empty.
pub fn precision_recall_f1(recommended: &[usize], actual: &[usize]) -> (f32, f32, f32) {
    if recommended.is_empty() || actual.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let actual_set: HashSet<usize> = actual.iter().cloned().collect();
    let hits = recommended
        .iter()
        .filter(|r| actual_set.contains(r))
        .count() as f32;
    let precision = hits / recommended.len() as f32;
    let recall = hits / actual_set.len() as f32;
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    (precision, recall, f1)
}

/// Mean F1-score @ top-k over a set of (recommendation, ground-truth) pairs,
/// the quality metric of the paper's §3.1 (Figure 6).
pub fn mean_f1_at_k(pairs: &[(Vec<usize>, Vec<usize>)]) -> f32 {
    if pairs.is_empty() {
        return 0.0;
    }
    let total: f32 = pairs
        .iter()
        .map(|(rec, act)| precision_recall_f1(rec, act).2)
        .sum();
    total / pairs.len() as f32
}

/// Utility accumulating a running average (used by the experiment harnesses
/// when reporting per-chunk metrics).
#[derive(Debug, Clone, Default)]
pub struct RunningMean {
    sum: f64,
    count: u64,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }

    /// Current mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 2, 3], &[0, 1, 2, 3]), 1.0);
        assert_eq!(accuracy(&[0, 0, 0, 0], &[0, 1, 2, 3]), 0.25);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[1], &[1, 2]), 0.0);
    }

    #[test]
    fn class_accuracy_restricts_to_class() {
        let preds = [0, 1, 0, 2];
        let labels = [0, 0, 0, 2];
        assert_eq!(class_accuracy(&preds, &labels, 0), Some(2.0 / 3.0));
        assert_eq!(class_accuracy(&preds, &labels, 2), Some(1.0));
        assert_eq!(class_accuracy(&preds, &labels, 5), None);
    }

    #[test]
    fn f1_perfect_and_disjoint() {
        let (p, r, f1) = precision_recall_f1(&[1, 2, 3], &[1, 2, 3]);
        assert_eq!((p, r, f1), (1.0, 1.0, 1.0));
        let (p, r, f1) = precision_recall_f1(&[4, 5], &[1, 2]);
        assert_eq!((p, r, f1), (0.0, 0.0, 0.0));
    }

    #[test]
    fn f1_partial_overlap() {
        // 5 recommended, 2 actually used, 1 hit.
        let (p, r, f1) = precision_recall_f1(&[1, 2, 3, 4, 5], &[1, 9]);
        assert!((p - 0.2).abs() < 1e-6);
        assert!((r - 0.5).abs() < 1e-6);
        assert!((f1 - 2.0 * 0.2 * 0.5 / 0.7).abs() < 1e-6);
    }

    #[test]
    fn f1_empty_sides() {
        assert_eq!(precision_recall_f1(&[], &[1]), (0.0, 0.0, 0.0));
        assert_eq!(precision_recall_f1(&[1], &[]), (0.0, 0.0, 0.0));
    }

    #[test]
    fn mean_f1_averages() {
        let pairs = vec![(vec![1, 2], vec![1, 2]), (vec![3], vec![4])];
        assert!((mean_f1_at_k(&pairs) - 0.5).abs() < 1e-6);
        assert_eq!(mean_f1_at_k(&[]), 0.0);
    }

    #[test]
    fn running_mean_accumulates() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), 0.0);
        m.push(2.0);
        m.push(4.0);
        assert_eq!(m.mean(), 3.0);
        assert_eq!(m.count(), 2);
    }
}
