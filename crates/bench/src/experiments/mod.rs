//! One module per table/figure of the paper's evaluation.

pub mod common;
pub mod energy_budget;
pub mod fig03_weak_workers;
pub mod fig04_device_linearity;
pub mod fig06_online_vs_standard;
pub mod fig07_staleness_distribution;
pub mod fig08_staleness_impact;
pub mod fig09_similarity_boosting;
pub mod fig10_iid_data;
pub mod fig11_differential_privacy;
pub mod fig12_iprof_latency;
pub mod fig13_iprof_energy;
pub mod fig14_resource_allocation;
pub mod fig15_controller_thresholds;
pub mod table01_models;
pub mod table02_caloree_transfer;

use crate::Scale;

/// Runs every experiment in sequence (the `all_experiments` binary).
pub fn run_all(scale: Scale) {
    table01_models::run(scale);
    fig03_weak_workers::run(scale);
    fig04_device_linearity::run(scale);
    fig06_online_vs_standard::run(scale);
    fig07_staleness_distribution::run(scale);
    fig08_staleness_impact::run(scale);
    fig09_similarity_boosting::run(scale);
    fig10_iid_data::run(scale);
    fig11_differential_privacy::run(scale);
    fig12_iprof_latency::run(scale);
    fig13_iprof_energy::run(scale);
    table02_caloree_transfer::run(scale);
    fig14_resource_allocation::run(scale);
    fig15_controller_thresholds::run(scale);
    energy_budget::run(scale);
}
