//! End-to-end integration test of the FLeet middleware: workers and server
//! exchanging protocol messages (including a pass through the binary wire
//! codec), the controller admitting tasks, I-Prof bounding workloads, and
//! AdaSGD folding the gradients into a model that actually improves.

use fleet_device::profile::catalogue;
use fleet_device::Device;
use fleet_ml::metrics::accuracy;
use fleet_server::protocol::TaskResponse;
use fleet_server::wire::{decode_request, decode_result, encode_request, encode_result};
use fleet_server::{FleetServer, FleetServerConfig, Worker};
use fleet_tests::{small_model, small_world};
use std::sync::Arc;

#[test]
fn full_protocol_round_trips_improve_the_model() {
    let (train, test, users) = small_world(1200, 8, 3);
    let train = Arc::new(train);
    let mut server = FleetServer::new(
        small_model(0).parameters(),
        FleetServerConfig::builder()
            .num_classes(10)
            .learning_rate(0.05)
            .build()
            .expect("server config is valid"),
    );
    let phones = catalogue();
    let mut workers: Vec<Worker> = users
        .into_iter()
        .enumerate()
        .map(|(i, indices)| {
            Worker::new(
                i as u64,
                Device::new(phones[i % phones.len()].clone(), i as u64),
                Arc::clone(&train),
                indices,
                small_model(0),
                1000 + i as u64,
            )
        })
        .collect();

    let eval_indices: Vec<usize> = (0..test.len()).collect();
    let (eval_x, eval_y) = test.batch(&eval_indices);
    let mut eval_model = small_model(0);
    eval_model.set_parameters(server.parameters()).unwrap();
    let before = accuracy(&eval_model.predict(&eval_x).unwrap(), &eval_y);

    let mut accepted = 0;
    for _ in 0..25 {
        for worker in workers.iter_mut() {
            // Ship the request through the wire codec, as a real deployment would.
            let request = decode_request(encode_request(&worker.request())).expect("wire request");
            match server.handle_request(&request) {
                TaskResponse::Assignment(mut assignment) => {
                    assignment.mini_batch_size = assignment.mini_batch_size.min(32);
                    let result = worker.execute(&assignment).expect("compatible model");
                    let result = decode_result(encode_result(&result)).expect("wire result");
                    let ack = server.handle_result(result);
                    assert!(ack.scaling_factor > 0.0 && ack.scaling_factor <= 1.0);
                    accepted += 1;
                }
                TaskResponse::Rejected(reason) => panic!("unexpected rejection: {reason:?}"),
            }
        }
    }
    assert_eq!(server.clock(), accepted);

    eval_model.set_parameters(server.parameters()).unwrap();
    let after = accuracy(&eval_model.predict(&eval_x).unwrap(), &eval_y);
    assert!(
        after > before + 0.15,
        "global model should improve: {before:.3} -> {after:.3}"
    );
}

#[test]
fn battery_drain_stays_small_per_task() {
    // §3.1: each learning task should cost a tiny fraction of the battery.
    let (train, _, users) = small_world(600, 4, 9);
    let train = Arc::new(train);
    let mut worker = Worker::new(
        0,
        Device::new(catalogue()[0].clone(), 5),
        Arc::clone(&train),
        users[0].clone(),
        small_model(0),
        1,
    );
    let mut server = FleetServer::new(
        small_model(0).parameters(),
        FleetServerConfig::builder()
            .num_classes(10)
            .build()
            .expect("server config is valid"),
    );
    let request = worker.request();
    if let TaskResponse::Assignment(mut assignment) = server.handle_request(&request) {
        assignment.mini_batch_size = assignment.mini_batch_size.min(100);
        let result = worker.execute(&assignment).unwrap();
        assert!(
            result.energy_pct < 1.0,
            "one task should cost far less than 1% battery, got {}",
            result.energy_pct
        );
    } else {
        panic!("task should have been admitted");
    }
}
