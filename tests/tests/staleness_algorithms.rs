//! Cross-crate integration tests of the staleness-aware learning algorithms
//! under the asynchronous simulation engine (the §3.2 experiments at test
//! scale).

use fleet_core::{AdaSgd, DynSgd, FedAvg, Ssgd};
use fleet_server::{AsyncSimulation, SimulationConfig, StalenessDistribution, TrainingHistory};
use fleet_tests::{small_model, small_world};

fn run_with(
    staleness: StalenessDistribution,
    steps: usize,
    run: impl FnOnce(&AsyncSimulation) -> TrainingHistory,
) -> TrainingHistory {
    let (train, test, users) = small_world(2000, 40, 11);
    let config = SimulationConfig {
        steps,
        learning_rate: 0.05,
        batch_size: 40,
        staleness,
        eval_every: steps / 4,
        eval_examples: 400,
        seed: 21,
        ..SimulationConfig::default()
    };
    let sim = AsyncSimulation::new(&train, &test, &users, config);
    run(&sim)
}

#[test]
fn synchronous_baseline_converges() {
    let history = run_with(StalenessDistribution::None, 500, |sim| {
        sim.run(&mut small_model(1), Ssgd::new())
    });
    assert!(
        history.best_accuracy() > 0.45,
        "SSGD should converge, got {}",
        history.best_accuracy()
    );
}

#[test]
fn staleness_hurts_but_dampening_helps() {
    let heavy = StalenessDistribution::Gaussian {
        mean: 12.0,
        std: 4.0,
    };
    let steps = 500;
    let ssgd = run_with(StalenessDistribution::None, steps, |sim| {
        sim.run(&mut small_model(1), Ssgd::new())
    });
    let ada = run_with(heavy, steps, |sim| {
        sim.run(&mut small_model(1), AdaSgd::new(10, 99.7))
    });
    let fed = run_with(heavy, steps, |sim| {
        sim.run(&mut small_model(1), FedAvg::new())
    });

    // The ideal staleness-free run is the upper bound.
    assert!(ssgd.best_accuracy() >= ada.best_accuracy() - 0.05);
    // The staleness-aware algorithm should not be (meaningfully) worse than
    // the unaware one.
    assert!(
        ada.best_accuracy() >= fed.best_accuracy() - 0.05,
        "AdaSGD {} vs FedAvg {}",
        ada.best_accuracy(),
        fed.best_accuracy()
    );
}

#[test]
fn adasgd_and_dynsgd_dampen_stale_updates_differently() {
    let heavy = StalenessDistribution::Constant(24);
    let ada = run_with(heavy, 200, |sim| {
        sim.run(&mut small_model(2), AdaSgd::new(10, 99.7))
    });
    let dyn_ = run_with(heavy, 200, |sim| {
        sim.run(&mut small_model(2), DynSgd::new())
    });
    // With constant staleness 24, DynSGD's weight is exactly 1/25 once the
    // run is past its warm-up (staleness is clamped to the clock early on);
    // AdaSGD's exponential dampening plus boosting gives a different profile.
    let dyn_late = *dyn_.scaling_factors.last().unwrap();
    assert!((dyn_late - 1.0 / 25.0).abs() < 1e-9, "got {dyn_late}");
    let ada_late = *ada.scaling_factors.last().unwrap();
    assert!(ada_late > 0.0 && ada_late <= 1.0);
    assert!((ada_late - dyn_late).abs() > 1e-6);
}
