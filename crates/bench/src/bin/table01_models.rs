//! Regenerates the corresponding table/figure of the paper. Pass `--quick`
//! for a fast smoke-test configuration.
fn main() {
    fleet_bench::experiments::table01_models::run(fleet_bench::Scale::from_args());
}
