//! Static hardware characteristics of simulated device models and the
//! catalogue of named devices used by the experiments.
//!
//! The per-sample compute cost and energy cost are calibrated against the
//! ranges the paper reports in Fig. 4 (e.g. ~20 s for a mini-batch of 3200 on
//! a Galaxy S7 versus ~5 s on an Honor 10, and 7–51 Gflops across the device
//! generations mentioned in §2.2).

use serde::{Deserialize, Serialize};

/// Static description of one device model (e.g. "Galaxy S7").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Marketing name; doubles as the device-model key used by I-Prof's
    /// personalised models.
    pub name: String,
    /// Seconds of computation per sample when running on the big cores at a
    /// nominal 30 °C.
    pub base_secs_per_sample: f32,
    /// Battery percentage consumed per sample at nominal temperature.
    pub base_energy_pct_per_sample: f32,
    /// Number of "big" cores (0 for symmetric ARMv7 devices).
    pub big_cores: u32,
    /// Number of "LITTLE" (or symmetric) cores.
    pub little_cores: u32,
    /// Maximum frequency of a big core in GHz.
    pub big_freq_ghz: f32,
    /// Maximum frequency of a LITTLE core in GHz.
    pub little_freq_ghz: f32,
    /// Total memory in MB.
    pub total_memory_mb: f32,
    /// Battery capacity in mWh (modern phones: ~11000 mWh or more).
    pub battery_mwh: f32,
    /// How strongly the compute slope degrades with temperature
    /// (fractional slowdown per °C above ambient).
    pub thermal_sensitivity: f32,
    /// Relative run-to-run noise of latency/energy measurements (std-dev as a
    /// fraction of the mean).
    pub measurement_noise: f32,
}

impl DeviceProfile {
    /// Sum of the maximum frequencies over all cores in GHz — one of the
    /// features I-Prof reads from the Android API.
    pub fn sum_max_freq_ghz(&self) -> f32 {
        self.big_cores as f32 * self.big_freq_ghz + self.little_cores as f32 * self.little_freq_ghz
    }

    /// Whether the SoC is an ARM big.LITTLE design.
    pub fn is_big_little(&self) -> bool {
        self.big_cores > 0 && self.little_cores > 0
    }

    /// Energy consumed per non-idle CPU second as a fraction of the battery,
    /// derived from the per-sample figures (the feature I-Prof's energy
    /// predictor uses).
    pub fn energy_per_cpu_second(&self) -> f32 {
        if self.base_secs_per_sample <= 0.0 {
            0.0
        } else {
            (self.base_energy_pct_per_sample / 100.0) / self.base_secs_per_sample
        }
    }

    /// Convenience constructor for tests and custom scenarios.
    #[allow(clippy::too_many_arguments)]
    pub fn custom(
        name: &str,
        base_secs_per_sample: f32,
        base_energy_pct_per_sample: f32,
        big_cores: u32,
        little_cores: u32,
        big_freq_ghz: f32,
        little_freq_ghz: f32,
    ) -> Self {
        Self {
            name: name.to_string(),
            base_secs_per_sample,
            base_energy_pct_per_sample,
            big_cores,
            little_cores,
            big_freq_ghz,
            little_freq_ghz,
            total_memory_mb: 4096.0,
            battery_mwh: 11000.0,
            thermal_sensitivity: 0.01,
            measurement_noise: 0.05,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn profile(
    name: &str,
    secs_per_sample: f32,
    energy_pct_per_sample: f32,
    big: u32,
    little: u32,
    big_ghz: f32,
    little_ghz: f32,
    mem_mb: f32,
    battery_mwh: f32,
    thermal: f32,
) -> DeviceProfile {
    DeviceProfile {
        name: name.to_string(),
        base_secs_per_sample: secs_per_sample,
        base_energy_pct_per_sample: energy_pct_per_sample,
        big_cores: big,
        little_cores: little,
        big_freq_ghz: big_ghz,
        little_freq_ghz: little_ghz,
        total_memory_mb: mem_mb,
        battery_mwh,
        thermal_sensitivity: thermal,
        measurement_noise: 0.05,
    }
}

/// The device models used by the evaluation (the AWS Device Farm set of
/// Fig. 12(a) plus the lab devices of Figs. 13/14 and Table 2). Per-sample
/// costs are calibrated to reproduce the heterogeneity of Fig. 4.
pub fn catalogue() -> Vec<DeviceProfile> {
    vec![
        // name, s/sample, %batt/sample, big, little, bigGHz, littleGHz, memMB, battery mWh, thermal
        profile(
            "Galaxy S6",
            0.0060,
            2.2e-4,
            4,
            4,
            2.1,
            1.5,
            3072.0,
            9800.0,
            0.012,
        ),
        profile(
            "Galaxy S6 Edge",
            0.0058,
            2.1e-4,
            4,
            4,
            2.1,
            1.5,
            3072.0,
            9900.0,
            0.012,
        ),
        profile(
            "Nexus 6", 0.0085, 2.8e-4, 0, 4, 0.0, 2.7, 3072.0, 12400.0, 0.015,
        ),
        profile(
            "MotoG3", 0.0180, 4.5e-4, 0, 4, 0.0, 1.4, 2048.0, 9200.0, 0.010,
        ),
        profile(
            "Moto G (4)",
            0.0140,
            4.0e-4,
            0,
            8,
            0.0,
            1.5,
            2048.0,
            11400.0,
            0.010,
        ),
        profile(
            "Galaxy Note5",
            0.0055,
            2.0e-4,
            4,
            4,
            2.1,
            1.5,
            4096.0,
            11400.0,
            0.012,
        ),
        profile(
            "XT1096", 0.0160, 4.2e-4, 0, 4, 0.0, 2.5, 2048.0, 8800.0, 0.012,
        ),
        profile(
            "Galaxy S5",
            0.0120,
            3.6e-4,
            0,
            4,
            0.0,
            2.5,
            2048.0,
            10600.0,
            0.011,
        ),
        profile(
            "SM-N900P", 0.0130, 3.8e-4, 0, 4, 0.0, 2.3, 3072.0, 12200.0, 0.011,
        ),
        profile(
            "Nexus 5", 0.0150, 4.1e-4, 0, 4, 0.0, 2.3, 2048.0, 8700.0, 0.012,
        ),
        profile(
            "Lenovo TB-8504F",
            0.0200,
            5.0e-4,
            0,
            4,
            0.0,
            1.4,
            2048.0,
            18200.0,
            0.008,
        ),
        profile(
            "Venue 8", 0.0220, 5.4e-4, 0, 4, 0.0, 1.6, 1024.0, 15500.0, 0.008,
        ),
        profile(
            "Moto G (2nd Gen)",
            0.0250,
            6.0e-4,
            0,
            4,
            0.0,
            1.2,
            1024.0,
            8200.0,
            0.010,
        ),
        profile(
            "Pixel", 0.0048, 1.8e-4, 2, 2, 2.15, 1.6, 4096.0, 10600.0, 0.013,
        ),
        profile(
            "HTC U11", 0.0032, 1.3e-4, 4, 4, 2.45, 1.9, 4096.0, 11400.0, 0.014,
        ),
        profile(
            "SM-G950U1",
            0.0030,
            1.2e-4,
            4,
            4,
            2.35,
            1.9,
            4096.0,
            11400.0,
            0.014,
        ),
        profile(
            "XT1254", 0.0125, 3.7e-4, 0, 4, 0.0, 2.7, 3072.0, 14800.0, 0.011,
        ),
        profile(
            "HTC One A9",
            0.0145,
            4.0e-4,
            4,
            4,
            1.5,
            1.2,
            2048.0,
            7900.0,
            0.011,
        ),
        profile(
            "Galaxy S7",
            0.0063,
            2.4e-4,
            4,
            4,
            2.3,
            1.6,
            4096.0,
            11400.0,
            0.020,
        ),
        profile(
            "LG-H910", 0.0070, 2.6e-4, 2, 2, 2.35, 1.6, 4096.0, 12400.0, 0.013,
        ),
        profile(
            "LG-H830", 0.0090, 3.0e-4, 2, 4, 2.15, 1.4, 4096.0, 10600.0, 0.013,
        ),
        // Lab devices (energy SLO + resource allocation experiments).
        profile(
            "Honor 10", 0.0016, 4.0e-5, 4, 4, 2.36, 1.8, 6144.0, 12900.0, 0.030,
        ),
        profile(
            "Honor 9", 0.0024, 7.0e-5, 4, 4, 2.36, 1.8, 4096.0, 12200.0, 0.022,
        ),
        profile(
            "Galaxy S8",
            0.0029,
            1.1e-4,
            4,
            4,
            2.35,
            1.9,
            4096.0,
            11400.0,
            0.016,
        ),
        profile(
            "Galaxy S4 mini",
            0.0210,
            5.6e-4,
            0,
            2,
            0.0,
            1.7,
            1536.0,
            7200.0,
            0.009,
        ),
        profile(
            "Xperia E3",
            0.0250,
            6.2e-4,
            0,
            4,
            0.0,
            1.2,
            1024.0,
            8800.0,
            0.009,
        ),
    ]
}

/// Looks a profile up by name in the [`catalogue`].
pub fn by_name(name: &str) -> Option<DeviceProfile> {
    catalogue().into_iter().find(|p| p.name == name)
}

/// The 20 AWS Device Farm models used by the latency-SLO experiment
/// (Fig. 12(a) order).
pub fn aws_device_farm_set() -> Vec<DeviceProfile> {
    let names = [
        "Galaxy S6",
        "Galaxy S6 Edge",
        "Nexus 6",
        "MotoG3",
        "Moto G (4)",
        "Galaxy Note5",
        "XT1096",
        "Galaxy S5",
        "SM-N900P",
        "Nexus 5",
        "Lenovo TB-8504F",
        "Venue 8",
        "Moto G (2nd Gen)",
        "Pixel",
        "HTC U11",
        "SM-G950U1",
        "XT1254",
        "HTC One A9",
        "Galaxy S7",
        "LG-H910",
        "LG-H830",
    ];
    names.iter().filter_map(|n| by_name(n)).collect()
}

/// The 5 lab devices used for the energy-SLO and resource-allocation
/// experiments (§3.3, §3.4), in their log-in order.
pub fn lab_device_set() -> Vec<DeviceProfile> {
    [
        "Honor 10",
        "Galaxy S8",
        "Galaxy S7",
        "Galaxy S4 mini",
        "Xperia E3",
    ]
    .iter()
    .filter_map(|n| by_name(n))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_nonempty_and_unique() {
        let cat = catalogue();
        assert!(cat.len() >= 20);
        let mut names: Vec<&str> = cat.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cat.len(), "device names must be unique");
    }

    #[test]
    fn by_name_finds_known_devices() {
        assert!(by_name("Galaxy S7").is_some());
        assert!(by_name("Honor 10").is_some());
        assert!(by_name("Unobtainium Phone").is_none());
    }

    #[test]
    fn heterogeneity_spans_an_order_of_magnitude() {
        // §2.2: Galaxy S6 does 7.11 Gflops vs 51.4 on a Galaxy S10 — roughly a
        // 7x+ spread; our catalogue spans >10x in per-sample cost.
        let cat = catalogue();
        let min = cat
            .iter()
            .map(|p| p.base_secs_per_sample)
            .fold(f32::INFINITY, f32::min);
        let max = cat
            .iter()
            .map(|p| p.base_secs_per_sample)
            .fold(0.0f32, f32::max);
        assert!(max / min > 10.0, "spread was only {}", max / min);
    }

    #[test]
    fn aws_set_has_21_devices() {
        assert_eq!(aws_device_farm_set().len(), 21);
    }

    #[test]
    fn lab_set_matches_paper_order() {
        let lab = lab_device_set();
        assert_eq!(lab.len(), 5);
        assert_eq!(lab[0].name, "Honor 10");
        assert_eq!(lab[4].name, "Xperia E3");
    }

    #[test]
    fn sum_max_freq_accounts_for_all_cores() {
        let p = DeviceProfile::custom("t", 0.01, 1e-4, 4, 4, 2.0, 1.5);
        assert!((p.sum_max_freq_ghz() - 14.0).abs() < 1e-6);
        assert!(p.is_big_little());
        let sym = DeviceProfile::custom("s", 0.01, 1e-4, 0, 4, 0.0, 1.5);
        assert!(!sym.is_big_little());
    }

    #[test]
    fn energy_per_cpu_second_is_positive() {
        for p in catalogue() {
            assert!(p.energy_per_cpu_second() > 0.0, "{}", p.name);
        }
    }

    #[test]
    fn honor_10_is_fastest_lab_device() {
        let lab = lab_device_set();
        let honor = lab.iter().find(|p| p.name == "Honor 10").unwrap();
        assert!(lab
            .iter()
            .all(|p| p.base_secs_per_sample >= honor.base_secs_per_sample));
    }
}
