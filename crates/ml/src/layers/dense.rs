//! Fully-connected (dense) layer.

use crate::init::Initializer;
use crate::layer::Layer;
use crate::tensor::Tensor;
use crate::{MlError, Result};

/// A fully-connected layer computing `output = input · W + b`.
///
/// Input shape `[batch, in_features]`, output shape `[batch, out_features]`.
///
/// # Example
///
/// ```
/// use fleet_ml::layers::Dense;
/// use fleet_ml::layer::Layer;
/// use fleet_ml::tensor::Tensor;
///
/// # fn main() -> Result<(), fleet_ml::MlError> {
/// let mut dense = Dense::new(3, 2, fleet_ml::init::Initializer::Xavier, 1);
/// let out = dense.forward(&Tensor::zeros(&[4, 3]))?;
/// assert_eq!(out.shape(), &[4, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    weights: Tensor,
    bias: Tensor,
    grad_weights: Tensor,
    grad_bias: Tensor,
    /// Input cache reused across steps ([`Tensor::copy_from`] keeps the
    /// allocation); `None` only before the first forward pass.
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with `in_features` inputs and `out_features`
    /// outputs, initialising the weights with `init` and the given `seed`.
    pub fn new(in_features: usize, out_features: usize, init: Initializer, seed: u64) -> Self {
        let weights = init.init(
            &[in_features, out_features],
            in_features,
            out_features,
            seed,
        );
        Self {
            in_features,
            out_features,
            weights,
            bias: Tensor::zeros(&[out_features]),
            grad_weights: Tensor::zeros(&[in_features, out_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            cached_input: None,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Dense {
    fn name(&self) -> &str {
        "dense"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        if input.shape().len() != 2 || input.shape()[1] != self.in_features {
            return Err(MlError::ShapeMismatch {
                expected: vec![0, self.in_features],
                actual: input.shape().to_vec(),
                context: "Dense::forward".to_string(),
            });
        }
        let mut out = input.matmul(&self.weights);
        // Broadcast the bias over the batch with row-slice arithmetic.
        let bias = self.bias.data();
        for row in out.data_mut().chunks_mut(self.out_features) {
            for (o, &b) in row.iter_mut().zip(bias) {
                *o += b;
            }
        }
        match &mut self.cached_input {
            Some(cache) => cache.copy_from(input),
            cache => *cache = Some(input.clone()),
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self.cached_input.as_ref().ok_or_else(|| {
            MlError::InvalidArgument("Dense::backward called before forward".to_string())
        })?;
        if grad_output.shape().len() != 2 || grad_output.shape()[1] != self.out_features {
            return Err(MlError::ShapeMismatch {
                expected: vec![input.shape()[0], self.out_features],
                actual: grad_output.shape().to_vec(),
                context: "Dense::backward".to_string(),
            });
        }
        // dW += input^T · grad_output — fused TN kernel accumulating straight
        // into the gradient buffer, no transpose and no temporary.
        input.matmul_tn_acc_into(grad_output, &mut self.grad_weights);
        // db += per-column sums of grad_output, via row slices.
        let gb = self.grad_bias.data_mut();
        for row in grad_output.data().chunks(self.out_features) {
            for (g, &v) in gb.iter_mut().zip(row) {
                *g += v;
            }
        }
        // dx = grad_output · W^T — fused NT kernel, no transpose.
        Ok(grad_output.matmul_nt(&self.weights))
    }

    fn parameters(&self) -> Vec<&Tensor> {
        vec![&self.weights, &self.bias]
    }

    fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weights, &mut self.bias]
    }

    fn gradients(&self) -> Vec<&Tensor> {
        vec![&self.grad_weights, &self.grad_bias]
    }

    fn zero_gradients(&mut self) {
        self.grad_weights.fill(0.0);
        self.grad_bias.fill(0.0);
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_difference_check(layer: &mut Dense, input: &Tensor) {
        // Numerical gradient check on the first weight entry.
        let eps = 1e-2f32;
        let out = layer.forward(input).unwrap();
        let grad_out = Tensor::ones(out.shape());
        layer.zero_gradients();
        layer.forward(input).unwrap();
        layer.backward(&grad_out).unwrap();
        let analytic = layer.gradients()[0].data()[0];

        let original = layer.weights.data()[0];
        layer.weights.data_mut()[0] = original + eps;
        let plus = layer.forward(input).unwrap().sum();
        layer.weights.data_mut()[0] = original - eps;
        let minus = layer.forward(input).unwrap().sum();
        layer.weights.data_mut()[0] = original;
        let numeric = (plus - minus) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-2,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn forward_shape() {
        let mut d = Dense::new(5, 3, Initializer::Xavier, 0);
        let out = d.forward(&Tensor::zeros(&[7, 5])).unwrap();
        assert_eq!(out.shape(), &[7, 3]);
    }

    #[test]
    fn forward_rejects_bad_shape() {
        let mut d = Dense::new(5, 3, Initializer::Xavier, 0);
        assert!(d.forward(&Tensor::zeros(&[7, 4])).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut d = Dense::new(2, 2, Initializer::Zeros, 0);
        assert!(d.backward(&Tensor::zeros(&[1, 2])).is_err());
    }

    #[test]
    fn bias_applied() {
        let mut d = Dense::new(2, 2, Initializer::Zeros, 0);
        d.bias = Tensor::from_vec(vec![1.0, -1.0], &[2]);
        let out = d.forward(&Tensor::zeros(&[1, 2])).unwrap();
        assert_eq!(out.data(), &[1.0, -1.0]);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut d = Dense::new(3, 2, Initializer::Xavier, 11);
        let input = Tensor::from_vec(vec![0.5, -0.3, 0.8, 0.1, 0.9, -0.4], &[2, 3]);
        finite_difference_check(&mut d, &input);
    }

    #[test]
    fn zero_gradients_resets() {
        let mut d = Dense::new(2, 2, Initializer::Xavier, 0);
        let x = Tensor::ones(&[1, 2]);
        d.forward(&x).unwrap();
        d.backward(&Tensor::ones(&[1, 2])).unwrap();
        assert!(d.gradients()[0].l2_norm() > 0.0);
        d.zero_gradients();
        assert_eq!(d.gradients()[0].l2_norm(), 0.0);
    }

    #[test]
    fn parameter_count() {
        let d = Dense::new(4, 3, Initializer::Xavier, 0);
        assert_eq!(d.parameter_count(), 4 * 3 + 3);
    }
}
