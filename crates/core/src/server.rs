//! The asynchronous parameter server applying weighted worker gradients
//! (Eq. 3 of the paper), sharded for fan-out aggregation.
//!
//! # Shard layout
//!
//! The global model is one flat `Vec<f32>`, range-partitioned into
//! `num_shards` contiguous segments of near-equal length (the first
//! `len % num_shards` shards hold one extra element). Each shard owns a
//! pending buffer of scaled gradient segments and its own logical clock.
//!
//! # Apply modes
//!
//! [`ApplyMode`] decides how the shard clocks relate to each other:
//!
//! * **[`ApplyMode::Lockstep`]** (default): every shard applies its pending
//!   run on the same K-th submission, so the per-shard clocks advance in
//!   lockstep with the server's global clock and the sharding buys parallel
//!   bandwidth but no scheduling freedom. Staleness `τ = t − t_i` is
//!   measured against the global clock, so the semantics (and the Λ(τ)
//!   dampening of Fig. 8) are independent of the shard count.
//! * **[`ApplyMode::PerShard`]**: each shard owns an independent apply
//!   trigger — its own pending buffer reaching `K`, or an explicit
//!   [`ParameterServer::flush_shard`] — and the shard clocks become a
//!   genuine *vector clock*. Staleness is then defined **per shard** as the
//!   applied-update count on that shard between the worker's read (the
//!   [`crate::update::WorkerUpdate::read_clock`] snapshot) and its write:
//!   `τ_s = clock_s − read_clock[s]`. Λ(τ_s) — and the dampening floor —
//!   are evaluated per shard slice with the existing clamp, via
//!   [`crate::aggregator::Aggregator::scaling_factor_at`]. The global clock
//!   degrades to a *round counter* (it still advances on every K-th
//!   submission) while [`ParameterServer::shard_clocks`] carries the real
//!   per-shard state.
//!
//! # Determinism contract
//!
//! [`ParameterServer::submit`] splits each incoming gradient by shard range,
//! scales every element exactly once, and applies each shard's pending
//! buffer *in submission order*, element by element. Shards are disjoint
//! ranges processed via [`fleet_parallel::parallel_uneven_zip_mut`], which
//! assigns every range to exactly one thread, so the per-element sequence of
//! floating-point operations is identical to the serial single-shard loop.
//! In lockstep mode, model parameters are therefore **bit-for-bit identical
//! for any shard count and any thread count** (the workspace digest tests
//! sweep {1, 2, 8} shards; run them under `FLEET_NUM_THREADS=1/4/7` to sweep
//! threads). In per-shard mode the *shard count is part of the semantics*
//! (each shard slice carries its own τ), but results remain bit-for-bit
//! identical at any **thread** count for a fixed shard count and submission
//! schedule: applies are ordered on (shard, submission index) — never on
//! wall-clock arrival — and flushes are caller-ordered.

use crate::aggregator::{Aggregator, AggregatorState};
use crate::config::CoreConfig;
use crate::update::WorkerUpdate;
use std::ops::Range;

/// Minimum per-shard segment length before `submit` fans out across threads:
/// below this the scale/apply work per shard is cheaper than spawning, so the
/// shards run inline (in the same order, producing the same bits).
const FAN_OUT_MIN_SHARD_LEN: usize = 32 * 1024;

/// How shard applies are scheduled relative to each other (see the module
/// docs for the full semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ApplyMode {
    /// Every shard applies on the same K-th submission; per-shard clocks
    /// advance in lockstep with the global clock. Bit-identical to the
    /// pre-`ApplyMode` server at any shard count.
    #[default]
    Lockstep,
    /// Each shard applies on its own trigger (pending reaching K, or an
    /// explicit flush); staleness is evaluated per shard against the vector
    /// clock.
    PerShard,
}

/// The full mutable state of a [`ParameterServer`], exported as plain data
/// for checkpoint/restore (the byte encoding lives with the wire codec in
/// `fleet-server`). Configuration — learning rate, K, shard count, apply
/// mode — is *not* part of the state: restore targets a server constructed
/// with the same configuration, and [`ParameterServer::restore_state`]
/// asserts the shapes agree.
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterServerState {
    /// The flat model parameters.
    pub parameters: Vec<f32>,
    /// Per-shard pending buffers of scaled gradient segments, in shard order.
    pub shard_pending: Vec<Vec<Vec<f32>>>,
    /// Per-shard logical clocks (the vector clock), in shard order.
    pub shard_clocks: Vec<u64>,
    /// Per-shard applied-gradient counts, in shard order.
    pub shard_applied: Vec<u64>,
    /// Submissions since the last K-trigger (the global pending count).
    pub pending_count: usize,
    /// The global logical clock.
    pub clock: u64,
    /// Total gradients received.
    pub updates_received: u64,
    /// Per-shard staleness of the most recent submission (per-shard mode).
    pub last_shard_staleness: Vec<u64>,
    /// Per-shard weights of the most recent submission (per-shard mode).
    pub last_shard_weights: Vec<f32>,
    /// The aggregator's exported state.
    pub aggregator: AggregatorState,
}

/// Result of submitting one worker update to the [`ParameterServer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubmitOutcome {
    /// The weight `min(1, Λ(τ)·1/sim)` that was attached to the gradient at
    /// the update's *scalar* staleness, as the aggregator computed it in f64.
    /// In per-shard mode each shard slice may carry a different weight (see
    /// [`ParameterServer::last_shard_weights`]); this field then reports the
    /// scalar-staleness reference value.
    pub scaling_factor: f64,
    /// The f32 weight actually multiplied into the gradient (at the scalar
    /// staleness): the f64 `scaling_factor` cast to f32 and clamped at
    /// `f32::MIN_POSITIVE`, so the dampening floor survives the cast (an
    /// unclamped cast underflows to an exact 0.0 around staleness 10⁴,
    /// nullifying the gradient — precisely what the floor exists to
    /// prevent). Per-shard weights get the identical clamp.
    pub applied_weight: f32,
    /// Whether this submission triggered a model update — in lockstep mode
    /// the K-th gradient of the aggregation round; in per-shard mode whether
    /// *any* shard applied on this submission.
    pub applied: bool,
    /// The server's global logical clock after the submission.
    pub clock: u64,
}

/// One range-partitioned shard: a contiguous segment of the flat parameter
/// vector, its pending buffer of scaled gradient segments, and its own
/// logical clock.
#[derive(Debug)]
struct Shard {
    /// First parameter index of the shard's range.
    start: usize,
    /// Number of parameters in the shard's range.
    len: usize,
    /// Scaled gradient segments awaiting the shard's apply trigger, in
    /// submission order.
    pending: Vec<Vec<f32>>,
    /// Number of model updates this shard has applied (the shard's entry in
    /// the vector clock).
    clock: u64,
    /// Number of gradient segments folded into this shard's range.
    applied: u64,
}

/// A parameter server holding the flat model parameters — range-partitioned
/// into shards — a global logical clock and an aggregation buffer of `K`
/// gradients per update (§2.3: `K` can be 1 for maximum update frequency, or
/// larger / time-window based). [`ParameterServer::new`] starts with a single
/// shard; [`ParameterServer::with_shards`] re-partitions so the aggregation
/// hot path fans out across cores, and [`ParameterServer::with_apply_mode`]
/// (or [`ParameterServer::from_config`]) picks the scheduling mode. See the
/// module docs for the layout and the determinism contract.
#[derive(Debug)]
pub struct ParameterServer<A: Aggregator> {
    parameters: Vec<f32>,
    shards: Vec<Shard>,
    /// Cached shard lengths, in shard order (the fan-out helper needs them
    /// alongside the mutably borrowed shards).
    shard_lens: Vec<usize>,
    aggregator: A,
    learning_rate: f32,
    aggregation_k: usize,
    apply_mode: ApplyMode,
    max_pending: usize,
    pending_count: usize,
    clock: u64,
    updates_received: u64,
    /// Per-shard staleness values attributed to the most recent submission
    /// (per-shard mode only; empty in lockstep).
    last_shard_staleness: Vec<u64>,
    /// Per-shard f32 weights applied to the most recent submission
    /// (per-shard mode only; empty in lockstep).
    last_shard_weights: Vec<f32>,
}

impl<A: Aggregator> ParameterServer<A> {
    /// Creates a server over an initial flat parameter vector, with a single
    /// shard in lockstep mode.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not positive or `aggregation_k` is zero.
    pub fn new(
        initial_parameters: Vec<f32>,
        aggregator: A,
        learning_rate: f32,
        aggregation_k: usize,
    ) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!(
            aggregation_k > 0,
            "aggregation parameter K must be positive"
        );
        let mut server = Self {
            parameters: initial_parameters,
            shards: Vec::new(),
            shard_lens: Vec::new(),
            aggregator,
            learning_rate,
            aggregation_k,
            apply_mode: ApplyMode::Lockstep,
            max_pending: 0,
            pending_count: 0,
            clock: 0,
            updates_received: 0,
            last_shard_staleness: Vec::new(),
            last_shard_weights: Vec::new(),
        };
        server.partition(1);
        server
    }

    /// Creates a server from a bundled [`CoreConfig`]. Prefer validating
    /// first via [`CoreConfig::builder`](crate::config::CoreConfig::builder)
    /// to get a typed [`crate::config::ConfigError`] instead of the panics
    /// below.
    ///
    /// # Panics
    ///
    /// Panics if the config's learning rate is not positive or its `K` or
    /// shard count is zero.
    pub fn from_config(initial_parameters: Vec<f32>, aggregator: A, config: &CoreConfig) -> Self {
        Self::new(
            initial_parameters,
            aggregator,
            config.learning_rate,
            config.aggregation_k,
        )
        .with_shards(config.shards)
        .with_apply_mode(config.apply_mode)
        .with_max_pending(config.max_pending)
    }

    /// Sets the backpressure bound on per-shard pending buffers (see
    /// [`CoreConfig::max_pending`]). `0` disables the bound.
    pub fn with_max_pending(mut self, max_pending: usize) -> Self {
        self.max_pending = max_pending;
        self
    }

    /// Re-partitions the parameters into `num_shards` near-equal contiguous
    /// ranges. Shard counts above the parameter length leave the excess
    /// shards empty (harmless no-ops). In lockstep mode the partition does
    /// not affect results — outputs are bit-for-bit identical for every
    /// shard count; in per-shard mode the shard count is part of the
    /// semantics (each shard carries its own τ).
    ///
    /// # Panics
    ///
    /// Panics if `num_shards` is zero or gradients are pending (re-partition
    /// before submitting, not mid-round).
    pub fn with_shards(mut self, num_shards: usize) -> Self {
        assert!(num_shards > 0, "shard count must be positive");
        assert!(
            !self.has_pending(),
            "cannot re-partition with pending gradients"
        );
        self.partition(num_shards);
        self
    }

    /// Switches the apply-scheduling mode (see [`ApplyMode`]).
    ///
    /// # Panics
    ///
    /// Panics if gradients are pending — the two modes account for pending
    /// runs differently, so switching mid-round would misattribute them —
    /// or if the shard clocks have diverged (lockstep's invariant is that
    /// every shard clock equals the global clock; adopting diverged clocks
    /// would silently break it).
    pub fn with_apply_mode(mut self, mode: ApplyMode) -> Self {
        assert!(
            !self.has_pending(),
            "cannot switch apply mode with pending gradients"
        );
        assert!(
            self.shards.windows(2).all(|w| w[0].clock == w[1].clock),
            "cannot switch apply mode with diverged shard clocks"
        );
        // Adopting lockstep also requires the (undiverged) shard clocks to
        // sit *at* the global clock: in per-shard mode flushes can push
        // every shard collectively past the round counter, and lockstep
        // guarantees shard_clock() == clock() from then on.
        assert!(
            mode != ApplyMode::Lockstep || self.shards.iter().all(|s| s.clock == self.clock),
            "cannot adopt lockstep with shard clocks ahead of the global clock"
        );
        self.apply_mode = mode;
        self
    }

    fn has_pending(&self) -> bool {
        self.pending_count != 0 || self.shards.iter().any(|s| !s.pending.is_empty())
    }

    fn partition(&mut self, num_shards: usize) {
        let len = self.parameters.len();
        let base = len / num_shards;
        let extra = len % num_shards;
        // Seed the new shards from the most advanced existing clock, not the
        // global one: in per-shard mode the global clock is only a round
        // counter, and a flush-diverged shard may sit *above* it. Resetting
        // to the round counter would move the vector clock backwards, and a
        // worker holding a pre-partition read snapshot would then be
        // attributed spuriously fresh per-shard staleness (saturating_sub of
        // a regressed clock). Monotone-but-collapsed is the sound choice: a
        // re-partition redraws the shard boundaries, so the only staleness
        // every new shard can honestly inherit is the maximum any slice of
        // it may have reached.
        let clock = self
            .shards
            .iter()
            .map(|s| s.clock)
            .max()
            .unwrap_or(self.clock);
        let applied = self.updates_applied();
        self.shards.clear();
        self.shard_lens.clear();
        let mut start = 0;
        for i in 0..num_shards {
            let shard_len = base + usize::from(i < extra);
            self.shards.push(Shard {
                start,
                len: shard_len,
                pending: Vec::new(),
                clock,
                applied,
            });
            self.shard_lens.push(shard_len);
            start += shard_len;
        }
    }

    /// The current flat model parameters (what a worker pulls in step 4 of
    /// Fig. 2). Contiguous regardless of the shard count.
    pub fn parameters(&self) -> &[f32] {
        &self.parameters
    }

    /// The server's global logical clock `t`. In lockstep mode this is the
    /// number of model updates so far; in per-shard mode it degrades to a
    /// round counter (it advances on every K-th submission, whatever the
    /// individual shards did) and [`Self::shard_clocks`] carries the real
    /// per-shard state.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The apply-scheduling mode in force.
    pub fn apply_mode(&self) -> ApplyMode {
        self.apply_mode
    }

    /// Number of shards the parameters are partitioned into.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The contiguous parameter range owned by each shard, in shard order.
    pub fn shard_ranges(&self) -> Vec<Range<usize>> {
        self.shards
            .iter()
            .map(|s| s.start..s.start + s.len)
            .collect()
    }

    /// The logical clock of one shard: the number of updates that shard has
    /// applied. In lockstep mode always equal to [`Self::clock`]; in
    /// per-shard mode the shards advance independently.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_clock(&self, shard: usize) -> u64 {
        self.shards[shard].clock
    }

    /// The full vector clock, in shard order — what a worker snapshots at
    /// model-read time so a per-shard server can attribute per-shard
    /// staleness to its gradient.
    pub fn shard_clocks(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.clock).collect()
    }

    /// The per-shard staleness values `τ_s` attributed to the most recent
    /// submission (empty before the first submission and in lockstep mode,
    /// where the scalar staleness applies to every shard).
    pub fn last_shard_staleness(&self) -> &[u64] {
        &self.last_shard_staleness
    }

    /// The per-shard f32 weights applied to the most recent submission
    /// (empty before the first submission and in lockstep mode, where
    /// [`SubmitOutcome::applied_weight`] applies to every shard).
    pub fn last_shard_weights(&self) -> &[f32] {
        &self.last_shard_weights
    }

    /// Number of gradients received (applied or pending).
    pub fn updates_received(&self) -> u64 {
        self.updates_received
    }

    /// Number of gradients that have been folded into the model on *every*
    /// shard — the fully-applied frontier. In lockstep mode all shards apply
    /// together, so this is simply the number of applied gradients; in
    /// per-shard mode a gradient applied on some shards but still pending on
    /// others does not count yet.
    pub fn updates_applied(&self) -> u64 {
        self.shards.iter().map(|s| s.applied).min().unwrap_or(0)
    }

    /// Number of scaled gradient segments waiting in one shard's pending
    /// buffer.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_pending_len(&self, shard: usize) -> usize {
        self.shards[shard].pending.len()
    }

    /// Every shard's pending-buffer depth, in shard order — the queue-depth
    /// signal telemetry sinks sample after each submission.
    pub fn shard_pending_depths(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.pending.len()).collect()
    }

    /// Every shard's applied-gradient count, in shard order — the
    /// per-shard apply-rate signal for telemetry.
    pub fn shard_applied_counts(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.applied).collect()
    }

    /// The configured backpressure bound (`0` = unbounded).
    pub fn max_pending(&self) -> usize {
        self.max_pending
    }

    /// The first shard whose pending buffer has reached the
    /// [`CoreConfig::max_pending`] bound, if any — the overload
    /// signal an admission layer turns into backpressure (shed the task now
    /// rather than queue a gradient the saturated shard cannot absorb).
    /// Always `None` when the bound is disabled.
    pub fn saturated_shard(&self) -> Option<usize> {
        if self.max_pending == 0 {
            return None;
        }
        self.shards
            .iter()
            .position(|s| s.pending.len() >= self.max_pending)
    }

    /// Whether any shard's pending buffer has reached the backpressure bound.
    pub fn is_saturated(&self) -> bool {
        self.saturated_shard().is_some()
    }

    /// Exports the server's full mutable state (parameters, per-shard pending
    /// buffers and clocks, counters, aggregator state) for checkpointing.
    pub fn export_state(&self) -> ParameterServerState {
        ParameterServerState {
            parameters: self.parameters.clone(),
            shard_pending: self.shards.iter().map(|s| s.pending.clone()).collect(),
            shard_clocks: self.shards.iter().map(|s| s.clock).collect(),
            shard_applied: self.shards.iter().map(|s| s.applied).collect(),
            pending_count: self.pending_count,
            clock: self.clock,
            updates_received: self.updates_received,
            last_shard_staleness: self.last_shard_staleness.clone(),
            last_shard_weights: self.last_shard_weights.clone(),
            aggregator: self.aggregator.export_state(),
        }
    }

    /// Restores state captured with [`ParameterServer::export_state`] into a
    /// server constructed with the same configuration (learning rate, K,
    /// shard count, apply mode). After the restore, every subsequent
    /// submission produces bit-for-bit the outputs the checkpointed server
    /// would have produced.
    ///
    /// # Panics
    ///
    /// Panics if the state's parameter length or shard count does not match
    /// this server's partition, or a pending segment's length does not match
    /// its shard's range.
    pub fn restore_state(&mut self, state: ParameterServerState) {
        assert_eq!(
            state.parameters.len(),
            self.parameters.len(),
            "checkpoint parameter length does not match the server's"
        );
        assert_eq!(
            state.shard_pending.len(),
            self.shards.len(),
            "checkpoint shard count does not match the server's partition"
        );
        assert_eq!(state.shard_clocks.len(), self.shards.len());
        assert_eq!(state.shard_applied.len(), self.shards.len());
        self.parameters = state.parameters;
        for (i, shard) in self.shards.iter_mut().enumerate() {
            for segment in &state.shard_pending[i] {
                assert_eq!(
                    segment.len(),
                    shard.len,
                    "pending segment length does not match shard {i}'s range"
                );
            }
            shard.pending = state.shard_pending[i].clone();
            shard.clock = state.shard_clocks[i];
            shard.applied = state.shard_applied[i];
        }
        self.pending_count = state.pending_count;
        self.clock = state.clock;
        self.updates_received = state.updates_received;
        self.last_shard_staleness = state.last_shard_staleness;
        self.last_shard_weights = state.last_shard_weights;
        self.aggregator.import_state(state.aggregator);
    }

    /// The configured learning rate γ.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Access to the aggregator (e.g. to inspect `τ_thres`).
    pub fn aggregator(&self) -> &A {
        &self.aggregator
    }

    /// Submits one worker update. The gradient is split by shard range,
    /// scaled by the aggregator's weight and buffered per shard; shards
    /// apply their pending runs (in submission order) when their trigger
    /// fires — the same K-th submission for every shard in lockstep mode,
    /// each shard's own pending count reaching K in per-shard mode. With
    /// more than one shard — and segments long enough to beat the spawn
    /// cost — the split, scale and apply all fan out across threads via
    /// [`fleet_parallel`]; see the module docs for the determinism contract
    /// of each mode.
    ///
    /// # Panics
    ///
    /// Panics if the gradient length differs from the parameter length, or
    /// if the update carries a [`WorkerUpdate::read_clock`] whose length
    /// differs from the shard count (in per-shard mode; lockstep ignores the
    /// read clock).
    pub fn submit(&mut self, update: WorkerUpdate) -> SubmitOutcome {
        assert_eq!(
            update.gradient.len(),
            self.parameters.len(),
            "gradient length {} does not match parameter length {}",
            update.gradient.len(),
            self.parameters.len()
        );
        let scaling = self.aggregator.scaling_factor(&update);
        // Per-shard staleness and weights must be evaluated against the same
        // aggregator state as the scalar factor — i.e. *before* `record`
        // refreshes the staleness statistics and global label distribution —
        // or an undiverged per-shard run would drift from lockstep.
        let shard_weights = match self.apply_mode {
            ApplyMode::Lockstep => None,
            ApplyMode::PerShard => Some(self.shard_staleness_weights(&update)),
        };
        self.aggregator.record(&update);
        self.updates_received += 1;

        // `DampeningPolicy::factor` floors the f64 weight at
        // `f64::MIN_POSITIVE`, but the floor dies in the f32 cast (anything
        // below f32's subnormal range becomes an exact 0.0). Clamp again
        // after the cast so extreme staleness keeps a nonzero weight.
        let weight = (scaling as f32).max(f32::MIN_POSITIVE);

        match shard_weights {
            None => self.submit_lockstep(&update, scaling, weight),
            Some((taus, weights)) => self.submit_per_shard(&update, scaling, weight, taus, weights),
        }
    }

    /// Attributes a staleness `τ_s` and an Eq. 3 weight to every shard slice
    /// of `update`, against the current vector clock: `τ_s` is the number of
    /// updates shard `s` applied since the worker's read
    /// ([`WorkerUpdate::read_clock`]; a missing read clock falls back to the
    /// scalar staleness for every shard, so wire peers that predate vector
    /// clocks keep working). The weight gets the same post-cast clamp as the
    /// scalar path.
    ///
    /// # Panics
    ///
    /// Panics if the update carries a read clock whose length differs from
    /// the shard count.
    fn shard_staleness_weights(&self, update: &WorkerUpdate) -> (Vec<u64>, Vec<f32>) {
        if let Some(read_clock) = update.read_clock.as_deref() {
            assert_eq!(
                read_clock.len(),
                self.shards.len(),
                "read clock length {} does not match shard count {}",
                read_clock.len(),
                self.shards.len()
            );
        }
        let mut taus = Vec::with_capacity(self.shards.len());
        let mut weights = Vec::with_capacity(self.shards.len());
        // Evaluate Λ(τ) once per *distinct* τ, not once per shard: for
        // AdaSGD a single evaluation re-estimates τ_thres (a percentile over
        // the staleness window) and the label similarity, so per-shard calls
        // would multiply that cost by the shard count — and in the common
        // undiverged case every shard shares one τ anyway. Shard counts are
        // small, so a linear scan beats hashing.
        let mut distinct: Vec<(u64, f32)> = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let tau = match update.read_clock.as_deref() {
                Some(read_clock) => shard.clock.saturating_sub(read_clock[i]),
                None => update.staleness,
            };
            let shard_weight = match distinct.iter().find(|(t, _)| *t == tau) {
                Some(&(_, w)) => w,
                None => {
                    let w = (self.aggregator.scaling_factor_at(update, tau) as f32)
                        .max(f32::MIN_POSITIVE);
                    distinct.push((tau, w));
                    w
                }
            };
            taus.push(tau);
            weights.push(shard_weight);
        }
        (taus, weights)
    }

    /// The lockstep apply path: every shard applies on the same K-th
    /// submission. This is the pre-`ApplyMode` hot path, float-op for
    /// float-op — the digest contract (`0xcca852d1696df74f` in the ci.sh
    /// sweep) pins it.
    fn submit_lockstep(
        &mut self,
        update: &WorkerUpdate,
        scaling: f64,
        weight: f32,
    ) -> SubmitOutcome {
        self.pending_count += 1;
        let apply_now = self.pending_count >= self.aggregation_k;
        let learning_rate = self.learning_rate;
        let gradient = update.gradient.as_slice();
        let body = |_: usize, shard: &mut Shard, segment: &mut [f32]| {
            let incoming = &gradient[shard.start..shard.start + shard.len];
            if apply_now {
                // Drain the shard's pending run in submission order, then
                // fold the incoming gradient in directly: per element the op
                // sequence (scale, then scaled-subtract) is identical to
                // buffering it first, without allocating a segment that would
                // be freed immediately (on the default K = 1 hot path nothing
                // is ever buffered).
                for scaled in &shard.pending {
                    for (p, g) in segment.iter_mut().zip(scaled) {
                        *p -= learning_rate * g;
                    }
                }
                shard.applied += shard.pending.len() as u64 + 1;
                shard.pending.clear();
                for (p, g) in segment.iter_mut().zip(incoming) {
                    *p -= learning_rate * (g * weight);
                }
                shard.clock += 1;
            } else {
                shard
                    .pending
                    .push(incoming.iter().map(|g| g * weight).collect());
            }
        };
        self.fan_out_shards(body);
        if apply_now {
            self.pending_count = 0;
            self.clock += 1;
        }
        SubmitOutcome {
            scaling_factor: scaling,
            applied_weight: weight,
            applied: apply_now,
            clock: self.clock,
        }
    }

    /// The per-shard apply path: staleness (and therefore the Eq. 3 weight)
    /// is evaluated per shard slice against the vector clock, and each shard
    /// applies when *its own* pending run reaches K. Applies are ordered on
    /// (shard, submission index) — a shard's pending segments drain in the
    /// order they were submitted, and each shard belongs to exactly one
    /// fan-out thread — so the result is bit-for-bit reproducible at any
    /// thread count for a fixed schedule.
    fn submit_per_shard(
        &mut self,
        update: &WorkerUpdate,
        scaling: f64,
        weight: f32,
        taus: Vec<u64>,
        weights: Vec<f32>,
    ) -> SubmitOutcome {
        self.pending_count += 1;
        // The global clock stays a deterministic round counter: it advances
        // on every K-th submission no matter which shards applied.
        let round_complete = self.pending_count >= self.aggregation_k;
        let applied_any = self
            .shards
            .iter()
            .any(|s| s.pending.len() + 1 >= self.aggregation_k);
        let aggregation_k = self.aggregation_k;
        let learning_rate = self.learning_rate;
        let gradient = update.gradient.as_slice();
        let shard_weights = &weights;
        let body = |i: usize, shard: &mut Shard, segment: &mut [f32]| {
            let incoming = &gradient[shard.start..shard.start + shard.len];
            let weight = shard_weights[i];
            if shard.pending.len() + 1 >= aggregation_k {
                for scaled in &shard.pending {
                    for (p, g) in segment.iter_mut().zip(scaled) {
                        *p -= learning_rate * g;
                    }
                }
                shard.applied += shard.pending.len() as u64 + 1;
                shard.pending.clear();
                for (p, g) in segment.iter_mut().zip(incoming) {
                    *p -= learning_rate * (g * weight);
                }
                shard.clock += 1;
            } else {
                shard
                    .pending
                    .push(incoming.iter().map(|g| g * weight).collect());
            }
        };
        self.fan_out_shards(body);
        if round_complete {
            self.pending_count = 0;
            self.clock += 1;
        }
        self.last_shard_staleness = taus;
        self.last_shard_weights = weights;
        SubmitOutcome {
            scaling_factor: scaling,
            applied_weight: weight,
            applied: applied_any,
            clock: self.clock,
        }
    }

    /// Runs `body` once per (shard, parameter segment) pair — across threads
    /// when each shard carries enough elements to beat the per-submit
    /// thread-spawn cost, inline in shard order below that (identical op
    /// order either way, so this is purely a latency decision).
    fn fan_out_shards(&mut self, body: impl Fn(usize, &mut Shard, &mut [f32]) + Sync) {
        let fan_out = self.shards.len() > 1
            && self.parameters.len() / self.shards.len() >= FAN_OUT_MIN_SHARD_LEN;
        if fan_out {
            fleet_parallel::parallel_uneven_zip_mut(
                &mut self.shards,
                &mut self.parameters,
                &self.shard_lens,
                body,
            );
        } else {
            let mut rest = self.parameters.as_mut_slice();
            for (i, shard) in self.shards.iter_mut().enumerate() {
                let (segment, tail) = rest.split_at_mut(shard.len);
                rest = tail;
                body(i, shard, segment);
            }
        }
    }

    /// Applies one shard's pending run immediately (in submission order),
    /// without waiting for its pending buffer to reach K — the second apply
    /// trigger a per-shard scheduler owns. Advances the shard's clock when
    /// anything was pending; an empty flush is a no-op (the clock counts
    /// applied updates, not trigger attempts). Returns whether the shard
    /// applied anything.
    ///
    /// # Panics
    ///
    /// Panics if the server is in lockstep mode (lockstep accounts pending
    /// gradients globally, so draining one shard would desynchronise the
    /// round) or `shard` is out of range.
    pub fn flush_shard(&mut self, shard: usize) -> bool {
        assert_eq!(
            self.apply_mode,
            ApplyMode::PerShard,
            "flush_shard requires ApplyMode::PerShard"
        );
        let learning_rate = self.learning_rate;
        let s = &mut self.shards[shard];
        if s.pending.is_empty() {
            return false;
        }
        let segment = &mut self.parameters[s.start..s.start + s.len];
        for scaled in &s.pending {
            for (p, g) in segment.iter_mut().zip(scaled) {
                *p -= learning_rate * g;
            }
        }
        s.applied += s.pending.len() as u64;
        s.pending.clear();
        s.clock += 1;
        true
    }

    /// Flushes every shard's pending run (see [`Self::flush_shard`]), in
    /// shard order. Returns the number of shards that applied anything.
    ///
    /// # Panics
    ///
    /// Panics if the server is in lockstep mode.
    pub fn flush(&mut self) -> usize {
        (0..self.shards.len())
            .filter(|&i| self.flush_shard(i))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregator::{AdaSgd, DynSgd, FedAvg};
    use fleet_data::LabelDistribution;
    use fleet_ml::Gradient;
    use proptest::prelude::*;

    fn update(gradient: Vec<f32>, staleness: u64) -> WorkerUpdate {
        WorkerUpdate::new(
            Gradient::from_vec(gradient),
            staleness,
            LabelDistribution::uniform(4),
            10,
            0,
        )
    }

    #[test]
    fn k1_applies_immediately() {
        let mut server = ParameterServer::new(vec![1.0, 1.0], FedAvg::new(), 0.5, 1);
        let outcome = server.submit(update(vec![1.0, -1.0], 0));
        assert!(outcome.applied);
        assert_eq!(outcome.clock, 1);
        assert_eq!(server.parameters(), &[0.5, 1.5]);
    }

    #[test]
    fn k3_buffers_until_full() {
        let mut server = ParameterServer::new(vec![0.0], FedAvg::new(), 1.0, 3);
        assert!(!server.submit(update(vec![1.0], 0)).applied);
        assert!(!server.submit(update(vec![1.0], 0)).applied);
        assert_eq!(server.clock(), 0);
        assert_eq!(server.parameters(), &[0.0]);
        let third = server.submit(update(vec![1.0], 0));
        assert!(third.applied);
        assert_eq!(server.clock(), 1);
        assert_eq!(server.parameters(), &[-3.0]);
        assert_eq!(server.updates_applied(), 3);
        assert_eq!(server.updates_received(), 3);
    }

    #[test]
    fn stale_gradients_are_dampened_by_dynsgd() {
        let mut server = ParameterServer::new(vec![0.0], DynSgd::new(), 1.0, 1);
        server.submit(update(vec![1.0], 9)); // weight 0.1
        assert!((server.parameters()[0] + 0.1).abs() < 1e-6);
    }

    #[test]
    fn adasgd_server_end_to_end() {
        let mut server = ParameterServer::new(vec![0.0, 0.0], AdaSgd::new(4, 99.7), 0.1, 1);
        for i in 0..50 {
            let outcome = server.submit(update(vec![0.5, -0.5], i % 5));
            assert!(outcome.applied);
            assert!(outcome.scaling_factor > 0.0 && outcome.scaling_factor <= 1.0);
        }
        assert_eq!(server.clock(), 50);
        // The parameters moved in the gradient-descent direction.
        assert!(server.parameters()[0] < 0.0);
        assert!(server.parameters()[1] > 0.0);
    }

    #[test]
    #[should_panic(expected = "does not match parameter length")]
    fn mismatched_gradient_length_panics() {
        let mut server = ParameterServer::new(vec![0.0, 0.0], FedAvg::new(), 0.1, 1);
        server.submit(update(vec![1.0], 0));
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn non_positive_learning_rate_panics() {
        let _ = ParameterServer::new(vec![0.0], FedAvg::new(), 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "aggregation parameter K must be positive")]
    fn zero_k_panics() {
        let _ = ParameterServer::new(vec![0.0], FedAvg::new(), 0.1, 0);
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn zero_shards_panics() {
        let _ = ParameterServer::new(vec![0.0], FedAvg::new(), 0.1, 1).with_shards(0);
    }

    #[test]
    fn shard_ranges_partition_the_parameters() {
        for (len, shards) in [(10, 3), (7, 7), (5, 8), (1, 1), (64, 4)] {
            let server =
                ParameterServer::new(vec![0.0; len], FedAvg::new(), 0.1, 1).with_shards(shards);
            assert_eq!(server.num_shards(), shards);
            let ranges = server.shard_ranges();
            let mut next = 0;
            for range in &ranges {
                assert_eq!(range.start, next, "ranges must be contiguous");
                next = range.end;
            }
            assert_eq!(next, len, "ranges must cover every parameter");
            // Near-equal: lengths differ by at most one.
            let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let min = lens.iter().min().unwrap();
            let max = lens.iter().max().unwrap();
            assert!(max - min <= 1, "lens {lens:?}");
        }
    }

    #[test]
    fn shard_clocks_advance_in_lockstep_with_global_clock() {
        let mut server = ParameterServer::new(vec![0.0; 10], FedAvg::new(), 0.1, 2).with_shards(4);
        for i in 0..6 {
            server.submit(update(vec![0.1; 10], i));
        }
        assert_eq!(server.clock(), 3);
        for shard in 0..server.num_shards() {
            assert_eq!(server.shard_clock(shard), 3);
        }
        assert_eq!(server.shard_clocks(), vec![3; 4]);
        assert!(server.last_shard_staleness().is_empty());
        assert!(server.last_shard_weights().is_empty());
    }

    /// The acceptance criterion in miniature: identical submission sequences
    /// produce bit-for-bit identical parameters at every shard count.
    #[test]
    fn sharded_submit_matches_single_shard_reference() {
        let len = 37;
        let make = |shards: usize| {
            ParameterServer::new(
                (0..len).map(|i| (i as f32 * 0.37).sin()).collect(),
                DynSgd::new(),
                0.05,
                3,
            )
            .with_shards(shards)
        };
        for shards in [2, 8, 64] {
            let mut reference = make(1);
            let mut sharded = make(shards);
            for step in 0..12u64 {
                let gradient: Vec<f32> = (0..len)
                    .map(|i| ((i as f32 + step as f32) * 0.91).cos())
                    .collect();
                let a = reference.submit(update(gradient.clone(), step % 5));
                let b = sharded.submit(update(gradient, step % 5));
                assert_eq!(a, b);
                assert_eq!(
                    reference.parameters(),
                    sharded.parameters(),
                    "shards={shards} step={step}"
                );
            }
            assert_eq!(reference.clock(), sharded.clock());
            assert_eq!(reference.updates_applied(), sharded.updates_applied());
        }
    }

    /// Regression test for the dampening-floor underflow: at staleness
    /// ≈ 10_000 the exponential Λ(τ) underflows f64 (floored at
    /// `f64::MIN_POSITIVE` by `DampeningPolicy::factor`), and the old
    /// `scaled(scaling as f32)` cast turned that floor into an exact 0.0
    /// weight — nullifying the gradient the floor was meant to preserve.
    #[test]
    fn dampening_floor_survives_the_f32_cast() {
        let aggregator = AdaSgd::new(4, 99.7).with_fixed_tau_thres(12);
        let mut server = ParameterServer::new(vec![0.0, 0.0], aggregator, 1.0, 1);
        let outcome = server.submit(update(vec![1.0, -1.0], 10_000));
        // The f64 floor held, but an unclamped f32 cast of it is exactly 0.
        assert!(outcome.scaling_factor > 0.0);
        assert_eq!(outcome.scaling_factor as f32, 0.0);
        // The clamp keeps the applied weight (and the parameter trace) nonzero.
        assert!(outcome.applied_weight > 0.0);
        assert!(
            server.parameters()[0] < 0.0 && server.parameters()[1] > 0.0,
            "an extremely stale gradient must still leave a nonzero trace, got {:?}",
            server.parameters()
        );
    }

    /// The per-shard path gets the identical post-cast clamp, per slice: a
    /// shard whose τ_s underflows the f32 weight keeps `f32::MIN_POSITIVE`
    /// while a fresh shard keeps full weight.
    #[test]
    fn dampening_floor_survives_per_shard_too() {
        // Pinned τ_thres (no percentile sorting) and no boost, so the weight
        // is exactly Λ(τ_s) — which underflows the f32 cast around τ = 10⁴.
        let aggregator = AdaSgd::new(4, 99.7)
            .with_fixed_tau_thres(12)
            .without_similarity_boost();
        let mut server = ParameterServer::new(vec![0.0, 0.0], aggregator, 1.0, 1)
            .with_shards(2)
            .with_apply_mode(ApplyMode::PerShard);
        // Drive both shard clocks to 10_000 with zero gradients (K = 1: every
        // submission applies immediately on both shards).
        for _ in 0..10_000 {
            server.submit(update(vec![0.0, 0.0], 0).with_read_clock(server.shard_clocks()));
        }
        assert_eq!(server.shard_clocks(), vec![10_000, 10_000]);
        // A worker whose read of shard 0 is 10_000 updates old while its read
        // of shard 1 is current: τ = [10_000, 0].
        let stale = update(vec![1.0, -1.0], 0).with_read_clock(vec![0, 10_000]);
        let raw = server.aggregator().scaling_factor_at(&stale, 10_000);
        assert!(raw > 0.0 && raw as f32 == 0.0, "cast must underflow");
        server.submit(stale);
        assert_eq!(server.last_shard_staleness(), &[10_000, 0]);
        assert_eq!(
            server.last_shard_weights(),
            &[f32::MIN_POSITIVE, 1.0],
            "the floor must survive the cast on the stale shard slice"
        );
        // The extremely stale slice still leaves a (tiny) nonzero trace.
        assert!(server.parameters()[0] < 0.0);
        assert_eq!(server.parameters()[1], 1.0);
    }

    #[test]
    fn fresh_updates_keep_full_weight_after_the_clamp() {
        let mut server = ParameterServer::new(vec![0.0], FedAvg::new(), 1.0, 1);
        let outcome = server.submit(update(vec![1.0], 0));
        assert_eq!(outcome.applied_weight, 1.0);
    }

    /// Without clock divergence (no flushes) the per-shard mode is the
    /// lockstep mode, bit for bit: every shard's τ_s equals the scalar
    /// staleness, so every slice gets the identical weight and the apply
    /// triggers coincide.
    #[test]
    fn per_shard_without_divergence_matches_lockstep_bitwise() {
        let len = 41;
        let init: Vec<f32> = (0..len).map(|i| (i as f32 * 0.23).sin()).collect();
        for k in [1usize, 3] {
            let mut lockstep =
                ParameterServer::new(init.clone(), DynSgd::new(), 0.05, k).with_shards(4);
            let mut per_shard = ParameterServer::new(init.clone(), DynSgd::new(), 0.05, k)
                .with_shards(4)
                .with_apply_mode(ApplyMode::PerShard);
            for step in 0..12u64 {
                let gradient: Vec<f32> = (0..len)
                    .map(|i| ((i as f32 + step as f32) * 0.7).cos())
                    .collect();
                // Clamp like the simulation planner: a worker cannot have
                // read a model more updates old than have happened.
                let staleness = (step % 4).min(lockstep.clock());
                // The per-shard server reads a coherent vector clock whose
                // entries all lag by the scalar staleness.
                let read_clock: Vec<u64> = per_shard
                    .shard_clocks()
                    .iter()
                    .map(|c| c - staleness)
                    .collect();
                let a = lockstep.submit(update(gradient.clone(), staleness));
                let b = per_shard.submit(update(gradient, staleness).with_read_clock(read_clock));
                assert_eq!(a, b, "k={k} step={step}");
                assert_eq!(lockstep.parameters(), per_shard.parameters());
            }
            assert_eq!(lockstep.updates_applied(), per_shard.updates_applied());
        }
    }

    /// The scripted-divergence core of the per-shard semantics: flushing one
    /// shard twice makes the vector clock diverge by 2, and a subsequent
    /// submission is weighted per shard — exact values asserted.
    #[test]
    fn flushes_diverge_shard_clocks_and_staleness() {
        let mut server = ParameterServer::new(vec![0.0; 2], DynSgd::new(), 1.0, 3)
            .with_shards(2)
            .with_apply_mode(ApplyMode::PerShard);

        // Two submissions, flushing shard 0 after each: shard 0 applies each
        // buffered segment immediately, shard 1 keeps buffering.
        server.submit(update(vec![1.0, 1.0], 0).with_read_clock(vec![0, 0]));
        assert!(server.flush_shard(0));
        server.submit(update(vec![1.0, 1.0], 0).with_read_clock(vec![0, 0]));
        assert!(server.flush_shard(0));
        assert_eq!(server.shard_clocks(), vec![2, 0], "diverged by 2 ticks");

        // The second submission already saw the divergence: shard 0 had
        // applied once since the read, shard 1 had not.
        assert_eq!(server.last_shard_staleness(), &[1, 0]);
        assert_eq!(server.last_shard_weights(), &[0.5, 1.0]);

        // A third submission against the same read snapshot: shard 0 is two
        // updates ahead (τ=2, weight 1/3), shard 1 still fresh (τ=0, weight
        // 1) — and it is the K=3rd pending on shard 1, which applies.
        let outcome = server.submit(update(vec![1.0, 1.0], 0).with_read_clock(vec![0, 0]));
        assert_eq!(server.last_shard_staleness(), &[2, 0]);
        assert_eq!(
            server.last_shard_weights(),
            &[(1.0f64 / 3.0) as f32, 1.0],
            "DynSGD per-shard weights must be exactly 1/(τ_s+1)"
        );
        assert!(outcome.applied, "shard 1 reached K on this submission");
        assert_eq!(server.shard_clocks(), vec![2, 1]);
        // Shard 1 applied its three buffered segments at weight 1 each
        // (lr=1): parameter trace is exactly -3. Shard 0 applied the first at
        // weight 1 and the second at weight 1/2 via the flushes; the third is
        // pending (weight 1/3).
        assert_eq!(server.parameters()[1], -3.0);
        assert_eq!(server.parameters()[0], -1.5);
        assert_eq!(server.updates_applied(), 2, "fully-applied frontier");

        // An explicit flush drains shard 0's remaining pending segment.
        assert_eq!(server.flush(), 1);
        assert_eq!(server.shard_clocks(), vec![3, 1]);
        assert_eq!(server.parameters()[0], -1.5 - (1.0f64 / 3.0) as f32);
        assert_eq!(server.updates_applied(), 3);
        // Flushing with nothing pending is a no-op.
        assert_eq!(server.flush(), 0);
        assert_eq!(server.shard_clocks(), vec![3, 1]);
    }

    #[test]
    #[should_panic(expected = "flush_shard requires ApplyMode::PerShard")]
    fn lockstep_flush_panics() {
        let mut server = ParameterServer::new(vec![0.0], FedAvg::new(), 0.1, 2);
        server.flush_shard(0);
    }

    #[test]
    #[should_panic(expected = "read clock length")]
    fn mismatched_read_clock_panics() {
        let mut server = ParameterServer::new(vec![0.0; 4], FedAvg::new(), 0.1, 1)
            .with_shards(2)
            .with_apply_mode(ApplyMode::PerShard);
        server.submit(update(vec![0.0; 4], 0).with_read_clock(vec![0, 0, 0]));
    }

    #[test]
    #[should_panic(expected = "cannot switch apply mode with pending gradients")]
    fn mode_switch_with_pending_panics() {
        let mut server = ParameterServer::new(vec![0.0], FedAvg::new(), 0.1, 2);
        server.submit(update(vec![1.0], 0));
        let _ = server.with_apply_mode(ApplyMode::PerShard);
    }

    #[test]
    fn from_config_wires_every_knob() {
        let config = CoreConfig::builder()
            .learning_rate(0.25)
            .aggregation_k(2)
            .shards(3)
            .apply_mode(ApplyMode::PerShard)
            .max_pending(5)
            .build()
            .expect("valid config");
        let server = ParameterServer::from_config(vec![0.0; 9], FedAvg::new(), &config);
        assert_eq!(server.learning_rate(), 0.25);
        assert_eq!(server.num_shards(), 3);
        assert_eq!(server.apply_mode(), ApplyMode::PerShard);
        assert_eq!(server.max_pending(), 5);
        assert_eq!(CoreConfig::default().apply_mode, ApplyMode::Lockstep);
    }

    /// A per-shard server with a missing read clock falls back to the scalar
    /// staleness on every shard (wire peers predating vector clocks).
    #[test]
    fn missing_read_clock_falls_back_to_scalar_staleness() {
        let mut server = ParameterServer::new(vec![0.0; 4], DynSgd::new(), 1.0, 1)
            .with_shards(2)
            .with_apply_mode(ApplyMode::PerShard);
        server.submit(update(vec![1.0; 4], 9));
        assert_eq!(server.last_shard_staleness(), &[9, 9]);
        assert_eq!(server.last_shard_weights(), &[0.1, 0.1]);
    }

    #[test]
    fn saturation_reports_the_full_pending_buffer() {
        let mut server =
            ParameterServer::new(vec![0.0; 4], FedAvg::new(), 1.0, 3).with_max_pending(2);
        assert_eq!(server.saturated_shard(), None);
        server.submit(update(vec![1.0; 4], 0));
        assert!(!server.is_saturated());
        server.submit(update(vec![1.0; 4], 0));
        assert_eq!(server.saturated_shard(), Some(0));
        assert_eq!(server.shard_pending_len(0), 2);
        // The third submission reaches K and drains the buffer.
        server.submit(update(vec![1.0; 4], 0));
        assert!(!server.is_saturated());
        assert_eq!(server.shard_pending_len(0), 0);
    }

    #[test]
    fn unbounded_server_never_saturates() {
        let mut server = ParameterServer::new(vec![0.0; 2], FedAvg::new(), 1.0, 100);
        for _ in 0..50 {
            server.submit(update(vec![1.0; 2], 0));
        }
        assert_eq!(server.max_pending(), 0);
        assert_eq!(server.saturated_shard(), None);
    }

    /// Exporting state mid-round (pending buffers non-empty, clocks diverged)
    /// and restoring it into a fresh server reproduces the remainder of the
    /// run bit for bit.
    #[test]
    fn state_roundtrip_resumes_bitwise() {
        let config = CoreConfig::builder()
            .learning_rate(0.5)
            .aggregation_k(3)
            .shards(3)
            .apply_mode(ApplyMode::PerShard)
            .build()
            .expect("valid config");
        let build = || ParameterServer::from_config(vec![0.1; 7], AdaSgd::new(4, 99.0), &config);
        let updates: Vec<WorkerUpdate> = (0..11)
            .map(|i| update(vec![(i as f32 * 0.3).sin(); 7], i % 4))
            .collect();

        // Uninterrupted reference run.
        let mut reference = build();
        for u in &updates {
            reference.submit(u.clone().with_read_clock(reference.shard_clocks()));
        }
        reference.flush_shard(1);
        for u in &updates {
            reference.submit(u.clone().with_read_clock(reference.shard_clocks()));
        }

        // Interrupted run: checkpoint mid-stream, restore into a new server.
        let mut first = build();
        for u in &updates {
            first.submit(u.clone().with_read_clock(first.shard_clocks()));
        }
        first.flush_shard(1);
        let state = first.export_state();
        assert!(state.shard_pending.iter().any(|p| !p.is_empty()));
        drop(first);
        let mut resumed = build();
        resumed.restore_state(state);
        for u in &updates {
            resumed.submit(u.clone().with_read_clock(resumed.shard_clocks()));
        }

        assert_eq!(
            reference
                .parameters()
                .iter()
                .map(|p| p.to_bits())
                .collect::<Vec<_>>(),
            resumed
                .parameters()
                .iter()
                .map(|p| p.to_bits())
                .collect::<Vec<_>>(),
        );
        assert_eq!(reference.shard_clocks(), resumed.shard_clocks());
        assert_eq!(reference.updates_received(), resumed.updates_received());
        assert_eq!(reference.updates_applied(), resumed.updates_applied());
        assert_eq!(reference.export_state(), resumed.export_state());
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn restore_rejects_mismatched_partition() {
        let server = ParameterServer::new(vec![0.0; 4], FedAvg::new(), 1.0, 1).with_shards(2);
        let state = server.export_state();
        let mut other = ParameterServer::new(vec![0.0; 4], FedAvg::new(), 1.0, 1).with_shards(4);
        other.restore_state(state);
    }

    proptest! {
        /// Bit-for-bit equivalence of the sharded fan-out against the
        /// single-shard reference, over random models, K, shard counts and
        /// staleness sequences.
        #[test]
        fn prop_sharded_fan_out_is_bitwise_equivalent(
            len in 1usize..80,
            shards in 1usize..12,
            k in 1usize..5,
            seeds in proptest::collection::vec((0u64..50, -2.0f32..2.0), 1..20),
        ) {
            let init: Vec<f32> = (0..len).map(|i| (i as f32 * 0.11).cos()).collect();
            let mut reference = ParameterServer::new(init.clone(), DynSgd::new(), 0.1, k);
            let mut sharded =
                ParameterServer::new(init, DynSgd::new(), 0.1, k).with_shards(shards);
            for &(staleness, scale) in &seeds {
                let gradient: Vec<f32> =
                    (0..len).map(|i| scale * ((i as f32) * 0.7).sin()).collect();
                let a = reference.submit(update(gradient.clone(), staleness));
                let b = sharded.submit(update(gradient, staleness));
                prop_assert_eq!(a, b);
                prop_assert_eq!(reference.parameters(), sharded.parameters());
            }
        }

        /// Per-shard mode with a coherent (undiverged) read clock is the
        /// lockstep run, bit for bit — over random schedules.
        #[test]
        fn prop_per_shard_coherent_reads_match_lockstep(
            len in 1usize..60,
            shards in 1usize..8,
            k in 1usize..4,
            seeds in proptest::collection::vec((0u64..20, -1.0f32..1.0), 1..16),
        ) {
            let init: Vec<f32> = (0..len).map(|i| (i as f32 * 0.19).cos()).collect();
            let mut lockstep =
                ParameterServer::new(init.clone(), DynSgd::new(), 0.1, k).with_shards(shards);
            let mut per_shard = ParameterServer::new(init, DynSgd::new(), 0.1, k)
                .with_shards(shards)
                .with_apply_mode(ApplyMode::PerShard);
            for &(staleness, scale) in &seeds {
                let gradient: Vec<f32> =
                    (0..len).map(|i| scale * ((i as f32) * 0.5).sin()).collect();
                // Clamp like the simulation planner: staleness cannot exceed
                // the number of updates that have happened.
                let staleness = staleness.min(lockstep.clock());
                let read_clock: Vec<u64> = per_shard
                    .shard_clocks()
                    .iter()
                    .map(|c| c - staleness)
                    .collect();
                let a = lockstep.submit(update(gradient.clone(), staleness));
                let b = per_shard.submit(update(gradient, staleness).with_read_clock(read_clock));
                prop_assert_eq!(a, b);
                prop_assert_eq!(lockstep.parameters(), per_shard.parameters());
            }
        }
    }
}
