//! Ordinary least squares used for I-Prof's cold-start global model and for
//! the MAUI baseline.
//!
//! The model is `y ≈ xᵀθ`; fitting solves the (ridge-regularised) normal
//! equations `(XᵀX + λI) θ = Xᵀy` with Gaussian elimination. The feature
//! dimensionality is tiny (≤ 7), so this is more than fast enough.

use serde::{Deserialize, Serialize};

/// A fitted linear regression model.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LinearRegression {
    theta: Vec<f32>,
}

impl LinearRegression {
    /// Creates an (unfitted) all-zero model with `dim` coefficients.
    pub fn zeros(dim: usize) -> Self {
        Self {
            theta: vec![0.0; dim],
        }
    }

    /// Creates a model from explicit coefficients.
    pub fn from_coefficients(theta: Vec<f32>) -> Self {
        Self { theta }
    }

    /// The coefficient vector θ.
    pub fn coefficients(&self) -> &[f32] {
        &self.theta
    }

    /// Number of coefficients.
    pub fn dim(&self) -> usize {
        self.theta.len()
    }

    /// Fits θ with ordinary least squares (ridge λ = 1e-6 for numerical
    /// stability). Returns `None` when the inputs are empty, inconsistent, or
    /// the normal equations are singular.
    pub fn fit(samples: &[(Vec<f32>, f32)]) -> Option<Self> {
        let dim = samples.first()?.0.len();
        if dim == 0 || samples.iter().any(|(x, _)| x.len() != dim) {
            return None;
        }
        // Normal equations in f64 for stability.
        let mut xtx = vec![vec![0.0f64; dim]; dim];
        let mut xty = vec![0.0f64; dim];
        for (x, y) in samples {
            for i in 0..dim {
                xty[i] += x[i] as f64 * *y as f64;
                for j in 0..dim {
                    xtx[i][j] += x[i] as f64 * x[j] as f64;
                }
            }
        }
        let lambda = 1e-6;
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += lambda;
        }
        let theta = solve(xtx, xty)?;
        Some(Self {
            theta: theta.into_iter().map(|v| v as f32).collect(),
        })
    }

    /// Predicts `xᵀθ`. Mismatched lengths are truncated to the shorter one.
    pub fn predict(&self, x: &[f32]) -> f32 {
        self.theta.iter().zip(x.iter()).map(|(&t, &v)| t * v).sum()
    }
}

/// Solves `A·x = b` by Gaussian elimination with partial pivoting. Returns
/// `None` for (near-)singular systems.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot_row = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot_row][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        // Eliminate.
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = a[row][col] / a[col][col];
            let (pivot_row, elim_row) = if col < row {
                let (head, tail) = a.split_at_mut(row);
                (&head[col], &mut tail[0])
            } else {
                let (head, tail) = a.split_at_mut(col);
                (&tail[0], &mut head[row])
            };
            for (v, &pv) in elim_row[col..].iter_mut().zip(&pivot_row[col..]) {
                *v -= factor * pv;
            }
            b[row] -= factor * b[col];
        }
    }
    Some((0..n).map(|i| b[i] / a[i][i]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn recovers_exact_linear_relation() {
        // y = 2*x0 + 3*x1 - 1 (with intercept feature).
        let samples: Vec<(Vec<f32>, f32)> = (0..50)
            .map(|i| {
                let x0 = i as f32 * 0.1;
                let x1 = (i % 7) as f32;
                (vec![1.0, x0, x1], -1.0 + 2.0 * x0 + 3.0 * x1)
            })
            .collect();
        let model = LinearRegression::fit(&samples).unwrap();
        let c = model.coefficients();
        assert!((c[0] + 1.0).abs() < 1e-3);
        assert!((c[1] - 2.0).abs() < 1e-3);
        assert!((c[2] - 3.0).abs() < 1e-3);
        assert!((model.predict(&[1.0, 1.0, 1.0]) - 4.0).abs() < 1e-2);
    }

    #[test]
    fn fit_rejects_empty_and_inconsistent_input() {
        assert!(LinearRegression::fit(&[]).is_none());
        let bad = vec![(vec![1.0, 2.0], 1.0), (vec![1.0], 2.0)];
        assert!(LinearRegression::fit(&bad).is_none());
    }

    #[test]
    fn zeros_model_predicts_zero() {
        let m = LinearRegression::zeros(4);
        assert_eq!(m.predict(&[1.0, 2.0, 3.0, 4.0]), 0.0);
        assert_eq!(m.dim(), 4);
    }

    #[test]
    fn single_feature_fit_matches_slope() {
        // MAUI-style: y = 0.005 * n.
        let samples: Vec<(Vec<f32>, f32)> = (1..100)
            .map(|n| (vec![n as f32], 0.005 * n as f32))
            .collect();
        let m = LinearRegression::fit(&samples).unwrap();
        assert!((m.coefficients()[0] - 0.005).abs() < 1e-6);
    }

    #[test]
    fn from_coefficients_roundtrip() {
        let m = LinearRegression::from_coefficients(vec![1.5, -2.0]);
        assert_eq!(m.predict(&[2.0, 1.0]), 1.0);
    }

    proptest! {
        #[test]
        fn prop_fit_recovers_random_2d_relation(a in -5.0f32..5.0, b in -5.0f32..5.0) {
            let samples: Vec<(Vec<f32>, f32)> = (0..40)
                .map(|i| {
                    let x = (i as f32) * 0.25 - 5.0;
                    (vec![1.0, x], a + b * x)
                })
                .collect();
            let m = LinearRegression::fit(&samples).unwrap();
            prop_assert!((m.coefficients()[0] - a).abs() < 1e-2);
            prop_assert!((m.coefficients()[1] - b).abs() < 1e-2);
        }
    }
}
