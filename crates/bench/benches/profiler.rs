//! Micro-benchmarks of the I-Prof and MAUI hot paths: one prediction and one
//! observation per learning task (the paper stresses that the profiler must
//! add negligible latency to each request).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fleet_device::DeviceFeatures;
use fleet_profiler::training::{collect_calibration, pretrained_iprof, pretrained_maui};
use fleet_profiler::{Slo, WorkloadProfiler};

fn profiler_benches(c: &mut Criterion) {
    let profiles = fleet_device::profile::catalogue();
    let calibration = collect_calibration(&profiles[..10], Slo::latency(3.0), 8, 30, 1);
    let features = DeviceFeatures::default();

    c.bench_function("iprof_predict", |b| {
        let mut iprof = pretrained_iprof(Slo::latency(3.0), &calibration);
        b.iter(|| black_box(iprof.predict("Galaxy S7", &features)));
    });

    c.bench_function("iprof_predict_and_observe", |b| {
        let mut iprof = pretrained_iprof(Slo::latency(3.0), &calibration);
        b.iter(|| {
            let n = iprof.predict("Galaxy S7", &features);
            iprof.observe("Galaxy S7", &features, n, 3.1, 0.05);
            black_box(n)
        });
    });

    c.bench_function("maui_predict_and_observe", |b| {
        let mut maui = pretrained_maui(Slo::latency(3.0), &calibration);
        b.iter(|| {
            let n = maui.predict("Galaxy S7", &features);
            maui.observe("Galaxy S7", &features, n, 3.1, 0.05);
            black_box(n)
        });
    });

    c.bench_function("calibration_collection_5_devices", |b| {
        b.iter(|| {
            black_box(collect_calibration(
                &profiles[..5],
                Slo::latency(3.0),
                8,
                20,
                2,
            ))
        });
    });
}

criterion_group!(benches, profiler_benches);
criterion_main!(benches);
