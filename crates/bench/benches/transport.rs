//! Socket-transport throughput: full protocol exchanges per second as the
//! number of concurrent worker connections grows.
//!
//! Each measured iteration releases every persistent worker thread for one
//! complete request → execute → upload round-trip over a real Unix socket
//! and waits for all of them, so an iteration moves `connections` exchanges
//! through the shared [`FleetServer`] core. Dividing `connections` by the
//! per-iteration time gives submits/sec at that connection count; the run
//! records the scaling of the core mutex plus the framing/syscall overhead,
//! not the model math (the mini-batch is clamped tiny).
//!
//! Run via `scripts/ci.sh` (or set `FLEET_BENCH_JSON=BENCH_transport.json`);
//! timings are per-machine, so compare runs from the same host only.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fleet_data::partition::non_iid_shards;
use fleet_data::synthetic::{generate, SyntheticSpec};
use fleet_device::profile::catalogue;
use fleet_device::Device;
use fleet_ml::models::mlp_classifier;
use fleet_server::protocol::TaskResponse;
use fleet_server::{FleetServer, FleetServerConfig, ResultDisposition, Worker};
use fleet_transport::{Endpoint, TransportConfig, TransportServer, WorkerClient};
use std::sync::mpsc;
use std::sync::Arc;

/// The largest fleet any configuration drives at once.
const MAX_CONNECTIONS: usize = 4;

fn build_workers(count: usize) -> Vec<Worker> {
    let dataset = Arc::new(generate(&SyntheticSpec::vector(4, 6, 160), 11));
    let users = non_iid_shards(&dataset, count, 2, 12);
    let profiles = catalogue();
    users
        .into_iter()
        .enumerate()
        .map(|(i, indices)| {
            Worker::new(
                i as u64,
                Device::new(profiles[i % profiles.len()].clone(), i as u64),
                Arc::clone(&dataset),
                indices,
                mlp_classifier(6, &[8], 4, 0),
                i as u64 + 100,
            )
        })
        .collect()
}

/// One persistent worker connection: blocks on `go`, runs one full protocol
/// exchange, reports on `done`. Owning the client across iterations keeps
/// the socket and its kernel buffers warm — the bench measures exchanges,
/// not connection setup.
fn worker_loop(
    endpoint: Endpoint,
    mut worker: Worker,
    go: mpsc::Receiver<()>,
    done: mpsc::Sender<()>,
) {
    let mut client = WorkerClient::new(endpoint);
    while go.recv().is_ok() {
        match client.request(&worker.request()).expect("request") {
            TaskResponse::Assignment(mut assignment) => {
                // Clamp the workload so the measurement is transport +
                // core-mutex time, not gradient math.
                assignment.mini_batch_size = assignment.mini_batch_size.min(8);
                let result = worker.execute(&assignment).expect("execute");
                let ack = client.submit(&result).expect("submit");
                assert_eq!(ack.disposition, ResultDisposition::Applied);
            }
            TaskResponse::Rejected(reason) => panic!("bench worker rejected: {reason:?}"),
        }
        done.send(()).expect("report completion");
    }
}

fn transport_benches(c: &mut Criterion) {
    for connections in [1usize, 2, 4] {
        c.bench_with_input(
            BenchmarkId::new("socket_submits", connections),
            &connections,
            |b, &connections| {
                let path = std::env::temp_dir().join(format!(
                    "fleet-bench-{}-{connections}.sock",
                    std::process::id()
                ));
                let _ = std::fs::remove_file(&path);
                let server = TransportServer::bind(
                    &Endpoint::uds(path),
                    FleetServer::new(
                        mlp_classifier(6, &[8], 4, 0).parameters(),
                        FleetServerConfig::builder()
                            .num_classes(4)
                            // Concurrent unsynchronised clients: leases must
                            // survive however long a neighbour's turn takes.
                            .lease_min_rounds(1 << 32)
                            .build()
                            .expect("bench config is valid"),
                    ),
                    TransportConfig::default(),
                )
                .expect("bind bench socket");
                let (done_tx, done_rx) = mpsc::channel();
                let mut gos = Vec::new();
                let mut threads = Vec::new();
                for worker in build_workers(MAX_CONNECTIONS).into_iter().take(connections) {
                    let (go_tx, go_rx) = mpsc::channel();
                    let endpoint = server.endpoint().clone();
                    let done = done_tx.clone();
                    // lint:allow(thread-hygiene): persistent bench clients —
                    // each thread owns one live socket connection, is gated
                    // per-iteration by its `go` channel and is joined before
                    // the bench returns.
                    threads.push(std::thread::spawn(move || {
                        worker_loop(endpoint, worker, go_rx, done)
                    }));
                    gos.push(go_tx);
                }
                b.iter(|| {
                    for go in &gos {
                        go.send(()).expect("release worker");
                    }
                    for _ in 0..connections {
                        done_rx.recv().expect("exchange completed");
                    }
                    black_box(());
                });
                drop(gos);
                for thread in threads {
                    thread.join().expect("bench worker thread");
                }
                server.shutdown().expect("shutdown bench server");
            },
        );
    }
}

criterion_group!(benches, transport_benches);
criterion_main!(benches);
