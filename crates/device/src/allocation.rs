//! CPU-core allocation policies.
//!
//! §2.4 of the paper: on non-rooted Android the only available knob is the set
//! of cores the learning task runs on. FLeet uses a simple scheme — big cores
//! only on big.LITTLE SoCs, all cores otherwise — because for compute-bound
//! embarrassingly parallel gradient tasks the big cores are both faster *and*
//! more energy-efficient (they finish much sooner), while symmetric ARMv7
//! parts consume roughly constant energy per workload regardless of core
//! count.

use crate::profile::DeviceProfile;
use serde::{Deserialize, Serialize};

/// Which cores a learning task is scheduled on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoreAllocation {
    /// Only the big cluster (FLeet's choice on big.LITTLE SoCs).
    BigCoresOnly,
    /// Only the LITTLE cluster.
    LittleCoresOnly,
    /// Every core in the SoC (FLeet's choice on symmetric SoCs).
    AllCores,
    /// An explicit number of big and LITTLE cores (what CALOREE sweeps over).
    Custom {
        /// Number of big cores used.
        big: u32,
        /// Number of LITTLE cores used.
        little: u32,
    },
}

impl CoreAllocation {
    /// FLeet's allocation policy for a device (§2.4).
    pub fn fleet_policy(profile: &DeviceProfile) -> Self {
        if profile.is_big_little() {
            CoreAllocation::BigCoresOnly
        } else {
            CoreAllocation::AllCores
        }
    }

    /// Number of (big, little) cores this allocation uses on `profile`,
    /// clamped to what the SoC offers.
    pub fn cores_used(&self, profile: &DeviceProfile) -> (u32, u32) {
        match *self {
            CoreAllocation::BigCoresOnly => {
                (profile.big_cores.max(1).min(profile.big_cores.max(1)), 0)
            }
            CoreAllocation::LittleCoresOnly => (0, profile.little_cores),
            CoreAllocation::AllCores => (profile.big_cores, profile.little_cores),
            CoreAllocation::Custom { big, little } => {
                (big.min(profile.big_cores), little.min(profile.little_cores))
            }
        }
    }

    /// Relative speed of this allocation compared with the profile's baseline
    /// (big cores only, or all cores on a symmetric SoC). Higher is faster.
    ///
    /// Returns a small positive floor when the allocation selects no usable
    /// core, so downstream latency stays finite.
    pub fn relative_speed(&self, profile: &DeviceProfile) -> f32 {
        let (big, little) = self.cores_used(profile);
        let reference = reference_throughput(profile);
        let throughput = throughput(profile, big, little);
        (throughput / reference).max(0.05)
    }

    /// Relative *power* draw of this allocation compared with the baseline.
    /// Big cores draw more power per core than LITTLE cores.
    pub fn relative_power(&self, profile: &DeviceProfile) -> f32 {
        let (big, little) = self.cores_used(profile);
        let reference = reference_power(profile);
        let power = power(big, little);
        (power / reference).max(0.05)
    }

    /// Relative energy per unit of work: power divided by speed. FLeet's
    /// policy has value 1.0 by construction.
    pub fn relative_energy(&self, profile: &DeviceProfile) -> f32 {
        self.relative_power(profile) / self.relative_speed(profile)
    }
}

/// Per-core relative throughput: a big core is ~2x a LITTLE core for the
/// compute-bound gradient kernels.
const BIG_CORE_THROUGHPUT: f32 = 1.0;
const LITTLE_CORE_THROUGHPUT: f32 = 0.45;
/// Per-core relative power draw.
const BIG_CORE_POWER: f32 = 1.0;
const LITTLE_CORE_POWER: f32 = 0.55;

fn throughput(profile: &DeviceProfile, big: u32, little: u32) -> f32 {
    // Parallel efficiency tapers slightly with core count (memory bandwidth).
    let raw = big as f32 * BIG_CORE_THROUGHPUT + little as f32 * LITTLE_CORE_THROUGHPUT;
    let total = (big + little) as f32;
    if total == 0.0 {
        return 0.0;
    }
    let efficiency = 1.0 - 0.03 * (total - 1.0).max(0.0);
    let _ = profile;
    raw * efficiency.max(0.5)
}

fn power(big: u32, little: u32) -> f32 {
    big as f32 * BIG_CORE_POWER + little as f32 * LITTLE_CORE_POWER
}

fn reference_throughput(profile: &DeviceProfile) -> f32 {
    if profile.is_big_little() {
        throughput(profile, profile.big_cores, 0)
    } else {
        throughput(profile, 0, profile.little_cores)
    }
}

fn reference_power(profile: &DeviceProfile) -> f32 {
    if profile.is_big_little() {
        power(profile.big_cores, 0)
    } else {
        power(0, profile.little_cores)
    }
}

/// Enumerates every feasible `Custom` allocation of a device (used by CALOREE
/// to build its performance hash table).
pub fn enumerate_allocations(profile: &DeviceProfile) -> Vec<CoreAllocation> {
    let mut out = Vec::new();
    for big in 0..=profile.big_cores {
        for little in 0..=profile.little_cores {
            if big + little == 0 {
                continue;
            }
            out.push(CoreAllocation::Custom { big, little });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::by_name;

    #[test]
    fn fleet_policy_prefers_big_cores_on_big_little() {
        let s7 = by_name("Galaxy S7").unwrap();
        assert_eq!(
            CoreAllocation::fleet_policy(&s7),
            CoreAllocation::BigCoresOnly
        );
        let e3 = by_name("Xperia E3").unwrap();
        assert_eq!(CoreAllocation::fleet_policy(&e3), CoreAllocation::AllCores);
    }

    #[test]
    fn fleet_policy_has_unit_relative_metrics() {
        for p in crate::profile::catalogue() {
            let alloc = CoreAllocation::fleet_policy(&p);
            assert!((alloc.relative_speed(&p) - 1.0).abs() < 1e-5, "{}", p.name);
            assert!((alloc.relative_energy(&p) - 1.0).abs() < 1e-5, "{}", p.name);
        }
    }

    #[test]
    fn little_cores_are_slower_and_less_efficient_for_compute() {
        let s7 = by_name("Galaxy S7").unwrap();
        let little = CoreAllocation::LittleCoresOnly;
        assert!(little.relative_speed(&s7) < 1.0);
        // §2.4: big cores are MORE energy-efficient for compute-intensive tasks.
        assert!(little.relative_energy(&s7) > 1.0);
    }

    #[test]
    fn all_cores_faster_than_big_only_but_less_efficient() {
        let s7 = by_name("Galaxy S7").unwrap();
        let all = CoreAllocation::AllCores;
        assert!(all.relative_speed(&s7) > 1.0);
        assert!(all.relative_energy(&s7) >= 1.0);
    }

    #[test]
    fn custom_allocation_clamped_to_available_cores() {
        let s7 = by_name("Galaxy S7").unwrap();
        let alloc = CoreAllocation::Custom {
            big: 100,
            little: 100,
        };
        assert_eq!(alloc.cores_used(&s7), (s7.big_cores, s7.little_cores));
    }

    #[test]
    fn zero_core_allocation_has_floor_speed() {
        let s7 = by_name("Galaxy S7").unwrap();
        let alloc = CoreAllocation::Custom { big: 0, little: 0 };
        assert!(alloc.relative_speed(&s7) > 0.0);
    }

    #[test]
    fn enumerate_covers_all_combinations() {
        let s7 = by_name("Galaxy S7").unwrap(); // 4 big + 4 little
        let allocs = enumerate_allocations(&s7);
        assert_eq!(allocs.len(), 5 * 5 - 1);
        let e3 = by_name("Xperia E3").unwrap(); // 0 big + 4 little
        assert_eq!(enumerate_allocations(&e3).len(), 4);
    }
}
