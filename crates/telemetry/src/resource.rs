//! Process resource capture from `/proc/self` — no libc dependency.
//!
//! The workspace builds without crates.io access, so instead of
//! `getrusage(2)` this reads the procfs text interfaces directly:
//!
//! * `/proc/self/status` — `VmHWM` (peak resident set, kB) and the two
//!   context-switch counters;
//! * `/proc/self/stat` — `utime`/`stime` in clock ticks (fields 14/15,
//!   counted after the parenthesised comm, which may itself contain spaces
//!   and parentheses — parsing starts after the *last* `)`).
//!
//! Clock ticks are converted at the `USER_HZ = 100` every Linux
//! architecture this workspace targets uses. On non-Linux hosts every field
//! reads zero; callers treat zeros as "unavailable", not as a measurement.

/// A point-in-time capture of the process's resource consumption.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResourceUsage {
    /// Peak resident set size, in bytes (monotonic over process lifetime).
    pub max_rss_bytes: u64,
    /// User-mode CPU time consumed so far, in seconds.
    pub cpu_user_seconds: f64,
    /// Kernel-mode CPU time consumed so far, in seconds.
    pub cpu_system_seconds: f64,
    /// Voluntary context switches.
    pub voluntary_ctx_switches: u64,
    /// Involuntary context switches.
    pub involuntary_ctx_switches: u64,
}

/// Kernel clock ticks per second for process times (USER_HZ).
const TICKS_PER_SECOND: f64 = 100.0;

impl ResourceUsage {
    /// Captures the current usage. All-zero off Linux or if procfs is
    /// unreadable.
    pub fn capture() -> Self {
        let mut usage = ResourceUsage::default();
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    usage.max_rss_bytes = parse_kb(rest) * 1024;
                } else if let Some(rest) = line.strip_prefix("voluntary_ctxt_switches:") {
                    usage.voluntary_ctx_switches = parse_u64(rest);
                } else if let Some(rest) = line.strip_prefix("nonvoluntary_ctxt_switches:") {
                    usage.involuntary_ctx_switches = parse_u64(rest);
                }
            }
        }
        if let Ok(stat) = std::fs::read_to_string("/proc/self/stat") {
            // Skip past the parenthesised comm; fields after it are
            // space-separated, with utime/stime at (1-indexed) 14/15 of the
            // whole line — i.e. 12th/13th after the closing paren + state.
            if let Some(after_comm) = stat.rsplit_once(')').map(|(_, rest)| rest) {
                let fields: Vec<&str> = after_comm.split_whitespace().collect();
                // after_comm fields: [state, ppid, pgrp, session, tty_nr,
                // tpgid, flags, minflt, cminflt, majflt, cmajflt, utime,
                // stime, ...]
                if fields.len() > 12 {
                    usage.cpu_user_seconds =
                        fields[11].parse::<u64>().unwrap_or(0) as f64 / TICKS_PER_SECOND;
                    usage.cpu_system_seconds =
                        fields[12].parse::<u64>().unwrap_or(0) as f64 / TICKS_PER_SECOND;
                }
            }
        }
        usage
    }

    /// CPU seconds (user + system) consumed between two captures.
    pub fn cpu_seconds_since(&self, earlier: &ResourceUsage) -> f64 {
        (self.cpu_user_seconds - earlier.cpu_user_seconds)
            + (self.cpu_system_seconds - earlier.cpu_system_seconds)
    }
}

fn parse_u64(text: &str) -> u64 {
    text.trim().parse().unwrap_or(0)
}

fn parse_kb(text: &str) -> u64 {
    text.trim()
        .strip_suffix("kB")
        .map(str::trim)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_reports_plausible_values_on_linux() {
        let usage = ResourceUsage::capture();
        if cfg!(target_os = "linux") {
            // Any test process has touched a few MB and burned some CPU.
            assert!(usage.max_rss_bytes > 1024 * 1024, "{usage:?}");
            assert!(usage.cpu_user_seconds >= 0.0, "{usage:?}");
        }
    }

    #[test]
    fn cpu_delta_between_captures_is_non_negative() {
        let before = ResourceUsage::capture();
        // Burn a little CPU deterministically.
        let mut x = 1u64;
        for i in 1..200_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        assert!(x != 0);
        let after = ResourceUsage::capture();
        assert!(after.cpu_seconds_since(&before) >= 0.0);
        assert!(after.max_rss_bytes >= before.max_rss_bytes);
    }

    #[test]
    fn kb_parsing_handles_the_status_format() {
        assert_eq!(parse_kb("  123456 kB"), 123456);
        assert_eq!(parse_kb("garbage"), 0);
        assert_eq!(parse_u64("  42 "), 42);
    }
}
