//! End-to-end tests of the socket transport: digest parity with the
//! in-process protocol, lease reclaim on disconnect, overload on the wire,
//! deadlines, reconnect/resume and drain-on-shutdown.

mod common;

use common::{base_config, build_workers, digest, fresh_server, model_parameters, uds_endpoint};
use fleet_core::ApplyMode;
use fleet_server::protocol::{RejectionReason, TaskResponse};
use fleet_server::{decode_checkpoint, FleetServerConfig, ResultDisposition, RetryPolicy};
use fleet_transport::{
    ClientConfig, ClientError, Endpoint, Stream, TransportConfig, TransportServer, WorkerClient,
};
use std::io::Read;
use std::time::Duration;

/// Drives `rounds` sequential turns of every worker through the in-process
/// *wire* entry points (so label-distribution requantisation matches what
/// the socket path decodes) and returns the final model digest.
fn in_process_digest(workers: usize, rounds: usize, config: FleetServerConfig) -> u64 {
    let mut server = fresh_server(config);
    let mut fleet = build_workers(workers);
    for _ in 0..rounds {
        for worker in fleet.iter_mut() {
            let response = server
                .handle_request_wire(worker.request_wire())
                .expect("self-encoded request");
            match response {
                TaskResponse::Assignment(assignment) => {
                    let raw = worker.execute_wire(&assignment).expect("execute");
                    server.handle_result_wire(raw).expect("self-encoded result");
                }
                TaskResponse::Rejected(reason) => panic!("unexpected rejection: {reason:?}"),
            }
        }
    }
    digest(server.parameters())
}

/// The same schedule through a live transport server, one client per
/// worker, returning the digest of the shutdown checkpoint.
fn socket_digest(endpoint: &Endpoint, workers: usize, rounds: usize) -> u64 {
    let server = TransportServer::bind(
        endpoint,
        fresh_server(base_config()),
        TransportConfig::default(),
    )
    .expect("bind");
    let endpoint = server.endpoint().clone();
    let mut fleet = build_workers(workers);
    let mut clients: Vec<WorkerClient> = (0..workers)
        .map(|_| WorkerClient::new(endpoint.clone()))
        .collect();
    for _ in 0..rounds {
        for (worker, client) in fleet.iter_mut().zip(clients.iter_mut()) {
            let response = client.request(&worker.request()).expect("request");
            match response {
                TaskResponse::Assignment(assignment) => {
                    let result = worker.execute(&assignment).expect("execute");
                    let ack = client.submit(&result).expect("submit");
                    assert_eq!(ack.disposition, ResultDisposition::Applied);
                }
                TaskResponse::Rejected(reason) => panic!("unexpected rejection: {reason:?}"),
            }
        }
    }
    assert_eq!(server.steps(), (workers * rounds) as u64);
    let state = server.shutdown().expect("shutdown");
    digest(&state.parameter_server.parameters)
}

#[test]
fn uds_run_matches_the_in_process_digest_bit_for_bit() {
    let over_socket = socket_digest(&uds_endpoint("e2e"), 3, 2);
    let in_process = in_process_digest(3, 2, base_config());
    assert_eq!(
        over_socket, in_process,
        "the socket transport must not perturb the trajectory"
    );
}

#[test]
fn tcp_run_matches_the_in_process_digest_bit_for_bit() {
    let endpoint = Endpoint::tcp("127.0.0.1:0".parse().unwrap());
    let over_socket = socket_digest(&endpoint, 2, 2);
    let in_process = in_process_digest(2, 2, base_config());
    assert_eq!(over_socket, in_process);
}

#[test]
fn overload_rejection_travels_the_wire() {
    // K = 100 never applies; max_pending = 1 saturates the shard after one
    // buffered gradient, so the second worker's request is shed over the
    // socket exactly as it would be in-process.
    let config = base_config()
        .to_builder()
        .aggregation_k(100)
        .max_pending(1)
        .build()
        .expect("overload config is valid");
    let server = TransportServer::bind(
        &uds_endpoint("overload"),
        fresh_server(config),
        TransportConfig::default(),
    )
    .expect("bind");
    let endpoint = server.endpoint().clone();
    let mut fleet = build_workers(2);
    let mut client = WorkerClient::new(endpoint.clone());

    let assignment = match client.request(&fleet[0].request()).expect("request") {
        TaskResponse::Assignment(a) => a,
        TaskResponse::Rejected(r) => panic!("rejected: {r:?}"),
    };
    let ack = client
        .submit(&fleet[0].execute(&assignment).expect("execute"))
        .expect("submit");
    assert_eq!(ack.disposition, ResultDisposition::Applied);
    assert!(!ack.model_updated, "K = 100 only buffers");

    let mut other = WorkerClient::new(endpoint);
    match other.request(&fleet[1].request()).expect("request") {
        TaskResponse::Rejected(RejectionReason::Overloaded { shard }) => assert_eq!(shard, 0),
        response => panic!("expected an overload rejection, got {response:?}"),
    }
    // Overload does not consume a protocol step: the shed worker still owes
    // its exchange.
    assert_eq!(server.steps(), 1);
    server.shutdown().expect("shutdown");
}

#[test]
fn disconnect_reclaims_the_dead_workers_lease() {
    let server = TransportServer::bind(
        &uds_endpoint("reclaim"),
        fresh_server(base_config()),
        TransportConfig::default(),
    )
    .expect("bind");
    let endpoint = server.endpoint().clone();
    let mut fleet = build_workers(1);

    let mut doomed = WorkerClient::new(endpoint.clone());
    let assignment = match doomed.request(&fleet[0].request()).expect("request") {
        TaskResponse::Assignment(a) => a,
        TaskResponse::Rejected(r) => panic!("rejected: {r:?}"),
    };
    let mut monitor = WorkerClient::new(endpoint.clone());
    assert_eq!(monitor.status().expect("status").outstanding, 1);

    // The worker dies mid-task: its connection closes, the server reclaims
    // the lease. Poll until the handler thread has run.
    doomed.disconnect();
    let mut outstanding = u64::MAX;
    for _ in 0..400 {
        outstanding = monitor.status().expect("status").outstanding;
        if outstanding == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(outstanding, 0, "the dead worker's lease must be reclaimed");

    // The resurrected worker's straggler upload is Expired, never applied —
    // and a fresh request immediately gets a new lease.
    let straggler = fleet[0].execute(&assignment).expect("execute");
    let mut revived = WorkerClient::new(endpoint);
    let ack = revived.submit(&straggler).expect("submit");
    assert_eq!(ack.disposition, ResultDisposition::Expired);
    assert!(matches!(
        revived.request(&fleet[0].request()).expect("request"),
        TaskResponse::Assignment(_)
    ));
    server.shutdown().expect("shutdown");
}

#[test]
fn read_deadline_kills_a_stalled_peer_but_not_the_server() {
    let server = TransportServer::bind(
        &uds_endpoint("deadline"),
        fresh_server(base_config()),
        TransportConfig::builder()
            .read_budget(Duration::from_millis(80))
            .build()
            .expect("deadline config is valid"),
    )
    .expect("bind");
    let endpoint = server.endpoint().clone();

    // A slow-loris peer: open a connection, send half a frame header, stall.
    let mut stalled = Stream::connect(&endpoint).expect("connect");
    use std::io::Write;
    stalled.write_all(&[0x20, 0x00]).expect("half a header");
    // The server kills the connection once the frame budget lapses: our
    // next read sees EOF (or a reset) instead of blocking forever.
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut sink = Vec::new();
    match stalled.read_to_end(&mut sink) {
        Ok(_) => {} // clean EOF: the server closed the connection
        Err(err) => assert!(
            // A reset also proves the close; only our own guard timing out
            // would mean the server left the stalled peer pinned.
            !matches!(
                err.kind(),
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
            ),
            "server failed to close the stalled connection: {err}"
        ),
    }

    // The server itself is fine: a clean exchange still works.
    let mut fleet = build_workers(1);
    let mut client = WorkerClient::new(endpoint);
    match client.request(&fleet[0].request()).expect("request") {
        TaskResponse::Assignment(a) => {
            let ack = client
                .submit(&fleet[0].execute(&a).expect("execute"))
                .expect("submit");
            assert_eq!(ack.disposition, ResultDisposition::Applied);
        }
        TaskResponse::Rejected(r) => panic!("rejected: {r:?}"),
    }
    server.shutdown().expect("shutdown");
}

#[test]
fn resend_after_reconnect_is_deduplicated() {
    // A worker crashes after uploading but before its ack lands; on restart
    // it resends the same encoded bytes over a fresh connection. The v3
    // task id makes the server treat the copy as a duplicate.
    let server = TransportServer::bind(
        &uds_endpoint("resume"),
        fresh_server(base_config()),
        TransportConfig::default(),
    )
    .expect("bind");
    let endpoint = server.endpoint().clone();
    let mut fleet = build_workers(1);
    let mut client = WorkerClient::new(endpoint);

    let assignment = match client.request(&fleet[0].request()).expect("request") {
        TaskResponse::Assignment(a) => a,
        TaskResponse::Rejected(r) => panic!("rejected: {r:?}"),
    };
    let raw = fleet_server::wire::encode_result(&fleet[0].execute(&assignment).expect("execute"))
        .to_vec();
    assert_eq!(
        client.submit_raw(&raw).expect("first copy").disposition,
        ResultDisposition::Applied
    );

    client.disconnect();
    // The client reconnects transparently inside the call.
    assert_eq!(
        client.submit_raw(&raw).expect("second copy").disposition,
        ResultDisposition::Duplicate
    );
    let state = server.shutdown().expect("shutdown");
    assert_eq!(state.tasks.completed.len(), 1);
}

#[test]
fn retries_exhaust_with_bounded_backoff_against_a_dead_endpoint() {
    let endpoint = uds_endpoint("nobody-home");
    let mut client = WorkerClient::with_config(
        endpoint,
        ClientConfig {
            retry: RetryPolicy::new(),
            backoff_unit: Duration::from_millis(1),
            ..ClientConfig::default()
        },
    );
    match client.status() {
        Err(ClientError::RetriesExhausted { attempts, .. }) => {
            // The initial try plus RetryPolicy::new()'s four retries.
            assert_eq!(attempts, 5);
        }
        other => panic!("expected exhausted retries, got {other:?}"),
    }
}

#[test]
fn shutdown_drains_shards_and_persists_the_checkpoint() {
    let checkpoint_path =
        std::env::temp_dir().join(format!("fleet-transport-{}-drain.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&checkpoint_path);
    let config = base_config()
        .to_builder()
        .aggregation_k(2)
        .shards(2)
        .apply_mode(ApplyMode::PerShard)
        .build()
        .expect("drain config is valid");
    let server = TransportServer::bind(
        &uds_endpoint("drain"),
        fresh_server(config),
        TransportConfig::builder()
            .checkpoint_path(checkpoint_path.clone())
            .build()
            .expect("checkpoint config is valid"),
    )
    .expect("bind");
    let endpoint = server.endpoint().clone();
    let mut fleet = build_workers(1);
    let mut client = WorkerClient::new(endpoint);

    // One gradient buffers (K = 2): only the drain can fold it in.
    let assignment = match client.request(&fleet[0].request()).expect("request") {
        TaskResponse::Assignment(a) => a,
        TaskResponse::Rejected(r) => panic!("rejected: {r:?}"),
    };
    let ack = client
        .submit(&fleet[0].execute(&assignment).expect("execute"))
        .expect("submit");
    assert!(!ack.model_updated, "K = 2 buffers the first gradient");

    let state = server.shutdown().expect("shutdown");
    assert_ne!(
        digest(&state.parameter_server.parameters),
        digest(&model_parameters()),
        "the drained gradient must reach the checkpointed model"
    );
    assert!(
        state
            .parameter_server
            .shard_pending
            .iter()
            .all(Vec::is_empty),
        "no gradient may be stranded in a pending buffer"
    );
    let raw = std::fs::read(&checkpoint_path).expect("checkpoint file");
    let decoded = decode_checkpoint(bytes::Bytes::from(raw)).expect("decodable checkpoint");
    assert_eq!(decoded, state);
    let _ = std::fs::remove_file(&checkpoint_path);
}

#[test]
fn shutdown_frame_sets_the_draining_flag() {
    let server = TransportServer::bind(
        &uds_endpoint("drainflag"),
        fresh_server(base_config()),
        TransportConfig::default(),
    )
    .expect("bind");
    let endpoint = server.endpoint().clone();
    let mut client = WorkerClient::new(endpoint);
    assert!(!client.status().expect("status").draining);
    assert!(!server.shutdown_requested());
    let status = client.request_shutdown().expect("shutdown frame");
    assert!(status.draining);
    assert!(server.shutdown_requested());
    server.shutdown().expect("shutdown");
}

#[test]
fn concurrent_clients_multiplex_onto_one_core() {
    let server = TransportServer::bind(
        &uds_endpoint("concurrent"),
        // Generous leases: this test is about multiplexing, and with four
        // unsynchronised clients a default four-round lease can expire while
        // its worker legitimately computes.
        fresh_server(
            base_config()
                .to_builder()
                .lease_min_rounds(64)
                .build()
                .expect("long-lease config is valid"),
        ),
        TransportConfig::default(),
    )
    .expect("bind");
    let endpoint = server.endpoint().clone();
    const WORKERS: usize = 4;
    const ROUNDS: usize = 3;
    let mut fleet = build_workers(WORKERS);
    let handles: Vec<std::thread::JoinHandle<()>> = fleet
        .drain(..)
        .map(|mut worker| {
            let endpoint = endpoint.clone();
            std::thread::spawn(move || {
                let mut client = WorkerClient::new(endpoint);
                for _ in 0..ROUNDS {
                    match client.request(&worker.request()).expect("request") {
                        TaskResponse::Assignment(a) => {
                            let result = worker.execute(&a).expect("execute");
                            let ack = client.submit(&result).expect("submit");
                            assert_eq!(ack.disposition, ResultDisposition::Applied);
                        }
                        TaskResponse::Rejected(r) => panic!("rejected: {r:?}"),
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("worker thread");
    }
    assert_eq!(server.steps(), (WORKERS * ROUNDS) as u64);
    let state = server.shutdown().expect("shutdown");
    assert_eq!(state.tasks.completed.len(), WORKERS * ROUNDS);
    assert_ne!(
        digest(&state.parameter_server.parameters),
        digest(&model_parameters()),
        "twelve applied gradients must move the model"
    );
}
