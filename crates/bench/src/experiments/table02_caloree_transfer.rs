//! Table 2: CALOREE's deadline error when its performance hash table is
//! collected on a Galaxy S7 and then used on other device models.

use crate::{ExperimentWriter, Scale};
use fleet_device::caloree::train_on_profile;
use fleet_device::profile::by_name;
use fleet_device::Device;

/// Runs the PHT-transfer experiment.
pub fn run(scale: Scale) {
    let mut out = ExperimentWriter::new("table02_caloree_transfer");
    out.comment("Table 2: CALOREE deadline error (%) when the PHT transfers to new devices");
    let calibration_batch = 500;
    let workload_batch = scale.pick(500, 1000);
    let repeats = scale.pick(3, 10);

    // Train on a Galaxy S7 and derive the deadline from the batch I-Prof
    // would hand that device (time the S7 actually needs for the workload).
    let (mut s7, caloree) = train_on_profile(
        by_name("Galaxy S7").expect("catalogue"),
        calibration_batch,
        31,
    );
    s7.idle(1e5);
    let deadline = s7.true_latency_slope() * workload_batch as f32;
    out.comment(format!(
        "workload batch = {workload_batch}, deadline = {deadline:.2} s"
    ));

    out.row("running_device,deadline_error_pct,paper_reported_pct");
    let paper = [
        ("Galaxy S7", 1.4f32),
        ("Galaxy S8", 9.0),
        ("Honor 9", 46.0),
        ("Honor 10", 255.0),
    ];
    for (name, paper_error) in paper {
        let mut device = if name == "Galaxy S7" {
            s7.clone()
        } else {
            Device::new(by_name(name).expect("catalogue"), 77)
        };
        let error = caloree.transfer_deadline_error(&mut device, workload_batch, deadline, repeats);
        out.row(format!("{name},{error:.1},{paper_error}"));
    }
    out.finish();
}
