//! Binary codecs for the durable artifacts, in the wire codec's idiom: a
//! one-byte version tag, `u32` little-endian length prefixes bounded by
//! [`MAX_PAYLOAD_LEN`], raw little-endian scalars.
//!
//! Two document types live here:
//!
//! * [`JournalRecord`] — one write-ahead-journal entry: a monotonic
//!   submission sequence number, an [`EventKind`], and the opaque event
//!   payload (the raw wire bytes of the request/result, or a reclaimed task
//!   id). [`encode_record`] emits the record *body* only; the journal file
//!   layer ([`crate::journal`]) wraps it in a `[u32 len][body][u32 crc]`
//!   frame so a torn tail is detectable.
//! * [`CheckpointDoc`] — the on-disk checkpoint container: generation,
//!   covered sequence number, the transport step counter and the opaque
//!   state payload, CRC-sealed as one self-contained blob.
//!
//! This file is under `fleet-lint`'s wire-exhaustive rule (listed in the
//! default policy's `codec_files`): every field of both structs must appear
//! on the encode *and* decode path, so field drift is machine-caught.

use crate::crc::crc32;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Hard bound on any length-prefixed field (matches the transport's frame
/// bound order of magnitude; a journal event is at most one wire message).
pub const MAX_PAYLOAD_LEN: usize = 256 * 1024 * 1024;

/// Journal record body format version.
pub const RECORD_VERSION: u8 = 1;

/// Checkpoint container format version.
pub const DOC_VERSION: u8 = 1;

/// Magic prefix of a checkpoint container file.
pub const DOC_MAGIC: [u8; 8] = *b"FLTCKPT\0";

/// Why a durable artifact failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the document did.
    Truncated,
    /// The container's magic prefix is wrong — not one of our files.
    BadMagic,
    /// A version byte this build does not understand.
    UnsupportedVersion(u8),
    /// A length prefix exceeding [`MAX_PAYLOAD_LEN`] or the remaining bytes.
    LengthOutOfBounds(usize),
    /// An event-kind byte with no [`EventKind`] mapping.
    UnknownEventKind(u8),
    /// The CRC seal did not match the content.
    CrcMismatch,
    /// Well-formed document followed by garbage bytes.
    TrailingBytes(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated durable document"),
            CodecError::BadMagic => write!(f, "bad container magic"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::LengthOutOfBounds(len) => write!(f, "length {len} out of bounds"),
            CodecError::UnknownEventKind(k) => write!(f, "unknown event kind {k}"),
            CodecError::CrcMismatch => write!(f, "CRC mismatch"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after document"),
        }
    }
}

impl std::error::Error for CodecError {}

/// What a journal record describes. The discriminants are the on-disk bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A state-changing task request (raw request wire bytes). Requests
    /// mutate more than the lease table — controller counters, I-Prof,
    /// device routing — so every successfully decoded request is journaled,
    /// rejections included.
    Request = 1,
    /// An uploaded result (raw result wire bytes), journaled whatever its
    /// disposition: even a `Duplicate` exchange advances the logical clock's
    /// expiry sweep.
    Result = 2,
    /// A lease force-reclaimed by a connection death (8-byte LE task id).
    Reclaim = 3,
}

impl EventKind {
    /// The on-disk discriminant.
    pub fn as_byte(self) -> u8 {
        self as u8
    }

    /// Parses an on-disk discriminant.
    pub fn from_byte(byte: u8) -> Option<EventKind> {
        match byte {
            1 => Some(EventKind::Request),
            2 => Some(EventKind::Result),
            3 => Some(EventKind::Reclaim),
            _ => None,
        }
    }
}

/// One write-ahead-journal entry. `seq` numbers are strictly contiguous
/// across the whole store (they chain across journal rotations), which is
/// what lets recovery detect a shortened or gapped history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Position in the total submission order (1-based; a checkpoint's
    /// [`CheckpointDoc::seq`] says which prefix it already covers).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// The opaque event payload (wire bytes / task id).
    pub payload: Bytes,
}

/// The on-disk checkpoint container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointDoc {
    /// Strictly monotonic checkpoint generation (1-based; generation 0 is
    /// the implicit empty store).
    pub generation: u64,
    /// The journal sequence number this checkpoint covers through: records
    /// with `seq` ≤ this are folded into the payload already.
    pub seq: u64,
    /// The transport's completed-step counter at checkpoint time, so a
    /// restarted server resumes the same step-gated schedule.
    pub steps: u64,
    /// The opaque serialized state (`fleet_server::encode_checkpoint`).
    pub payload: Bytes,
}

fn checked_len(len: usize) -> u32 {
    assert!(
        len <= MAX_PAYLOAD_LEN,
        "durable field of {len} bytes exceeds MAX_PAYLOAD_LEN"
    );
    len as u32
}

fn take_payload(buf: &mut Bytes) -> Result<Bytes, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if len > MAX_PAYLOAD_LEN {
        return Err(CodecError::LengthOutOfBounds(len));
    }
    if buf.remaining() < len {
        return Err(CodecError::Truncated);
    }
    Ok(buf.copy_to_bytes(len))
}

/// Encodes a journal record body (the journal file layer adds the
/// `[u32 len][body][u32 crc]` frame).
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_PAYLOAD_LEN`]; such a record could
/// never be read back.
pub fn encode_record(record: &JournalRecord) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 + 8 + 1 + 4 + record.payload.len());
    buf.put_u8(RECORD_VERSION);
    buf.put_u64_le(record.seq);
    buf.put_u8(record.kind.as_byte());
    buf.put_u32_le(checked_len(record.payload.len()));
    buf.put_slice(&record.payload.to_vec());
    buf.freeze()
}

/// Decodes a journal record body produced by [`encode_record`].
///
/// # Errors
///
/// [`CodecError`] on truncation, unknown version or kind, an out-of-bounds
/// length, or trailing garbage. CRC validation happens one layer down, in
/// the journal file framing.
pub fn decode_record(mut buf: Bytes) -> Result<JournalRecord, CodecError> {
    if buf.remaining() < 1 + 8 + 1 {
        return Err(CodecError::Truncated);
    }
    let version = buf.get_u8();
    if version != RECORD_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let seq = buf.get_u64_le();
    let kind_byte = buf.get_u8();
    let kind = EventKind::from_byte(kind_byte).ok_or(CodecError::UnknownEventKind(kind_byte))?;
    let payload = take_payload(&mut buf)?;
    if !buf.is_empty() {
        return Err(CodecError::TrailingBytes(buf.remaining()));
    }
    Ok(JournalRecord { seq, kind, payload })
}

/// Encodes a checkpoint container: magic, version, header scalars, payload,
/// CRC-32 seal over everything preceding it.
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_PAYLOAD_LEN`].
pub fn encode_doc(doc: &CheckpointDoc) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + 1 + 3 * 8 + 4 + doc.payload.len() + 4);
    buf.put_slice(&DOC_MAGIC);
    buf.put_u8(DOC_VERSION);
    buf.put_u64_le(doc.generation);
    buf.put_u64_le(doc.seq);
    buf.put_u64_le(doc.steps);
    buf.put_u32_le(checked_len(doc.payload.len()));
    buf.put_slice(&doc.payload.to_vec());
    let sealed = buf.freeze().to_vec();
    let mut out = BytesMut::with_capacity(sealed.len() + 4);
    out.put_slice(&sealed);
    out.put_u32_le(crc32(&sealed));
    out.freeze()
}

/// Decodes a checkpoint container produced by [`encode_doc`], validating the
/// CRC seal first — a torn or bit-flipped container is rejected as a whole,
/// never partially trusted.
///
/// # Errors
///
/// [`CodecError`] on any structural or integrity failure.
pub fn decode_doc(buf: Bytes) -> Result<CheckpointDoc, CodecError> {
    let raw = buf.to_vec();
    if raw.len() < 8 + 1 + 3 * 8 + 4 + 4 {
        return Err(CodecError::Truncated);
    }
    let (sealed, seal) = raw.split_at(raw.len() - 4);
    let expected = u32::from_le_bytes(seal.try_into().expect("4-byte seal"));
    if crc32(sealed) != expected {
        return Err(CodecError::CrcMismatch);
    }
    let mut buf = Bytes::from(sealed.to_vec());
    if buf.copy_to_bytes(8).to_vec() != DOC_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = buf.get_u8();
    if version != DOC_VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let generation = buf.get_u64_le();
    let seq = buf.get_u64_le();
    let steps = buf.get_u64_le();
    let payload = take_payload(&mut buf)?;
    if !buf.is_empty() {
        return Err(CodecError::TrailingBytes(buf.remaining()));
    }
    Ok(CheckpointDoc {
        generation,
        seq,
        steps,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> JournalRecord {
        JournalRecord {
            seq: 42,
            kind: EventKind::Result,
            payload: Bytes::from(vec![1, 2, 3, 250, 0]),
        }
    }

    fn sample_doc() -> CheckpointDoc {
        CheckpointDoc {
            generation: 7,
            seq: 12,
            steps: 9,
            payload: Bytes::from(b"opaque state".to_vec()),
        }
    }

    #[test]
    fn record_roundtrips() {
        let record = sample_record();
        assert_eq!(decode_record(encode_record(&record)).unwrap(), record);
        let empty = JournalRecord {
            seq: 1,
            kind: EventKind::Reclaim,
            payload: Bytes::from(Vec::new()),
        };
        assert_eq!(decode_record(encode_record(&empty)).unwrap(), empty);
    }

    #[test]
    fn doc_roundtrips() {
        let doc = sample_doc();
        assert_eq!(decode_doc(encode_doc(&doc)).unwrap(), doc);
    }

    #[test]
    fn record_truncation_errors_at_every_offset() {
        let encoded = encode_record(&sample_record());
        for len in 0..encoded.len() {
            assert!(
                decode_record(encoded.slice(0..len)).is_err(),
                "record prefix of length {len} decoded successfully"
            );
        }
    }

    #[test]
    fn doc_truncation_errors_at_every_offset() {
        let encoded = encode_doc(&sample_doc());
        for len in 0..encoded.len() {
            assert!(
                decode_doc(encoded.slice(0..len)).is_err(),
                "doc prefix of length {len} decoded successfully"
            );
        }
    }

    #[test]
    fn doc_bit_flips_rejected_everywhere() {
        let encoded = encode_doc(&sample_doc()).to_vec();
        for byte in 0..encoded.len() {
            let mut flipped = encoded.clone();
            flipped[byte] ^= 0x10;
            assert!(
                decode_doc(Bytes::from(flipped)).is_err(),
                "flip at byte {byte} decoded successfully"
            );
        }
    }

    #[test]
    fn unknown_kind_and_version_rejected() {
        let mut raw = encode_record(&sample_record()).to_vec();
        raw[0] = 9;
        assert_eq!(
            decode_record(Bytes::from(raw.clone())),
            Err(CodecError::UnsupportedVersion(9))
        );
        raw[0] = RECORD_VERSION;
        raw[9] = 77; // the kind byte
        assert_eq!(
            decode_record(Bytes::from(raw)),
            Err(CodecError::UnknownEventKind(77))
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut raw = encode_record(&sample_record()).to_vec();
        raw.push(0);
        assert_eq!(
            decode_record(Bytes::from(raw)),
            Err(CodecError::TrailingBytes(1))
        );
    }
}
