//! Staleness-dampening functions (Fig. 5 of the paper).
//!
//! * AdaSGD: `Λ(τ) = e^{−βτ}`, with β chosen so that the exponential curve
//!   crosses DynSGD's inverse curve at `τ_thres / 2`:
//!   `1 / (τ_thres/2 + 1) = e^{−β · τ_thres/2}`.
//! * DynSGD: `Λ(τ) = 1 / (τ + 1)`.
//! * FedAvg / SSGD: no dampening (`Λ(τ) = 1`).

use serde::{Deserialize, Serialize};

/// The dampening rate β of AdaSGD's exponential function for a given
/// `τ_thres` (Eq. in §2.3): `β = ln(τ_thres/2 + 1) / (τ_thres/2)`.
///
/// Returns 0.0 when `tau_thres` is zero (no dampening).
pub fn exponential_beta(tau_thres: u64) -> f64 {
    if tau_thres == 0 {
        return 0.0;
    }
    let half = tau_thres as f64 / 2.0;
    (half + 1.0).ln() / half
}

/// A staleness-dampening policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DampeningPolicy {
    /// AdaSGD's exponential dampening with rate β.
    Exponential {
        /// Decay rate β of `e^{−βτ}`.
        beta: f64,
    },
    /// DynSGD's inverse dampening `1/(τ+1)`.
    Inverse,
    /// No dampening (staleness-unaware).
    None,
}

impl DampeningPolicy {
    /// AdaSGD's policy calibrated for a `τ_thres`.
    pub fn exponential_for(tau_thres: u64) -> Self {
        DampeningPolicy::Exponential {
            beta: exponential_beta(tau_thres),
        }
    }

    /// The dampening factor `Λ(τ)` in `(0, 1]`. The exponential factor is
    /// floored at the smallest positive `f64` so that extreme staleness never
    /// underflows to an exact zero weight.
    pub fn factor(&self, staleness: u64) -> f64 {
        match *self {
            DampeningPolicy::Exponential { beta } => {
                (-beta * staleness as f64).exp().max(f64::MIN_POSITIVE)
            }
            DampeningPolicy::Inverse => 1.0 / (staleness as f64 + 1.0),
            DampeningPolicy::None => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn beta_makes_curves_cross_at_half_tau_thres() {
        for tau_thres in [4u64, 12, 24, 48] {
            let beta = exponential_beta(tau_thres);
            let half = tau_thres as f64 / 2.0;
            let exponential = (-beta * half).exp();
            let inverse = 1.0 / (half + 1.0);
            assert!(
                (exponential - inverse).abs() < 1e-9,
                "curves must intersect at tau_thres/2 for tau_thres={tau_thres}"
            );
        }
    }

    #[test]
    fn zero_tau_thres_disables_dampening() {
        assert_eq!(exponential_beta(0), 0.0);
        let p = DampeningPolicy::exponential_for(0);
        assert_eq!(p.factor(100), 1.0);
    }

    #[test]
    fn fresh_gradients_are_not_dampened() {
        for p in [
            DampeningPolicy::exponential_for(12),
            DampeningPolicy::Inverse,
            DampeningPolicy::None,
        ] {
            assert!((p.factor(0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn exponential_dampens_more_than_inverse_beyond_tau_thres() {
        // Fig. 5: beyond the crossing point the exponential curve lies below
        // the inverse curve (stronger dampening for very stale gradients)...
        let tau_thres = 12;
        let ada = DampeningPolicy::exponential_for(tau_thres);
        let dyn_ = DampeningPolicy::Inverse;
        for tau in (tau_thres + 1)..(4 * tau_thres) {
            assert!(ada.factor(tau) < dyn_.factor(tau), "tau={tau}");
        }
        // ...and above it before the crossing point (milder dampening for
        // moderately stale gradients).
        for tau in 1..(tau_thres / 2) {
            assert!(ada.factor(tau) > dyn_.factor(tau), "tau={tau}");
        }
    }

    #[test]
    fn none_policy_is_constant_one() {
        let p = DampeningPolicy::None;
        assert_eq!(p.factor(0), 1.0);
        assert_eq!(p.factor(1000), 1.0);
    }

    #[test]
    fn inverse_matches_formula() {
        let p = DampeningPolicy::Inverse;
        assert!((p.factor(1) - 0.5).abs() < 1e-12);
        assert!((p.factor(9) - 0.1).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_factors_in_unit_interval(tau in 0u64..1000, tau_thres in 1u64..100) {
            for p in [DampeningPolicy::exponential_for(tau_thres), DampeningPolicy::Inverse, DampeningPolicy::None] {
                let f = p.factor(tau);
                prop_assert!(f > 0.0 && f <= 1.0);
            }
        }

        #[test]
        fn prop_dampening_is_monotone_in_staleness(tau in 0u64..500, tau_thres in 1u64..100) {
            let p = DampeningPolicy::exponential_for(tau_thres);
            prop_assert!(p.factor(tau + 1) <= p.factor(tau));
            let i = DampeningPolicy::Inverse;
            prop_assert!(i.factor(tau + 1) <= i.factor(tau));
        }
    }
}
