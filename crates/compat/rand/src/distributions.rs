//! Distribution types (`Uniform` is the only one the workspace needs).

use crate::{RngCore, SampleRange};

/// A distribution that produces values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// A reusable uniform distribution over a fixed interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
    inclusive: bool,
}

impl<T: Copy + PartialOrd> Uniform<T> {
    /// Uniform over the half-open interval `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn new(lo: T, hi: T) -> Self {
        assert!(lo < hi, "Uniform::new requires lo < hi");
        Self {
            lo,
            hi,
            inclusive: false,
        }
    }

    /// Uniform over the closed interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new_inclusive(lo: T, hi: T) -> Self {
        assert!(lo <= hi, "Uniform::new_inclusive requires lo <= hi");
        Self {
            lo,
            hi,
            inclusive: true,
        }
    }
}

macro_rules! impl_uniform_distribution {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Uniform<$t> {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                if self.inclusive {
                    (self.lo..=self.hi).sample_single(rng)
                } else {
                    (self.lo..self.hi).sample_single(rng)
                }
            }
        }
    )*};
}
impl_uniform_distribution!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn uniform_inclusive_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let dist = Uniform::new_inclusive(-0.05f32, 0.05f32);
        for _ in 0..1000 {
            let v = dist.sample(&mut rng);
            assert!((-0.05..=0.05).contains(&v));
        }
    }

    #[test]
    fn uniform_int_covers_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = Uniform::new(0usize, 4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[dist.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
