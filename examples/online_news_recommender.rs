//! The paper's motivating scenario (§1, Fig. 1): Bob reads news in the
//! morning, and Online FL folds his clicks into the model quickly enough to
//! improve Alice's recommendations minutes later — while Standard FL waits
//! until the phones are idle, charging and on WiFi at night.
//!
//! This example runs the hashtag/news-recommendation workload over a synthetic
//! temporal stream and reports the hourly F1@top-5 of Online FL, Standard FL
//! and the most-popular baseline (the Fig. 6 comparison).
//!
//! Run with: `cargo run --release -p fleet-examples --example online_news_recommender`

use fleet_data::twitter::{HashtagStream, StreamSpec};
use fleet_server::online::{run_online_vs_standard, OnlineFlConfig};

fn main() {
    let spec = StreamSpec {
        days: 6,
        posts_per_hour: 40,
        num_users: 40,
        vocab_size: 80,
        feature_dim: 16,
        trend_lifetime_hours: 6.0,
        concurrent_trends: 5,
    };
    println!(
        "Generating {} days of synthetic news/hashtag activity from {} users...",
        spec.days, spec.num_users
    );
    let stream = HashtagStream::generate(&spec, 2024);
    let result = run_online_vs_standard(&stream, OnlineFlConfig::default());

    println!("\nhour | online F1 | standard F1 | most-popular F1");
    for chunk in result.chunks.iter().step_by(6) {
        println!(
            "{:4} |   {:.3}   |    {:.3}    |      {:.3}",
            chunk.hour, chunk.online_f1, chunk.standard_f1, chunk.most_popular_f1
        );
    }
    println!("\nAverages over {} evaluated hours:", result.chunks.len());
    println!("  Online FL      : {:.3}", result.mean_online());
    println!("  Standard FL    : {:.3}", result.mean_standard());
    println!("  Most popular   : {:.3}", result.mean_most_popular());
    println!(
        "  Quality boost  : {:.2}x (the paper reports 2.3x on its Twitter crawl)",
        result.quality_boost()
    );
}
