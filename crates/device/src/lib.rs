//! # fleet-device
//!
//! A parametric simulator of the mobile devices the FLeet paper evaluates on
//! (40 commercial Android phones plus a Raspberry Pi). See DESIGN.md for the
//! substitution rationale: the paper's own measurements (Fig. 4) show that a
//! learning task's computation time and energy grow *linearly* with the
//! mini-batch size, with a slope that differs per device and drifts with
//! temperature — exactly the structure this simulator reproduces.
//!
//! The crate provides:
//!
//! * [`profile::DeviceProfile`] and a [`profile::catalogue`] of named device
//!   models spanning the heterogeneity reported in the paper,
//! * [`features::DeviceFeatures`] — the stock-Android observable state that
//!   I-Prof receives with every worker request,
//! * [`thermal::ThermalModel`] — temperature rise under load / cool-down,
//! * [`device::Device`] — a stateful simulated handset executing learning
//!   tasks and reporting latency and energy,
//! * [`allocation`] — FLeet's big-core-only allocation policy (§2.4),
//! * [`caloree`] — the CALOREE baseline resource manager (§3.4, Table 2, Fig. 14),
//! * [`network`] — 3G/4G network latency models used for the staleness study (§3.1).

#![forbid(unsafe_code)]

pub mod allocation;
pub mod caloree;
pub mod device;
pub mod features;
pub mod network;
pub mod profile;
pub mod thermal;

pub use device::{Device, TaskExecution};
pub use features::DeviceFeatures;
pub use network::NetworkKind;
pub use profile::DeviceProfile;
