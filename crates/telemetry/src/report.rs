//! The `fleet-bench-v2` JSON writer.
//!
//! The criterion shim (`crates/compat/criterion`) introduced the schema:
//! a top-level `"schema": "fleet-bench-v2"`, a `meta` object describing the
//! recording configuration, and a `benchmarks` array whose entries carry at
//! least `name` / `mean_ns` / `iterations`. This writer emits the same
//! shape — so `scripts/bench_compare.py` diffs harness artifacts and
//! criterion artifacts with one code path — and extends entries with the
//! v2 telemetry fields (percentiles, queue depths, per-shard apply rates,
//! resource usage). The full field catalogue is frozen in this crate's
//! README; removing or renaming a field there is a schema break and needs a
//! version bump.

use std::fmt::Write as _;

/// A typed extended-field value of a benchmark entry.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (counts, nanoseconds, bytes).
    U64(u64),
    /// A float (rates, seconds).
    F64(f64),
    /// A string.
    Str(String),
    /// An array of unsigned integers.
    U64Array(Vec<u64>),
    /// An array of floats.
    F64Array(Vec<f64>),
}

impl FieldValue {
    fn render(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::F64(v) => render_f64(out, *v),
            FieldValue::Str(s) => {
                let _ = write!(out, "\"{}\"", json_escape(s));
            }
            FieldValue::U64Array(vs) => {
                out.push('[');
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{v}");
                }
                out.push(']');
            }
            FieldValue::F64Array(vs) => {
                out.push('[');
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    render_f64(out, *v);
                }
                out.push(']');
            }
        }
    }
}

/// Floats render with enough precision to round-trip rates, and non-finite
/// values (which JSON cannot carry) degrade to 0.
fn render_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:.3}");
    } else {
        out.push('0');
    }
}

/// One `benchmarks[]` entry: the mandatory v1 triple plus ordered extended
/// fields.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Benchmark name (e.g. `fleet_load/workers=64/conns=8`).
    pub name: String,
    /// Mean latency of the primary metric, nanoseconds.
    pub mean_ns: f64,
    /// Samples behind `mean_ns`.
    pub iterations: u64,
    /// Extended v2 fields, rendered in insertion order.
    pub fields: Vec<(String, FieldValue)>,
}

impl BenchEntry {
    /// An entry with no extended fields yet.
    pub fn new(name: impl Into<String>, mean_ns: f64, iterations: u64) -> Self {
        Self {
            name: name.into(),
            mean_ns,
            iterations,
            fields: Vec::new(),
        }
    }

    /// Appends an extended field.
    pub fn field(&mut self, key: impl Into<String>, value: FieldValue) -> &mut Self {
        self.fields.push((key.into(), value));
        self
    }
}

/// A complete `fleet-bench-v2` document.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    /// Meta entries as `(key, raw JSON value)`, rendered in order.
    meta: Vec<(String, String)>,
    /// Benchmark entries, rendered in order.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// An empty report carrying the standard recording-configuration meta
    /// block the criterion shim writes (`fleet_num_threads`, `fleet_simd`,
    /// `available_parallelism`, `fan_out_inline`), so artifacts from
    /// different hosts/configurations identify themselves.
    pub fn with_standard_meta() -> Self {
        let mut report = BenchReport::default();
        let parallelism = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let effective_threads = std::env::var("FLEET_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(parallelism);
        report.meta_raw("fleet_num_threads", json_env("FLEET_NUM_THREADS"));
        report.meta_raw("fleet_simd", json_env("FLEET_SIMD"));
        report.meta_raw("available_parallelism", parallelism.to_string());
        report.meta_raw("fan_out_inline", (effective_threads <= 1).to_string());
        report
    }

    /// Appends a string-valued meta entry (escaped).
    pub fn meta_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.meta_raw(key, format!("\"{}\"", json_escape(value)))
    }

    /// Appends a meta entry whose value is already a JSON fragment.
    pub fn meta_raw(&mut self, key: &str, raw: impl Into<String>) -> &mut Self {
        self.meta.push((key.to_string(), raw.into()));
        self
    }

    /// Appends a benchmark entry.
    pub fn push(&mut self, entry: BenchEntry) -> &mut Self {
        self.entries.push(entry);
        self
    }

    /// Renders the document.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"fleet-bench-v2\",\n  \"meta\": {\n");
        for (i, (key, raw)) in self.meta.iter().enumerate() {
            let comma = if i + 1 == self.meta.len() { "" } else { "," };
            let _ = writeln!(out, "    \"{}\": {raw}{comma}", json_escape(key));
        }
        out.push_str("  },\n  \"benchmarks\": [\n");
        for (i, entry) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"iterations\": {}",
                json_escape(&entry.name),
                if entry.mean_ns.is_finite() {
                    entry.mean_ns
                } else {
                    0.0
                },
                entry.iterations
            );
            for (key, value) in &entry.fields {
                let _ = write!(out, ", \"{}\": ", json_escape(key));
                value.render(&mut out);
            }
            let _ = writeln!(out, "}}{comma}");
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders and writes the document to `path`.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An environment variable as a JSON fragment: the quoted value, or `null`.
fn json_env(name: &str) -> String {
    match std::env::var(name) {
        Ok(v) => format!("\"{}\"", json_escape(&v)),
        Err(_) => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_schema_meta_and_extended_fields() {
        let mut report = BenchReport::with_standard_meta();
        report.meta_str("harness", "fleet-loadgen");
        let mut entry = BenchEntry::new("fleet_load/workers=64", 1234.5, 100);
        entry.field("p50_ns", FieldValue::U64(1000));
        entry.field("p99_ns", FieldValue::U64(2000));
        entry.field("shard_apply_rates_per_sec", FieldValue::F64Array(vec![1.5]));
        report.push(entry);
        let json = report.render();
        assert!(json.contains("\"schema\": \"fleet-bench-v2\""));
        assert!(json.contains("\"fleet_num_threads\""));
        assert!(json.contains("\"fan_out_inline\""));
        assert!(json.contains("\"harness\": \"fleet-loadgen\""));
        assert!(json.contains("\"p50_ns\": 1000"));
        assert!(json.contains("\"shard_apply_rates_per_sec\": [1.500]"));
        assert!(json.contains("\"mean_ns\": 1234.5"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_render_as_zero() {
        let mut entry = BenchEntry::new("x", f64::NAN, 0);
        entry.field("rate", FieldValue::F64(f64::INFINITY));
        let mut report = BenchReport::default();
        report.push(entry);
        let json = report.render();
        assert!(json.contains("\"mean_ns\": 0.0"));
        assert!(json.contains("\"rate\": 0"));
    }
}
