//! Simplified moments accountant.
//!
//! The paper measures the privacy loss ε with the moments accountant of Abadi
//! et al. given the sampling ratio `q = batch_size / N`, the noise multiplier
//! σ, the number of iterations `T` and `δ = 1/N²`. The full accountant
//! integrates log-moment bounds numerically; for the reproduction we use the
//! well-known closed-form bound of the same paper,
//! `ε ≈ c · q · sqrt(T · ln(1/δ)) / σ`, with `c = 2`, which preserves the
//! monotone relationships the experiments rely on (more noise or fewer steps
//! ⇒ smaller ε).

/// Closed-form moments-accountant estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MomentsAccountant {
    /// Sampling ratio `q = batch_size / dataset_size`.
    pub sampling_ratio: f64,
    /// Failure probability δ (the paper uses `1/N²`).
    pub delta: f64,
}

impl MomentsAccountant {
    /// Creates an accountant.
    ///
    /// # Panics
    ///
    /// Panics if `sampling_ratio` is not in `(0, 1]` or δ is not in `(0, 1)`.
    pub fn new(sampling_ratio: f64, delta: f64) -> Self {
        assert!(
            sampling_ratio > 0.0 && sampling_ratio <= 1.0,
            "sampling ratio must be in (0, 1]"
        );
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        Self {
            sampling_ratio,
            delta,
        }
    }

    /// The paper's §3.2 setup: mini-batch 100 over N = 60,000 MNIST examples,
    /// δ = 1/N².
    pub fn paper_mnist_defaults() -> Self {
        let n = 60_000.0;
        Self::new(100.0 / n, 1.0 / (n * n))
    }

    /// Estimated privacy loss ε after `steps` iterations with noise
    /// multiplier `sigma`. Returns `f64::INFINITY` when `sigma` is zero.
    pub fn epsilon(&self, sigma: f64, steps: u64) -> f64 {
        if sigma <= 0.0 {
            return f64::INFINITY;
        }
        let c = 2.0;
        c * self.sampling_ratio * ((steps as f64) * (1.0 / self.delta).ln()).sqrt() / sigma
    }

    /// The noise multiplier σ needed to stay within `epsilon` after `steps`
    /// iterations (the inverse of [`MomentsAccountant::epsilon`]).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not positive.
    pub fn noise_for_epsilon(&self, epsilon: f64, steps: u64) -> f64 {
        assert!(epsilon > 0.0, "epsilon must be positive");
        let c = 2.0;
        c * self.sampling_ratio * ((steps as f64) * (1.0 / self.delta).ln()).sqrt() / epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_decreases_with_noise() {
        let acc = MomentsAccountant::paper_mnist_defaults();
        let strong = acc.epsilon(8.0, 4000);
        let weak = acc.epsilon(1.0, 4000);
        assert!(strong < weak);
    }

    #[test]
    fn epsilon_grows_with_steps() {
        let acc = MomentsAccountant::paper_mnist_defaults();
        assert!(acc.epsilon(2.0, 8000) > acc.epsilon(2.0, 1000));
    }

    #[test]
    fn zero_noise_means_infinite_epsilon() {
        let acc = MomentsAccountant::paper_mnist_defaults();
        assert!(acc.epsilon(0.0, 100).is_infinite());
    }

    #[test]
    fn noise_for_epsilon_inverts_epsilon() {
        let acc = MomentsAccountant::paper_mnist_defaults();
        let sigma = acc.noise_for_epsilon(1.75, 4000);
        let eps = acc.epsilon(sigma, 4000);
        assert!((eps - 1.75).abs() < 1e-9);
    }

    #[test]
    fn paper_epsilons_require_more_noise_for_stronger_privacy() {
        // Figure 11 uses ε = 1.75 (strong) and ε = 13.66 (weak) over the same
        // number of steps: the strong guarantee must require more noise.
        let acc = MomentsAccountant::paper_mnist_defaults();
        let strong_noise = acc.noise_for_epsilon(1.75, 4000);
        let weak_noise = acc.noise_for_epsilon(13.66, 4000);
        assert!(strong_noise > weak_noise);
    }

    #[test]
    #[should_panic(expected = "sampling ratio")]
    fn invalid_sampling_ratio_panics() {
        MomentsAccountant::new(0.0, 1e-9);
    }
}
