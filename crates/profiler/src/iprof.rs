//! I-Prof: the SLO-driven workload profiler of the FLeet paper (§2.2).

use crate::linreg::LinearRegression;
use crate::passive_aggressive::PassiveAggressiveRegressor;
use crate::slo::Slo;
use crate::WorkloadProfiler;
use fleet_device::DeviceFeatures;
use std::collections::HashMap;

/// Floor for a predicted per-sample slope, preventing division blow-ups when a
/// (cold) model predicts a non-positive slope.
const MIN_LATENCY_SLOPE: f32 = 1e-5;
const MIN_ENERGY_SLOPE: f32 = 1e-8;
/// Upper bound on the proposed mini-batch size.
const MAX_BATCH: usize = 100_000;

/// Output of one I-Prof prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPrediction {
    /// The proposed mini-batch size (Eq. 1 of the paper, bounded by both
    /// SLO dimensions when both are configured).
    pub batch_size: usize,
    /// Computation time the profiler expects for that batch, in seconds.
    pub predicted_seconds: f32,
    /// Energy the profiler expects for that batch, in percent of battery.
    pub predicted_energy_pct: f32,
    /// Whether the personalised (passive-aggressive) model was used rather
    /// than the cold-start global model.
    pub personalized: bool,
}

/// Checkpointed mutable state of one [`SlopePredictor`]. Configuration
/// (ε, slope floor, retrain period) is not part of the state; it comes from
/// the constructor of the predictor the state is imported into.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SlopePredictorState {
    /// Coefficients of the cold-start global model.
    pub global: Vec<f32>,
    /// Personalised models as `(device_model, coefficients, update_count)`,
    /// sorted by device model name so the export is deterministic regardless
    /// of `HashMap` iteration order.
    pub personal: Vec<(String, Vec<f32>, u64)>,
    /// Accumulated calibration observations (feature vector, slope).
    pub calibration: Vec<(Vec<f32>, f32)>,
    /// Range of slopes seen so far.
    pub seen_range: Option<(f32, f32)>,
    /// Observations since the last global re-train.
    pub since_retrain: u64,
}

/// Checkpointed mutable state of an [`IProf`] instance: one
/// [`SlopePredictorState`] per predicted dimension.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IProfState {
    /// State of the computation-time predictor.
    pub latency: SlopePredictorState,
    /// State of the energy predictor.
    pub energy: SlopePredictorState,
}

/// One predictor (computation time *or* energy): a cold-start global linear
/// regression plus one personalised passive-aggressive model per device model.
#[derive(Debug, Clone)]
struct SlopePredictor {
    global: LinearRegression,
    personal: HashMap<String, PassiveAggressiveRegressor>,
    calibration: Vec<(Vec<f32>, f32)>,
    pa_epsilon: f32,
    min_slope: f32,
    /// Range of slopes seen so far; cold-start predictions are clamped into a
    /// widened version of this range to avoid extrapolation blow-ups for
    /// devices far outside the calibration population.
    seen_range: Option<(f32, f32)>,
    retrain_every: usize,
    since_retrain: usize,
}

impl SlopePredictor {
    fn new(dim: usize, pa_epsilon: f32, min_slope: f32) -> Self {
        Self {
            global: LinearRegression::zeros(dim),
            personal: HashMap::new(),
            calibration: Vec::new(),
            pa_epsilon,
            min_slope,
            seen_range: None,
            retrain_every: 50,
            since_retrain: 0,
        }
    }

    fn pretrain(&mut self, samples: &[(Vec<f32>, f32)]) {
        for (_, slope) in samples {
            self.record_range(*slope);
        }
        self.calibration.extend_from_slice(samples);
        if let Some(model) = LinearRegression::fit(&self.calibration) {
            self.global = model;
        }
    }

    fn record_range(&mut self, slope: f32) {
        self.seen_range = Some(match self.seen_range {
            None => (slope, slope),
            Some((lo, hi)) => (lo.min(slope), hi.max(slope)),
        });
    }

    fn clamp_slope(&self, slope: f32) -> f32 {
        let slope = slope.max(self.min_slope);
        match self.seen_range {
            Some((lo, hi)) => slope.clamp(lo * 0.3, hi * 3.0),
            None => slope,
        }
    }

    fn predict_slope(&self, device_model: &str, x: &[f32]) -> (f32, bool) {
        if let Some(pa) = self.personal.get(device_model) {
            if pa.updates() > 0 {
                return (self.clamp_slope(pa.predict(x)), true);
            }
        }
        (self.clamp_slope(self.global.predict(x)), false)
    }

    fn observe(&mut self, device_model: &str, x: &[f32], slope: f32) {
        self.record_range(slope);
        let dim = x.len();
        let global = &self.global;
        let pa = self
            .personal
            .entry(device_model.to_string())
            .or_insert_with(|| {
                // Bootstrap the personalised model from the global model so its
                // first prediction matches the cold-start estimate.
                let init = if global.dim() == dim {
                    global.coefficients().to_vec()
                } else {
                    vec![0.0; dim]
                };
                PassiveAggressiveRegressor::with_initial(init, self.pa_epsilon)
            });
        pa.update(x, slope);

        self.calibration.push((x.to_vec(), slope));
        self.since_retrain += 1;
        if self.since_retrain >= self.retrain_every {
            if let Some(model) = LinearRegression::fit(&self.calibration) {
                self.global = model;
            }
            self.since_retrain = 0;
        }
    }

    fn export_state(&self) -> SlopePredictorState {
        let mut personal: Vec<(String, Vec<f32>, u64)> = self
            // lint:allow(det-collections): order-insensitive — the export is
            // sorted by model name below before anything observes it
            // (regression: tests/determinism.rs iprof_personal_models_*).
            .personal
            .iter()
            .map(|(name, pa)| (name.clone(), pa.coefficients().to_vec(), pa.updates()))
            .collect();
        personal.sort_by(|a, b| a.0.cmp(&b.0));
        SlopePredictorState {
            global: self.global.coefficients().to_vec(),
            personal,
            calibration: self.calibration.clone(),
            seen_range: self.seen_range,
            since_retrain: self.since_retrain as u64,
        }
    }

    fn import_state(&mut self, state: SlopePredictorState) {
        self.global = LinearRegression::from_coefficients(state.global);
        self.personal = state
            .personal
            .into_iter()
            .map(|(name, theta, updates)| {
                (
                    name,
                    PassiveAggressiveRegressor::restore(theta, self.pa_epsilon, updates),
                )
            })
            .collect();
        self.calibration = state.calibration;
        self.seen_range = state.seen_range;
        self.since_retrain = state.since_retrain as usize;
    }
}

/// The I-Prof profiler: one [`SlopePredictor`] for computation time and one
/// for energy, combined through the SLO to propose a mini-batch size.
#[derive(Debug, Clone)]
pub struct IProf {
    slo: Slo,
    latency: SlopePredictor,
    energy: SlopePredictor,
}

impl IProf {
    /// Creates an I-Prof instance for an SLO with the default
    /// passive-aggressive sensitivities (1e-4 s/sample for computation time,
    /// 1e-6 battery-percent/sample for energy; see EXPERIMENTS.md for how
    /// these relate to the ε values quoted in the paper).
    pub fn new(slo: Slo) -> Self {
        Self::with_sensitivity(slo, 1e-4, 1e-6)
    }

    /// Creates an I-Prof instance with explicit ε-insensitive-loss thresholds
    /// for the latency and energy passive-aggressive models.
    pub fn with_sensitivity(slo: Slo, latency_epsilon: f32, energy_epsilon: f32) -> Self {
        Self {
            slo,
            latency: SlopePredictor::new(
                DeviceFeatures::LATENCY_DIM,
                latency_epsilon,
                MIN_LATENCY_SLOPE,
            ),
            energy: SlopePredictor::new(
                DeviceFeatures::ENERGY_DIM,
                energy_epsilon,
                MIN_ENERGY_SLOPE,
            ),
        }
    }

    /// The configured SLO.
    pub fn slo(&self) -> Slo {
        self.slo
    }

    /// Pre-trains the cold-start global computation-time model from offline
    /// calibration data `(latency_features, seconds_per_sample)`.
    pub fn pretrain_latency(&mut self, samples: &[(Vec<f32>, f32)]) {
        self.latency.pretrain(samples);
    }

    /// Pre-trains the cold-start global energy model from offline calibration
    /// data `(energy_features, battery_pct_per_sample)`.
    pub fn pretrain_energy(&mut self, samples: &[(Vec<f32>, f32)]) {
        self.energy.pretrain(samples);
    }

    /// Number of device models with a personalised latency model.
    pub fn personalized_models(&self) -> usize {
        self.latency.personal.len().max(self.energy.personal.len())
    }

    /// Exports the profiler's full mutable state for checkpointing. Personal
    /// models are sorted by device-model name, so the export is deterministic.
    pub fn export_state(&self) -> IProfState {
        IProfState {
            latency: self.latency.export_state(),
            energy: self.energy.export_state(),
        }
    }

    /// Restores state captured with [`IProf::export_state`] into a profiler
    /// built with the same constructor arguments (SLO, ε sensitivities).
    /// Subsequent predictions and observations proceed exactly as they would
    /// have on the exporting instance.
    pub fn import_state(&mut self, state: IProfState) {
        self.latency.import_state(state.latency);
        self.energy.import_state(state.energy);
    }

    /// Predicts the mini-batch size and the expected cost for a request.
    pub fn predict_batch(&self, device_model: &str, features: &DeviceFeatures) -> BatchPrediction {
        let lx = features.latency_features();
        let ex = features.energy_features();
        let (lat_slope, lat_personal) = self.latency.predict_slope(device_model, &lx);
        let (en_slope, en_personal) = self.energy.predict_slope(device_model, &ex);

        let mut bound = MAX_BATCH as f32;
        if let Some(t_slo) = self.slo.computation_seconds {
            bound = bound.min(t_slo / lat_slope);
        }
        if let Some(e_slo) = self.slo.energy_pct {
            bound = bound.min(e_slo / en_slope);
        }
        let batch_size = (bound.floor() as usize).clamp(1, MAX_BATCH);
        BatchPrediction {
            batch_size,
            predicted_seconds: lat_slope * batch_size as f32,
            predicted_energy_pct: en_slope * batch_size as f32,
            personalized: lat_personal || en_personal,
        }
    }
}

impl WorkloadProfiler for IProf {
    fn name(&self) -> &'static str {
        "I-Prof"
    }

    fn predict(&mut self, device_model: &str, features: &DeviceFeatures) -> usize {
        self.predict_batch(device_model, features).batch_size
    }

    fn observe(
        &mut self,
        device_model: &str,
        features: &DeviceFeatures,
        batch_size: usize,
        computation_seconds: f32,
        energy_pct: f32,
    ) {
        if batch_size == 0 {
            return;
        }
        let lat_slope = computation_seconds / batch_size as f32;
        let en_slope = energy_pct / batch_size as f32;
        self.latency
            .observe(device_model, &features.latency_features(), lat_slope);
        self.energy
            .observe(device_model, &features.energy_features(), en_slope);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(freq: f32, temp: f32) -> DeviceFeatures {
        DeviceFeatures {
            available_memory_mb: 2000.0,
            total_memory_mb: 4000.0,
            temperature_celsius: temp,
            sum_max_freq_ghz: freq,
            energy_per_cpu_second: 2e-5,
        }
    }

    /// Calibration samples for a linear world where the latency slope is
    /// `0.02 / freq` seconds per sample.
    fn calibration() -> Vec<(Vec<f32>, f32)> {
        let mut out = Vec::new();
        for freq in [4.0f32, 8.0, 12.0, 16.0] {
            for temp in [30.0f32, 35.0, 40.0] {
                let f = features(freq, temp);
                out.push((f.latency_features(), 0.02 / freq));
            }
        }
        out
    }

    #[test]
    fn cold_start_uses_global_model() {
        let mut iprof = IProf::new(Slo::latency(3.0));
        iprof.pretrain_latency(&calibration());
        let pred = iprof.predict_batch("NewPhone", &features(8.0, 30.0));
        assert!(!pred.personalized);
        // True slope 0.0025 -> ideal batch 1200; the global model should land
        // in the right ballpark.
        assert!(
            (400..=4000).contains(&pred.batch_size),
            "batch was {}",
            pred.batch_size
        );
    }

    #[test]
    fn personalized_model_takes_over_after_observation() {
        let mut iprof = IProf::new(Slo::latency(3.0));
        iprof.pretrain_latency(&calibration());
        let f = features(10.0, 30.0);
        let first = iprof.predict_batch("Phone-X", &f);
        assert!(!first.personalized);
        // Device is actually twice as slow as the calibration world suggests.
        let true_slope = 0.004;
        iprof.observe(
            "Phone-X",
            &f,
            first.batch_size,
            true_slope * first.batch_size as f32,
            0.01,
        );
        let second = iprof.predict_batch("Phone-X", &f);
        assert!(second.personalized);
        let err_first = (first.predicted_seconds / first.batch_size as f32 - true_slope).abs();
        let err_second = (second.predicted_seconds / second.batch_size as f32 - true_slope).abs();
        assert!(
            err_second < err_first,
            "personalisation should reduce error"
        );
    }

    #[test]
    fn predictions_converge_towards_slo() {
        let mut iprof = IProf::new(Slo::latency(3.0));
        iprof.pretrain_latency(&calibration());
        let f = features(6.0, 32.0);
        let true_slope = 0.0045f32;
        let mut last_dev = f32::MAX;
        for i in 0..10 {
            let batch = iprof.predict("Phone-Y", &f);
            let latency = true_slope * batch as f32;
            iprof.observe("Phone-Y", &f, batch, latency, 0.01);
            let dev = (latency - 3.0).abs();
            if i >= 5 {
                assert!(dev <= last_dev + 0.3, "deviation should keep shrinking");
            }
            last_dev = dev;
        }
        assert!(last_dev < 0.5, "final deviation {last_dev}");
    }

    #[test]
    fn energy_slo_bounds_batch_size() {
        let mut iprof = IProf::new(Slo::both(1000.0, 0.075));
        iprof.pretrain_latency(&calibration());
        // Energy slope 1e-4 %/sample -> bound = 750.
        let f = features(8.0, 30.0);
        let samples = vec![(f.energy_features(), 1e-4f32)];
        iprof.pretrain_energy(&samples);
        let pred = iprof.predict_batch("E-Phone", &f);
        assert!(pred.batch_size <= 760, "batch {}", pred.batch_size);
        assert!(pred.predicted_energy_pct <= 0.08);
    }

    #[test]
    fn batch_is_at_least_one_even_for_terrible_devices() {
        let mut iprof = IProf::new(Slo::latency(0.001));
        iprof.pretrain_latency(&calibration());
        let pred = iprof.predict_batch("Slowest", &features(0.5, 50.0));
        assert!(pred.batch_size >= 1);
    }

    #[test]
    fn untrained_profiler_still_returns_valid_batches() {
        let mut iprof = IProf::new(Slo::latency(3.0));
        let batch = iprof.predict("Anything", &features(8.0, 30.0));
        assert!((1..=MAX_BATCH).contains(&batch));
    }

    /// Export mid-run, import into a fresh instance, and feed both the same
    /// follow-up observations: predictions and exported state must stay
    /// identical — the personalised models' update counts included.
    #[test]
    fn state_roundtrip_resumes_the_prediction_stream() {
        let build = || {
            let mut iprof = IProf::new(Slo::latency(3.0));
            iprof.pretrain_latency(&calibration());
            iprof
        };
        let mut original = build();
        let f = features(9.0, 33.0);
        for i in 0..5 {
            let pred = original.predict_batch("Phone-Z", &f);
            original.observe("Phone-Z", &f, pred.batch_size, 0.003 * (i + 1) as f32, 0.01);
        }
        let state = original.export_state();
        assert!(!state.latency.personal.is_empty());
        assert_eq!(state.latency.personal[0].2, 5, "update count must survive");

        let mut restored = build();
        restored.import_state(state.clone());
        assert_eq!(restored.export_state(), state);
        for i in 0..5 {
            let a = original.predict_batch("Phone-Z", &f);
            let b = restored.predict_batch("Phone-Z", &f);
            assert_eq!(a, b);
            assert!(b.personalized);
            let secs = 0.002 * (i + 1) as f32;
            original.observe("Phone-Z", &f, a.batch_size, secs, 0.01);
            restored.observe("Phone-Z", &f, b.batch_size, secs, 0.01);
        }
        assert_eq!(original.export_state(), restored.export_state());
    }

    #[test]
    fn observe_ignores_zero_batches() {
        let mut iprof = IProf::new(Slo::latency(3.0));
        iprof.observe("P", &features(8.0, 30.0), 0, 1.0, 1.0);
        assert_eq!(iprof.personalized_models(), 0);
    }
}
