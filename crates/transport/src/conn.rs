//! Socket abstraction: one [`Endpoint`] / [`Stream`] / [`Listener`] surface
//! over Unix-domain sockets and localhost TCP, so the framing, server and
//! client layers are transport-agnostic.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where a server listens (and a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket at this filesystem path.
    Uds(PathBuf),
    /// A TCP socket (use `127.0.0.1:0` to let the OS pick a port; the bound
    /// endpoint reported by the server carries the resolved port).
    Tcp(SocketAddr),
}

impl Endpoint {
    /// A Unix-domain endpoint.
    pub fn uds(path: impl Into<PathBuf>) -> Self {
        Endpoint::Uds(path.into())
    }

    /// A TCP endpoint.
    pub fn tcp(addr: SocketAddr) -> Self {
        Endpoint::Tcp(addr)
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Uds(path) => write!(f, "uds:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// The server side of an [`Endpoint`].
#[derive(Debug)]
pub(crate) enum Listener {
    Uds(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    /// Binds the endpoint, returning the listener and the *resolved*
    /// endpoint (TCP port 0 becomes the port the OS assigned).
    pub(crate) fn bind(endpoint: &Endpoint) -> io::Result<(Self, Endpoint)> {
        match endpoint {
            Endpoint::Uds(path) => {
                let listener = UnixListener::bind(path)?;
                Ok((Listener::Uds(listener), endpoint.clone()))
            }
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                let resolved = Endpoint::Tcp(listener.local_addr()?);
                Ok((Listener::Tcp(listener), resolved))
            }
        }
    }

    /// Accepts one connection.
    pub(crate) fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Uds(listener) => {
                let (stream, _) = listener.accept()?;
                Ok(Stream::Uds(stream))
            }
            Listener::Tcp(listener) => {
                let (stream, _) = listener.accept()?;
                stream.set_nodelay(true)?;
                Ok(Stream::Tcp(stream))
            }
        }
    }
}

/// One connected socket, either flavour.
#[derive(Debug)]
pub enum Stream {
    /// A Unix-domain connection.
    Uds(UnixStream),
    /// A TCP connection (Nagle disabled — the protocol is request/response).
    Tcp(TcpStream),
}

impl Stream {
    /// Connects to `endpoint`.
    ///
    /// # Errors
    ///
    /// Whatever the OS reports: `ConnectionRefused`, `NotFound` (stale UDS
    /// path), etc.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Self> {
        match endpoint {
            Endpoint::Uds(path) => Ok(Stream::Uds(UnixStream::connect(path)?)),
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                Ok(Stream::Tcp(stream))
            }
        }
    }

    /// A second handle to the same socket (used by the server to force-close
    /// connections from the shutdown path).
    pub fn try_clone(&self) -> io::Result<Self> {
        match self {
            Stream::Uds(s) => Ok(Stream::Uds(s.try_clone()?)),
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone()?)),
        }
    }

    /// Sets the kernel-level timeout for any single `read` call. The
    /// per-frame budget layered on top lives in [`crate::deadline`].
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Uds(s) => s.set_read_timeout(timeout),
            Stream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    /// Sets the kernel-level timeout for any single `write` call.
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Uds(s) => s.set_write_timeout(timeout),
            Stream::Tcp(s) => s.set_write_timeout(timeout),
        }
    }

    /// Closes both directions; any thread blocked on the socket wakes with
    /// an EOF or error. Errors are ignored — the socket may already be gone.
    pub fn shutdown_both(&self) {
        match self {
            Stream::Uds(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
            Stream::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Uds(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Uds(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Uds(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}
