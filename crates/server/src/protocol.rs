//! Messages exchanged between FLeet workers and the server (Fig. 2).

use fleet_data::LabelDistribution;
use fleet_device::DeviceFeatures;
use fleet_ml::Gradient;
use serde::{Deserialize, Serialize};

/// Step 1: a worker asks for a learning task, sending its device state and
/// the label information of its locally collected data (only label indices
/// and counts — never the raw data, §2.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskRequest {
    /// The worker's identifier.
    pub worker_id: u64,
    /// The device model name (key for I-Prof's personalised models).
    pub device_model: String,
    /// Observable device state.
    pub device_features: DeviceFeatures,
    /// Label distribution of the worker's local data.
    pub label_distribution: LabelDistribution,
    /// Number of locally available samples.
    pub available_samples: usize,
}

/// Steps 2–4: the server's answer to a request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaskResponse {
    /// The task was accepted; the worker should compute a gradient.
    Assignment(TaskAssignment),
    /// The task was rejected by the controller.
    Rejected(RejectionReason),
}

/// The learning task handed to the worker: the current model and the workload
/// bound chosen by I-Prof.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskAssignment {
    /// Flat model parameters the gradient must be computed against.
    pub model_parameters: Vec<f32>,
    /// The server's logical clock at the time the model was handed out.
    pub model_version: u64,
    /// The per-shard vector clock at hand-out time, when the server runs the
    /// parameter shards asynchronously (`ApplyMode::PerShard`); empty in
    /// lockstep mode, where [`TaskAssignment::model_version`] carries the
    /// whole story. The worker echoes it back as
    /// [`TaskResult::read_clock`] so the server can attribute a *per-shard*
    /// staleness to the gradient.
    pub shard_clocks: Vec<u64>,
    /// The mini-batch size the worker should process.
    pub mini_batch_size: usize,
}

/// Why the controller refused to hand out a learning task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectionReason {
    /// The mini-batch size I-Prof proposed is below the controller's
    /// size threshold (the gradient would be too noisy to help, Fig. 3).
    BatchTooSmall {
        /// The proposed size.
        proposed: usize,
        /// The minimum the controller accepts.
        minimum: usize,
    },
    /// The worker's data is too similar to what the model has already seen
    /// (low expected utility).
    TooSimilar,
}

/// Step 5: the worker's result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskResult {
    /// The worker that produced the result.
    pub worker_id: u64,
    /// The model version the gradient was computed on.
    pub model_version: u64,
    /// The gradient itself.
    pub gradient: Gradient,
    /// Label distribution of the mini-batch actually used.
    pub label_distribution: LabelDistribution,
    /// Number of samples in the mini-batch actually used.
    pub num_samples: usize,
    /// Measured computation time on the device, in seconds (fed back to
    /// I-Prof).
    pub computation_seconds: f32,
    /// Measured energy, in percent of battery (fed back to I-Prof).
    pub energy_pct: f32,
    /// The per-shard vector clock the worker observed when it pulled the
    /// model (echoed from [`TaskAssignment::shard_clocks`]); `None` when the
    /// server hands out lockstep assignments, or from wire peers that
    /// predate vector clocks (wire format v1).
    pub read_clock: Option<Vec<u64>>,
}

/// The server's acknowledgement of a result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResultAck {
    /// The staleness the server attributed to the gradient.
    pub staleness: u64,
    /// The weight AdaSGD applied to it.
    pub scaling_factor: f64,
    /// Whether the model advanced as a result.
    pub model_updated: bool,
    /// The server's logical clock after processing the result.
    pub clock: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejection_reasons_are_comparable() {
        let a = RejectionReason::BatchTooSmall {
            proposed: 3,
            minimum: 10,
        };
        let b = RejectionReason::TooSimilar;
        assert_ne!(a, b);
    }

    #[test]
    fn task_response_variants() {
        let assignment = TaskAssignment {
            model_parameters: vec![0.0; 4],
            model_version: 7,
            shard_clocks: vec![7, 7],
            mini_batch_size: 100,
        };
        let resp = TaskResponse::Assignment(assignment.clone());
        match resp {
            TaskResponse::Assignment(a) => assert_eq!(a, assignment),
            TaskResponse::Rejected(_) => panic!("expected assignment"),
        }
    }
}
