//! # fleet-durability
//!
//! Durable crash recovery for the FLeet middleware: on-disk checkpoints plus
//! a write-ahead journal, with recovery that is provably equivalent to never
//! having crashed — the same bit-for-bit standard the chaos digests already
//! enforce for in-memory faults.
//!
//! The crate is deliberately payload-agnostic: checkpoints carry an opaque
//! [`bytes::Bytes`] blob (in practice `fleet_server::encode_checkpoint`
//! output) and journal records carry opaque event payloads (in practice the
//! raw request/result wire bytes the transport already holds). Interpreting
//! either is the embedding layer's job; this crate only promises that what
//! comes back after a crash is a *valid prefix* of what was written.
//!
//! ## Durability contract
//!
//! * **Checkpoints are atomic.** [`DurableStore`] writes every checkpoint
//!   container to a temp file, fsyncs (per [`FsyncPolicy`]), then renames it
//!   into place under a strictly monotonic generation number. A torn or
//!   bit-flipped container fails its CRC and recovery falls back to the last
//!   complete generation.
//! * **The journal is torn-tail tolerant.** Records are length-prefixed and
//!   CRC-framed; a crash mid-append leaves a torn tail that recovery
//!   truncates instead of failing on. Records carry a contiguous sequence
//!   number, so replay stops at the first gap — a corrupted record can only
//!   shorten the recovered history, never reorder or skip within it.
//! * **Recovery chains generations.** `load newest valid checkpoint` +
//!   `replay journal records in submission order` — and when the newest
//!   checkpoint itself is lost, the previous generation's checkpoint plus
//!   *both* journals replay seamlessly because the sequence numbers chain
//!   across the rotation boundary.
//!
//! The submission order here is the `(shard, submission-index)` order of the
//! per-shard apply engine: the transport's core mutex already serialises
//! every shard's applies into one total submission sequence, so the single
//! `seq` counter *is* that order flattened.
//!
//! Fault injection for the disk itself is deterministic via
//! [`DiskFaultPlan`] — the same stateless splitmix64 style as the simulation
//! harness's `FaultPlan`, so every corruption scenario is a pure function of
//! `(seed, case)`.

#![forbid(unsafe_code)]

pub mod codec;
pub mod crc;
pub mod faults;
pub mod journal;
pub mod store;

pub use codec::{
    decode_doc, decode_record, encode_doc, encode_record, CheckpointDoc, CodecError, EventKind,
    JournalRecord,
};
pub use faults::{DiskFault, DiskFaultPlan};
pub use store::{DurableStore, Recovered};

use std::path::PathBuf;

/// When the store flushes the kernel page cache to stable storage.
///
/// Process death (SIGKILL, panic-abort) never loses written-but-unsynced
/// bytes — the kernel owns them — so `Never` already survives every crash
/// the chaos scenarios inject. The stronger policies matter for machine
/// (power/kernel) failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync the journal after every appended record, plus every checkpoint.
    /// Full single-record durability against machine crashes; the slowest.
    EveryRecord,
    /// fsync only when a checkpoint is written (both the container and the
    /// journal being rotated out). Machine crashes can lose the tail of the
    /// active journal — never a checkpointed prefix.
    OnCheckpoint,
    /// Never fsync. Process-crash-safe only; the benchmark baseline.
    Never,
}

/// Configuration of a [`DurableStore`] and its embedding (the transport's
/// checkpoint cadence rides here so one struct configures the whole
/// durability story).
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Directory holding the checkpoint containers and journals. Created if
    /// missing; a non-empty directory is recovered from.
    pub dir: PathBuf,
    /// Applied protocol steps between policy-driven checkpoints; `0` writes
    /// checkpoints only at startup and shutdown.
    pub checkpoint_every: u64,
    /// When to flush to stable storage.
    pub fsync: FsyncPolicy,
    /// Checkpoint generations retained on disk (at least 1; the default 2
    /// keeps one complete fallback generation behind the newest).
    pub keep_generations: u64,
}

impl DurabilityOptions {
    /// Defaults: checkpoint every 64 applied steps, fsync on checkpoints,
    /// keep two generations.
    pub fn new(dir: PathBuf) -> Self {
        DurabilityOptions {
            dir,
            checkpoint_every: 64,
            fsync: FsyncPolicy::OnCheckpoint,
            keep_generations: 2,
        }
    }
}
