//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset `fleet_server::wire` uses: `BytesMut` as a growable
//! write buffer ([`BufMut`]), frozen into an immutable [`Bytes`] cursor that
//! is consumed via [`Buf`] getters. Little-endian accessors only, matching the
//! wire format. No shared-arc zero-copy machinery — the simulation exchanges
//! messages in-process, so a plain `Vec<u8>` backing is plenty.

#![forbid(unsafe_code)]

/// Read access to a byte cursor. Getters consume from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is exhausted (callers check [`Buf::remaining`]).
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32;

    /// Consumes `len` bytes, returning them as an owned [`Bytes`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than `len` bytes remain.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32);

    /// Appends a raw byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Returns a copy of the sub-range `range` of the *unread* portion.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: core::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.data[self.pos + range.start..self.pos + range.end].to_vec(),
            pos: 0,
        }
    }

    /// Total length of the unread portion (alias of [`Buf::remaining`]).
    pub fn len(&self) -> usize {
        self.remaining()
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Copies the unread portion into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(
            self.remaining() >= n,
            "buffer underflow: {} < {n}",
            self.remaining()
        );
        let start = self.pos;
        self.pos += n;
        &self.data[start..start + n]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        Bytes {
            data: self.take(len).to_vec(),
            pos: 0,
        }
    }
}

/// A growable write buffer, frozen into [`Bytes`] when complete.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(42);
        w.put_f32_le(1.5);
        w.put_slice(b"ab");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 4 + 2);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_u8(), b'a');
        assert_eq!(r.get_u8(), b'b');
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4]);
        assert_eq!(b.get_u8(), 0);
        let s = b.slice(1..3);
        assert_eq!(s.data, vec![2, 3]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32_le();
    }
}
