//! Deterministic open-loop workload generation.
//!
//! A [`Schedule`] is the load harness's ground truth: every request and
//! every result upload of a synthetic fleet, stamped with **virtual**
//! nanosecond timestamps derived purely from the workload seed and the
//! device models in `fleet-device` — phone profiles set the gradient
//! computation time (via [`Device::execute_task`], which runs the thermal
//! and measurement-noise models), [`NetworkKind`] sets the model
//! download / gradient upload transfer times, and [`RoundTripModel`]
//! samples the per-exchange network round-trip. No wall clock is read
//! anywhere in this module: generating the same spec twice — at any
//! `fleet-parallel` thread count — yields bit-identical schedules, which
//! is what makes the schedule digest pinnable in CI.
//!
//! Workers are generated independently (fanned out with the
//! order-preserving [`fleet_parallel::parallel_map`]) and their event
//! streams merged by `(timestamp, worker, seq)`; per-worker state (device
//! RNG, thermal state, network RTT stream) never crosses a worker
//! boundary, so the fan-out partition cannot reassociate anything.

use fleet_device::network::{NetworkKind, RoundTripModel};
use fleet_device::profile::catalogue;
use fleet_device::Device;
use std::fmt;

/// What a scheduled event does on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// The worker sends a task request (and receives the model).
    Request,
    /// The worker uploads the gradient for its `seq`-th assignment.
    Submit,
}

/// One scheduled wire interaction of the synthetic fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Virtual time of the event, nanoseconds since schedule start.
    pub at_ns: u64,
    /// Worker (fleet index, `0..workers`).
    pub worker: u32,
    /// Per-worker operation number (`0..ops_per_worker`).
    pub seq: u32,
    /// Request or submit.
    pub kind: EventKind,
}

/// Validation errors for a [`WorkloadSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// `workers` must be at least 1.
    ZeroWorkers,
    /// `ops_per_worker` must be at least 1.
    ZeroOps,
    /// `batch_size` must be at least 1.
    ZeroBatch,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::ZeroWorkers => write!(f, "workload needs at least one worker"),
            SpecError::ZeroOps => write!(f, "workload needs at least one op per worker"),
            SpecError::ZeroBatch => write!(f, "workload batch size must be at least 1"),
        }
    }
}

impl std::error::Error for SpecError {}

/// The open-loop workload description. All fields are plain data; virtual
/// timing is derived from them deterministically by [`Schedule::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Fleet size.
    pub workers: usize,
    /// Requests each worker issues over the run.
    pub ops_per_worker: usize,
    /// Mini-batch size each task simulates on the device model.
    pub batch_size: usize,
    /// Parameters transferred each way (sets transfer times).
    pub model_len: usize,
    /// Mean think time between a worker's upload and its next request,
    /// in virtual seconds.
    pub think_seconds: f64,
    /// Network standing in for the fleet's uplink.
    pub network: NetworkKind,
    /// Master seed; every per-worker stream is split from it.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            workers: 64,
            ops_per_worker: 4,
            batch_size: 32,
            model_len: 1024,
            think_seconds: 0.5,
            network: NetworkKind::Lte4G,
            seed: 42,
        }
    }
}

impl WorkloadSpec {
    /// Checks the spec describes a non-empty workload.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.workers == 0 {
            return Err(SpecError::ZeroWorkers);
        }
        if self.ops_per_worker == 0 {
            return Err(SpecError::ZeroOps);
        }
        if self.batch_size == 0 {
            return Err(SpecError::ZeroBatch);
        }
        Ok(())
    }
}

/// The generated workload: every event of every worker, merged into one
/// virtual-time-ordered stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    spec: WorkloadSpec,
    events: Vec<Event>,
}

/// SplitMix64 — the workspace's standard seed-splitting mix.
fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A uniform fraction in `[0, 1)` from one mixed draw.
fn unit(seed: u64, stream: u64) -> f64 {
    (mix(seed, stream) >> 11) as f64 / (1u64 << 53) as f64
}

/// Virtual seconds to schedule nanoseconds, saturating.
fn to_ns(seconds: f64) -> u64 {
    if !seconds.is_finite() || seconds <= 0.0 {
        return 0;
    }
    let ns = seconds * 1e9;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns as u64
    }
}

/// One worker's full event stream in virtual time.
fn generate_worker(spec: &WorkloadSpec, worker: u32) -> Vec<Event> {
    let profiles = catalogue();
    let profile = profiles[worker as usize % profiles.len()].clone();
    let mut device = Device::new(profile, mix(spec.seed, u64::from(worker)));
    let mut rtt = RoundTripModel::paper_defaults(mix(spec.seed, u64::from(worker) ^ 0x5254_5421));
    // One-way transfer time for the model / gradient over this network.
    let transfer = spec.network.transfer_seconds(spec.model_len);

    // Stagger fleet arrival over one think interval so the open-loop ramp
    // is not a thundering herd at t = 0.
    let mut t = spec.think_seconds * unit(spec.seed, u64::from(worker) ^ 0x0ffe_7441);
    let mut events = Vec::with_capacity(spec.ops_per_worker * 2);
    for seq in 0..spec.ops_per_worker as u32 {
        events.push(Event {
            at_ns: to_ns(t),
            worker,
            seq,
            kind: EventKind::Request,
        });
        // Request round trip + model download, gradient computation on the
        // device (thermal state and measurement noise advance with every
        // task), then upload + its round trip.
        let execution = device.execute_task(spec.batch_size);
        let served = rtt.sample() + transfer;
        let uploaded = f64::from(execution.computation_seconds) + transfer + rtt.sample();
        t += served + uploaded.max(0.0);
        events.push(Event {
            at_ns: to_ns(t),
            worker,
            seq,
            kind: EventKind::Submit,
        });
        // Think before the next request; the device cools down meanwhile.
        let think = spec.think_seconds
            * (0.5 + unit(spec.seed, u64::from(worker) ^ (u64::from(seq) << 32)));
        device.idle(think as f32);
        t += think;
    }
    events
}

impl Schedule {
    /// Generates the full fleet schedule for a spec.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] when the spec fails [`WorkloadSpec::validate`].
    pub fn generate(spec: &WorkloadSpec) -> Result<Schedule, SpecError> {
        spec.validate()?;
        let workers: Vec<u32> = (0..spec.workers as u32).collect();
        // Order-preserving fan-out: the result vector is indexed by worker
        // regardless of which thread generated which entry.
        let streams = fleet_parallel::parallel_map(&workers, |&w| generate_worker(spec, w));
        let mut events: Vec<Event> = streams.into_iter().flatten().collect();
        events.sort_by_key(|e| (e.at_ns, e.worker, e.seq, e.kind));
        Ok(Schedule {
            spec: spec.clone(),
            events,
        })
    }

    /// [`Schedule::generate`] without the fan-out: the determinism oracle.
    /// The parallel path must produce exactly this schedule at every thread
    /// count (the stability test and the CI digest pin both check it).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] when the spec fails [`WorkloadSpec::validate`].
    pub fn generate_serial(spec: &WorkloadSpec) -> Result<Schedule, SpecError> {
        spec.validate()?;
        let mut events: Vec<Event> = (0..spec.workers as u32)
            .flat_map(|w| generate_worker(spec, w))
            .collect();
        events.sort_by_key(|e| (e.at_ns, e.worker, e.seq, e.kind));
        Ok(Schedule {
            spec: spec.clone(),
            events,
        })
    }

    /// The spec this schedule was generated from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// All events in virtual-time order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Virtual makespan of the workload in nanoseconds.
    pub fn horizon_ns(&self) -> u64 {
        self.events.last().map_or(0, |e| e.at_ns)
    }

    /// FNV-1a over every event's bit pattern. Equal digests mean
    /// bit-identical schedules; the CI smoke pins this value.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut absorb = |v: u64| {
            h = (h ^ v).wrapping_mul(0x100000001b3);
        };
        for e in &self.events {
            absorb(e.at_ns);
            absorb(u64::from(e.worker));
            absorb(u64::from(e.seq));
            absorb(match e.kind {
                EventKind::Request => 0,
                EventKind::Submit => 1,
            });
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_seed_stable() {
        let spec = WorkloadSpec::default();
        let a = Schedule::generate(&spec).unwrap();
        let b = Schedule::generate(&spec).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let base = WorkloadSpec::default();
        let other = WorkloadSpec {
            seed: 43,
            ..base.clone()
        };
        let a = Schedule::generate(&base).unwrap();
        let b = Schedule::generate(&other).unwrap();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn every_worker_contributes_paired_events() {
        let spec = WorkloadSpec {
            workers: 7,
            ops_per_worker: 3,
            ..WorkloadSpec::default()
        };
        let schedule = Schedule::generate(&spec).unwrap();
        assert_eq!(schedule.events().len(), 7 * 3 * 2);
        for w in 0..7u32 {
            for seq in 0..3u32 {
                let req = schedule
                    .events()
                    .iter()
                    .find(|e| e.worker == w && e.seq == seq && e.kind == EventKind::Request)
                    .expect("request scheduled");
                let sub = schedule
                    .events()
                    .iter()
                    .find(|e| e.worker == w && e.seq == seq && e.kind == EventKind::Submit)
                    .expect("submit scheduled");
                assert!(req.at_ns <= sub.at_ns, "submit precedes its request");
            }
        }
    }

    #[test]
    fn events_are_time_ordered() {
        let schedule = Schedule::generate(&WorkloadSpec::default()).unwrap();
        for pair in schedule.events().windows(2) {
            assert!(pair[0].at_ns <= pair[1].at_ns);
        }
    }

    #[test]
    fn empty_specs_are_rejected() {
        let zero_workers = WorkloadSpec {
            workers: 0,
            ..WorkloadSpec::default()
        };
        assert_eq!(
            Schedule::generate(&zero_workers).unwrap_err(),
            SpecError::ZeroWorkers
        );
        let zero_ops = WorkloadSpec {
            ops_per_worker: 0,
            ..WorkloadSpec::default()
        };
        assert_eq!(
            Schedule::generate(&zero_ops).unwrap_err(),
            SpecError::ZeroOps
        );
        let zero_batch = WorkloadSpec {
            batch_size: 0,
            ..WorkloadSpec::default()
        };
        assert_eq!(
            Schedule::generate(&zero_batch).unwrap_err(),
            SpecError::ZeroBatch
        );
    }
}
