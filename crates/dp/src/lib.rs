//! # fleet-dp
//!
//! Differential-privacy substrate for the FLeet reproduction.
//!
//! §3.2 of the paper compares AdaSGD and DynSGD in a differentially private
//! setup: per-gradient clipping followed by Gaussian noise, with the privacy
//! loss ε computed by the moments accountant of Abadi et al. for a fixed
//! δ = 1/N². This crate provides the [`GaussianMechanism`] that perturbs
//! worker gradients and a [`MomentsAccountant`] with the standard closed-form
//! approximation of the accountant's ε bound (sufficient here because the
//! experiments only need the qualitative "smaller ε ⇒ more noise ⇒ slower
//! convergence" relationship — see DESIGN.md).

#![forbid(unsafe_code)]

pub mod accountant;
pub mod mechanism;

pub use accountant::MomentsAccountant;
pub use mechanism::GaussianMechanism;
