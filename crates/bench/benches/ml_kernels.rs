//! Micro-benchmarks of the ML substrate kernels (matrix multiply, CNN
//! forward/backward, gradient arithmetic) that dominate worker-side cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fleet_ml::models::{small_cnn, table1_mnist_cnn};
use fleet_ml::tensor::Tensor;
use fleet_ml::Gradient;

fn ml_benches(c: &mut Criterion) {
    c.bench_function("matmul_64x64", |b| {
        let a = Tensor::full(&[64, 64], 0.5);
        let m = Tensor::full(&[64, 64], 0.25);
        b.iter(|| black_box(a.matmul(&m)));
    });

    c.bench_function("small_cnn_gradient_batch32", |b| {
        let mut model = small_cnn(1, 8, 10, 0);
        let x = Tensor::full(&[32, 1, 8, 8], 0.3);
        let y: Vec<usize> = (0..32).map(|i| i % 10).collect();
        b.iter(|| black_box(model.compute_gradient(&x, &y).unwrap()));
    });

    c.bench_function("table1_mnist_cnn_forward_batch4", |b| {
        let mut model = table1_mnist_cnn(0);
        let x = Tensor::full(&[4, 1, 28, 28], 0.3);
        b.iter(|| black_box(model.forward(&x).unwrap()));
    });

    c.bench_function("gradient_add_scaled_100k", |b| {
        let mut acc = Gradient::zeros(100_000);
        let g = Gradient::from_vec(vec![0.1; 100_000]);
        b.iter(|| {
            acc.add_scaled(&g, 0.5);
            black_box(acc.as_slice()[0])
        });
    });

    c.bench_function("gradient_clip_100k", |b| {
        let g = Gradient::from_vec(vec![0.1; 100_000]);
        b.iter(|| {
            let mut copy = g.clone();
            black_box(copy.clip_l2(1.0))
        });
    });
}

criterion_group!(benches, ml_benches);
criterion_main!(benches);
