// Fixture (scanned as the durability codec file): drift in the journal
// record codec. `steps` was added to the record and its encoder, but the
// decoder was never taught about it — and `encode_tombstone` has no decoder
// at all, so tombstones written today are unreadable on recovery. Expect
// two wire-exhaustive findings.

pub struct JournalRecord {
    pub seq: u64,
    pub payload: Vec<u8>,
    pub steps: u64,
}

pub fn encode_journal_record(r: &JournalRecord, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&r.seq.to_le_bytes());
    buf.extend_from_slice(&(r.payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(&r.payload);
    buf.extend_from_slice(&r.steps.to_le_bytes());
}

pub fn decode_journal_record(buf: &[u8]) -> Result<JournalRecord, String> {
    let seq = u64::from_le_bytes(buf[0..8].try_into().map_err(|_| "short")?);
    let payload = buf[16..].to_vec();
    Ok(JournalRecord::with_defaults(seq, payload))
}

pub struct Tombstone {
    pub generation: u64,
}

pub fn encode_tombstone(t: &Tombstone, buf: &mut Vec<u8>) {
    buf.extend_from_slice(&t.generation.to_le_bytes());
}
