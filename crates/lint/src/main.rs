//! CLI entry point: walks the workspace, runs every rule, prints findings as
//! `path:line: [rule] message` (or a JSON document with `--json`) and exits
//! non-zero if any unsuppressed finding remains. See the crate docs for the
//! rule catalogue.

#![forbid(unsafe_code)]

use fleet_lint::{lint_sources, Policy};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directories scanned, relative to the workspace root.
const SCAN_ROOTS: &[&str] = &["crates", "tests", "examples"];

/// Path fragments excluded from the walk: build output, VCS metadata, and
/// the linter's own fixture corpus (whose failing samples are *supposed* to
/// trip every rule).
const EXCLUDES: &[&str] = &["target/", ".git/", "crates/lint/tests/fixtures/"];

fn collect_rs_files(root: &Path, rel: &str, out: &mut Vec<(String, String)>) {
    let dir = root.join(rel);
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return;
    };
    let mut names: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    names.sort(); // deterministic walk order → deterministic report order
    for path in names {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with('.') {
            continue;
        }
        let rel_child = if rel.is_empty() {
            name.to_string()
        } else {
            format!("{rel}/{name}")
        };
        if EXCLUDES
            .iter()
            .any(|ex| rel_child.starts_with(ex) || format!("{rel_child}/").starts_with(ex))
        {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &rel_child, out);
        } else if name.ends_with(".rs") {
            match std::fs::read_to_string(&path) {
                Ok(text) => out.push((rel_child, text)),
                Err(err) => eprintln!("fleet-lint: skipping unreadable {rel_child}: {err}"),
            }
        }
    }
}

/// Locates the workspace root: the nearest ancestor of the current directory
/// containing both `Cargo.toml` and `crates/`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root_arg = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("fleet-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "fleet-lint — workspace static-analysis gate\n\n\
                     USAGE: fleet-lint [--json] [--root <dir>]\n\n\
                     Exits 0 when the workspace is clean, 1 on findings.\n\
                     Rules: unsafe-safety, det-collections, wall-clock,\n\
                     thread-hygiene, wire-exhaustive (see crates/lint/README.md).\n\
                     Suppress per site with `// lint:allow(<rule>): <reason>`."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("fleet-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let Some(root) = root_arg.or_else(find_root) else {
        eprintln!("fleet-lint: could not locate the workspace root (run from within the repo or pass --root)");
        return ExitCode::from(2);
    };

    let mut sources = Vec::new();
    for scan_root in SCAN_ROOTS {
        collect_rs_files(&root, scan_root, &mut sources);
    }
    let report = lint_sources(&Policy::default(), &sources);

    if json {
        print!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        }
        let justified = report
            .unsafe_inventory
            .iter()
            .filter(|u| u.justified)
            .count();
        eprintln!(
            "fleet-lint: {} finding(s), {} suppressed, {} file(s) scanned, \
             unsafe audit {}/{} justified",
            report.findings.len(),
            report.suppressed.len(),
            report.files_scanned,
            justified,
            report.unsafe_inventory.len(),
        );
    }

    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
