// Fixture: the same site kinds, each properly justified. Expect zero
// findings and a fully-justified inventory.

pub fn justified_block(p: *const u32) -> u32 {
    // SAFETY: callers hand us a pointer derived from a live &u32, so the
    // read is in-bounds and aligned. (Multi-line justifications are fine —
    // the whole contiguous comment block above the site is searched.)
    unsafe { *p }
}

/// Frees the buffer.
///
/// # Safety
///
/// `p` must come from `alloc_buffer` and not have been freed already.
pub unsafe fn justified_fn(p: *mut u8) {
    let _ = p;
}

struct Wrapper(*const ());

// SAFETY: the pointee is never dereferenced off-thread; only the address
// travels.
#[allow(dead_code)]
unsafe impl Send for Wrapper {}

// SAFETY: implementors promise the id is unique for the process lifetime.
unsafe trait Contract {}
