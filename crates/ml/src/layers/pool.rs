//! Max-pooling layer.

use crate::layer::Layer;
use crate::tensor::Tensor;
use crate::{MlError, Result};

/// 2-D max-pooling over `[batch, channels, height, width]` inputs.
///
/// The paper's Table 1 uses pooling windows of 2x2, 3x3 and 4x4 with matching
/// strides; this layer supports any window/stride combination.
///
/// The forward pass sweeps each window tap `(ky, kx)` across the whole output
/// row at once — a branchless compare-and-select over `ox`, the long
/// dimension, which the compiler vectorises — instead of gathering the full
/// window per output element. Ties keep the semantics of the scalar
/// reference: the *first* window position (in `(ky, kx)` order) to reach the
/// maximum wins the argmax, and NaN inputs never win (a `>` comparison).
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    stride: usize,
    /// Input shape of the latest forward pass; empty before the first one.
    cached_input_shape: Vec<usize>,
    /// For each output element, the flat input index of the element that won.
    cached_argmax: Vec<u32>,
    /// Recycled forward-output allocation (see [`Layer::recycle_output`]).
    out_spare: Vec<f32>,
    /// Recycled input-gradient allocation (see [`Layer::recycle_grad`]).
    grad_spare: Vec<f32>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with a square `window` and the given `stride`.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `stride` is zero.
    pub fn new(window: usize, stride: usize) -> Self {
        assert!(window > 0, "pool window must be positive");
        assert!(stride > 0, "pool stride must be positive");
        Self {
            window,
            stride,
            cached_input_shape: Vec::new(),
            cached_argmax: Vec::new(),
            out_spare: Vec::new(),
            grad_spare: Vec::new(),
        }
    }

    /// Output spatial size for an input spatial size, or `None` if the input
    /// is smaller than the pooling window.
    pub fn output_size(&self, input: usize) -> Option<usize> {
        if input < self.window {
            None
        } else {
            Some((input - self.window) / self.stride + 1)
        }
    }
}

/// One window row of strided pooling: every output element scans its `W`
/// contiguous candidates starting at `ox·stride`, visiting them in the same
/// strictly-greater order as the sliding-tap sweep.
fn strided_row<const W: usize>(
    out_row: &mut [f32],
    arg_row: &mut [u32],
    in_row: &[f32],
    row_base: u32,
    stride: usize,
) {
    for (ox, (o, a)) in out_row.iter_mut().zip(arg_row.iter_mut()).enumerate() {
        let base = ox * stride;
        let win: &[f32; W] = in_row[base..base + W].try_into().unwrap();
        let mut best = *o;
        let mut arg = *a;
        for (kx, &x) in win.iter().enumerate() {
            let gt = x > best;
            best = if gt { x } else { best };
            arg = if gt {
                row_base + (base + kx) as u32
            } else {
                arg
            };
        }
        *o = best;
        *a = arg;
    }
}

/// [`strided_row`] for window sizes outside the monomorphised set.
fn strided_row_dyn(
    out_row: &mut [f32],
    arg_row: &mut [u32],
    in_row: &[f32],
    row_base: u32,
    stride: usize,
    window: usize,
) {
    for (ox, (o, a)) in out_row.iter_mut().zip(arg_row.iter_mut()).enumerate() {
        let base = ox * stride;
        let mut best = *o;
        let mut arg = *a;
        for (kx, &x) in in_row[base..base + window].iter().enumerate() {
            let gt = x > best;
            best = if gt { x } else { best };
            arg = if gt {
                row_base + (base + kx) as u32
            } else {
                arg
            };
        }
        *o = best;
        *a = arg;
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &str {
        "maxpool2d"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor> {
        let shape = input.shape();
        if shape.len() != 4 {
            return Err(MlError::ShapeMismatch {
                expected: vec![0, 0, 0, 0],
                actual: shape.to_vec(),
                context: "MaxPool2d::forward".to_string(),
            });
        }
        let (batch, channels, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let oh = self.output_size(h).ok_or_else(|| {
            MlError::InvalidArgument(format!(
                "input height {h} smaller than window {}",
                self.window
            ))
        })?;
        let ow = self.output_size(w).ok_or_else(|| {
            MlError::InvalidArgument(format!(
                "input width {w} smaller than window {}",
                self.window
            ))
        })?;
        assert!(
            input.len() <= u32::MAX as usize,
            "MaxPool2d input too large for u32 argmax indices"
        );
        let data = input.data();
        let out_len = batch * channels * oh * ow;
        let mut out = std::mem::take(&mut self.out_spare);
        out.resize(out_len, 0.0);
        out.fill(f32::NEG_INFINITY);
        self.cached_argmax.resize(out_len, 0);
        self.cached_argmax[..out_len].fill(0);
        let (window, stride) = (self.window, self.stride);
        for plane in 0..batch * channels {
            for oy in 0..oh {
                let out_row = &mut out[(plane * oh + oy) * ow..][..ow];
                let arg_row = &mut self.cached_argmax[(plane * oh + oy) * ow..][..ow];
                for ky in 0..window {
                    let iy = oy * stride + ky;
                    let in_row = &data[(plane * h + iy) * w..][..w];
                    let row_base = ((plane * h + iy) * w) as u32;
                    if stride == 1 {
                        // Sliding windows: sweep each contiguous tap across
                        // the whole output row (compare-and-select over the
                        // long dimension).
                        for kx in 0..window {
                            let src = &in_row[kx..kx + ow];
                            for (ox, ((o, a), &x)) in out_row
                                .iter_mut()
                                .zip(arg_row.iter_mut())
                                .zip(src)
                                .enumerate()
                            {
                                let gt = x > *o;
                                *o = if gt { x } else { *o };
                                *a = if gt { row_base + (ox + kx) as u32 } else { *a };
                            }
                        }
                    } else {
                        // Strided windows: per output element, scan the
                        // contiguous window with the running max/argmax in
                        // registers. Monomorphised per Table-1 window size
                        // so the scan fully unrolls without bounds checks.
                        match window {
                            2 => strided_row::<2>(out_row, arg_row, in_row, row_base, stride),
                            3 => strided_row::<3>(out_row, arg_row, in_row, row_base, stride),
                            4 => strided_row::<4>(out_row, arg_row, in_row, row_base, stride),
                            _ => {
                                strided_row_dyn(out_row, arg_row, in_row, row_base, stride, window)
                            }
                        }
                    }
                }
            }
        }
        self.cached_input_shape.clear();
        self.cached_input_shape.extend_from_slice(shape);
        Ok(Tensor::from_vec(out, &[batch, channels, oh, ow]))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        if self.cached_input_shape.is_empty() {
            return Err(MlError::InvalidArgument(
                "MaxPool2d::backward called before forward".to_string(),
            ));
        }
        if grad_output.len() != self.cached_argmax.len() {
            return Err(MlError::ShapeMismatch {
                expected: vec![self.cached_argmax.len()],
                actual: vec![grad_output.len()],
                context: "MaxPool2d::backward".to_string(),
            });
        }
        let mut grad_input = std::mem::take(&mut self.grad_spare);
        grad_input.resize(self.cached_input_shape.iter().product(), 0.0);
        grad_input.fill(0.0);
        for (&in_idx, &g) in self.cached_argmax.iter().zip(grad_output.data()) {
            grad_input[in_idx as usize] += g;
        }
        Ok(Tensor::from_vec(grad_input, &self.cached_input_shape))
    }

    fn parameters(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    fn gradients(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    fn zero_gradients(&mut self) {}

    fn recycle_output(&mut self, output: Tensor) {
        self.out_spare = output.into_vec();
    }

    fn recycle_grad(&mut self, grad: Tensor) {
        self.grad_spare = grad.into_vec();
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_picks_max() {
        let mut pool = MaxPool2d::new(2, 2);
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        );
        let out = pool.forward(&input).unwrap();
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let mut pool = MaxPool2d::new(2, 2);
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        pool.forward(&input).unwrap();
        let grad = pool
            .backward(&Tensor::from_vec(vec![10.0], &[1, 1, 1, 1]))
            .unwrap();
        assert_eq!(grad.data(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn non_4d_input_errors() {
        let mut pool = MaxPool2d::new(2, 2);
        assert!(pool.forward(&Tensor::zeros(&[2, 4])).is_err());
    }

    #[test]
    fn too_small_input_errors() {
        let mut pool = MaxPool2d::new(3, 3);
        assert!(pool.forward(&Tensor::zeros(&[1, 1, 2, 2])).is_err());
    }

    #[test]
    fn negative_values_handled() {
        let mut pool = MaxPool2d::new(2, 2);
        let input = Tensor::from_vec(vec![-5.0, -2.0, -8.0, -1.0], &[1, 1, 2, 2]);
        let out = pool.forward(&input).unwrap();
        assert_eq!(out.data(), &[-1.0]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut pool = MaxPool2d::new(2, 2);
        assert!(pool.backward(&Tensor::zeros(&[1, 1, 1, 1])).is_err());
    }

    /// Reference implementation: the pre-vectorisation per-element gather.
    fn reference_pool(
        data: &[f32],
        (batch, channels, h, w): (usize, usize, usize, usize),
        window: usize,
        stride: usize,
    ) -> (Vec<f32>, Vec<usize>) {
        let oh = (h - window) / stride + 1;
        let ow = (w - window) / stride + 1;
        let mut out = vec![f32::NEG_INFINITY; batch * channels * oh * ow];
        let mut argmax = vec![0usize; out.len()];
        for b in 0..batch {
            for c in 0..channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let out_idx = ((b * channels + c) * oh + oy) * ow + ox;
                        for ky in 0..window {
                            for kx in 0..window {
                                let in_idx = ((b * channels + c) * h + oy * stride + ky) * w
                                    + ox * stride
                                    + kx;
                                if data[in_idx] > out[out_idx] {
                                    out[out_idx] = data[in_idx];
                                    argmax[out_idx] = in_idx;
                                }
                            }
                        }
                    }
                }
            }
        }
        (out, argmax)
    }

    /// Shape/stride regression for the row-vectorised forward: every
    /// window/stride combination Table 1 uses (and a non-matching pair with
    /// overlap, and one with gaps) must reproduce the scalar reference — max
    /// values, argmax routing and output shape — including duplicate maxima,
    /// where the first window position must keep winning.
    #[test]
    fn vectorised_forward_matches_reference_across_shapes_and_strides() {
        for &(window, stride) in &[(2, 2), (3, 3), (4, 4), (3, 2), (2, 3), (3, 1)] {
            let (batch, channels, h, w) = (2, 3, 11, 13);
            // Coarse value grid so duplicate maxima occur inside windows.
            let data: Vec<f32> = (0..batch * channels * h * w)
                .map(|i| ((i * 37) % 11) as f32 - 5.0)
                .collect();
            let input = Tensor::from_vec(data.clone(), &[batch, channels, h, w]);
            let mut pool = MaxPool2d::new(window, stride);
            let out = pool.forward(&input).unwrap();
            let oh = (h - window) / stride + 1;
            let ow = (w - window) / stride + 1;
            assert_eq!(
                out.shape(),
                &[batch, channels, oh, ow],
                "w{window}/s{stride}"
            );
            let (expected, exp_argmax) =
                reference_pool(&data, (batch, channels, h, w), window, stride);
            assert_eq!(
                out.data(),
                expected.as_slice(),
                "values w{window}/s{stride}"
            );
            let got_argmax: Vec<usize> = pool.cached_argmax.iter().map(|&v| v as usize).collect();
            assert_eq!(got_argmax, exp_argmax, "argmax w{window}/s{stride}");
        }
    }

    #[test]
    fn repeated_forwards_reuse_buffers_and_stay_identical() {
        let mut pool = MaxPool2d::new(2, 2);
        let big = Tensor::from_vec((0..64).map(|i| (i as f32).sin()).collect(), &[1, 1, 8, 8]);
        let small = Tensor::from_vec((0..16).map(|i| (i as f32).cos()).collect(), &[1, 1, 4, 4]);
        let first = pool.forward(&big).unwrap();
        pool.forward(&small).unwrap();
        let again = pool.forward(&big).unwrap();
        assert_eq!(first, again);
    }
}
