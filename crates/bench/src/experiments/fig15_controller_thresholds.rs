//! Figure 15: threshold-based pruning of learning tasks — how many of the
//! least useful gradient computations can the controller drop (by mini-batch
//! size or by label similarity) before prediction quality suffers.

use crate::experiments::common;
use crate::{ExperimentWriter, Scale};
use fleet_core::{ParameterServer, Ssgd, WorkerUpdate};
use fleet_data::sampling::MiniBatchSampler;
use fleet_data::{GlobalLabelDistribution, LabelDistribution};
use fleet_ml::metrics::accuracy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One candidate learning task (pre-generated so every threshold setting
/// prunes from the same pool, as in the paper's controlled comparison).
#[derive(Debug, Clone)]
struct Candidate {
    user: usize,
    batch_indices: Vec<usize>,
    batch_size: usize,
    similarity: f32,
}

/// Runs the controller-threshold sweep.
pub fn run(scale: Scale) {
    let mut out = ExperimentWriter::new("fig15_controller_thresholds");
    out.comment("Figure 15: pruning learning tasks by mini-batch size (a) or similarity (b)");
    let total_tasks = scale.pick(250, 1000);
    let world = common::mnist_non_iid(scale.pick(2000, 6000), 100, 19);
    let mut rng = StdRng::seed_from_u64(7);
    let mut sampler = MiniBatchSampler::new(8);

    // Pre-generate the task pool: batch sizes ~ N(100, 33) as produced by
    // I-Prof (Fig. 12d), similarity measured against the running global
    // label distribution of the sequential task stream.
    let mut global = GlobalLabelDistribution::new(world.train.num_classes());
    let mut candidates = Vec::with_capacity(total_tasks);
    for _ in 0..total_tasks {
        let user = rng.gen_range(0..world.users.len());
        let batch_size = sample_gaussian(&mut rng, 100.0, 33.0).round().max(1.0) as usize;
        let batch_indices = sampler.sample(&world.users[user], batch_size);
        let labels: Vec<usize> = batch_indices
            .iter()
            .map(|&i| world.train.label(i))
            .collect();
        let ld = LabelDistribution::from_labels(&labels, world.train.num_classes());
        let similarity = global.similarity(&ld);
        global.record_labels(&labels);
        candidates.push(Candidate {
            user,
            batch_indices,
            batch_size,
            similarity,
        });
    }

    let eval_indices: Vec<usize> = (0..world.test.len().min(1000)).collect();
    let (eval_x, eval_y) = world.test.batch(&eval_indices);

    out.row("pruning,threshold_percentile,tasks_executed,final_accuracy");
    for threshold in [0usize, 5, 10, 20, 40, 60, 80] {
        for mode in ["size", "similarity"] {
            if threshold == 0 && mode == "similarity" {
                continue; // threshold 0 is the common SSGD baseline, report once
            }
            let retained: Vec<&Candidate> = match mode {
                "size" => {
                    let cut = percentile_value(
                        &candidates
                            .iter()
                            .map(|c| c.batch_size as f32)
                            .collect::<Vec<_>>(),
                        threshold as f32,
                    );
                    candidates
                        .iter()
                        .filter(|c| c.batch_size as f32 >= cut)
                        .collect()
                }
                _ => {
                    let cut = percentile_value(
                        &candidates.iter().map(|c| c.similarity).collect::<Vec<_>>(),
                        100.0 - threshold as f32,
                    );
                    candidates.iter().filter(|c| c.similarity <= cut).collect()
                }
            };

            // Train sequentially (staleness-free, as in Fig. 15's SSGD setup).
            let mut model = common::model(world.train.num_classes(), 21);
            let mut server = ParameterServer::new(model.parameters(), Ssgd::new(), 0.05, 1);
            for c in &retained {
                let (x, y) = world.train.batch(&c.batch_indices);
                model
                    .set_parameters(server.parameters())
                    .expect("parameters match");
                let (_, gradient) = model.compute_gradient(&x, &y).expect("batch matches");
                server.submit(WorkerUpdate::new(
                    gradient,
                    0,
                    LabelDistribution::from_labels(&y, world.train.num_classes()),
                    y.len(),
                    c.user as u64,
                ));
            }
            model
                .set_parameters(server.parameters())
                .expect("parameters match");
            let acc = accuracy(&model.predict(&eval_x).expect("eval"), &eval_y);
            let label = if threshold == 0 { "none (SSGD)" } else { mode };
            out.row(format!("{label},{threshold},{},{acc:.4}", retained.len()));
        }
    }
    out.finish();
}

fn sample_gaussian(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    mean + std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn percentile_value(values: &[f32], percentile: f32) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = (percentile / 100.0 * (sorted.len() - 1) as f32).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}
