#!/usr/bin/env bash
# CI gate for the FLeet reproduction workspace.
#
#   scripts/ci.sh           full gate: fmt, clippy, build, tier-1 tests,
#                           determinism digest sweep (threads x SIMD, shard
#                           + CNN-training digests), kernel/conv-dispatch
#                           test sweep, bench smoke writing
#                           BENCH_kernels.json, BENCH_shards.json and
#                           BENCH_conv.json
#   scripts/ci.sh --quick   skip the sweeps and the bench smoke
#
# The bench smoke keeps machine-readable perf records (BENCH_kernels.json,
# BENCH_shards.json and BENCH_conv.json at the repo root) so successive PRs
# can track the kernel, aggregation-throughput and convolution trajectories; timings are per-machine (the JSON
# meta block records threads + ISA features), so compare runs from the same
# host only.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

if [[ "${1:-}" != "--quick" ]]; then
    # The kernels promise bit-for-bit identical results on any thread count
    # with SIMD dispatch on or off. Sweep all six combinations and require
    # one digest per contract — the sharded-simulation digest and the CNN
    # training digest (which drives the im2col convolution engine, pooling
    # and the batch fan-out): a mismatch means an ISA path or a fan-out
    # partition reassociated a reduction.
    echo "==> determinism digest sweep (FLEET_NUM_THREADS x FLEET_SIMD)"
    shard_ref=""
    cnn_ref=""
    for threads in 1 4 7; do
        for simd in auto off; do
            simd_env=""
            [[ "$simd" == "off" ]] && simd_env="off"
            out=$(FLEET_NUM_THREADS=$threads FLEET_SIMD=$simd_env \
                cargo test --release -q -p fleet-tests --test parallel_determinism \
                -- --nocapture 2>&1) || {
                echo "FAIL: determinism tests at threads=$threads simd=$simd"
                exit 1
            }
            shard=$(grep -o 'shard-sweep digest: 0x[0-9a-f]*' <<<"$out" | head -1)
            cnn=$(grep -o 'cnn-train digest: 0x[0-9a-f]*' <<<"$out" | head -1)
            if [[ -z "$shard" || -z "$cnn" ]]; then
                echo "FAIL: missing digest line at threads=$threads simd=$simd"
                exit 1
            fi
            shard=${shard##* }
            cnn=${cnn##* }
            echo "    threads=$threads simd=$simd -> shard $shard cnn $cnn"
            if [[ -z "$shard_ref" ]]; then
                shard_ref="$shard"
                cnn_ref="$cnn"
            elif [[ "$shard" != "$shard_ref" || "$cnn" != "$cnn_ref" ]]; then
                echo "FAIL: digest diverged at threads=$threads simd=$simd"
                exit 1
            fi
        done
    done

    # Kernel correctness + SIMD/scalar parity property tests, and the
    # direct-vs-im2col convolution parity suite, once with the dispatcher
    # auto-detecting and once forced to the scalar fallback.
    echo "==> kernel + conv parity tests with SIMD dispatch auto and forced off"
    cargo test --release -q -p fleet-ml kernels
    FLEET_SIMD=off cargo test --release -q -p fleet-ml kernels
    cargo test --release -q -p fleet-ml conv
    FLEET_SIMD=off cargo test --release -q -p fleet-ml conv

    echo "==> bench smoke (ml_kernels -> BENCH_kernels.json)"
    FLEET_BENCH_TIME_MS="${FLEET_BENCH_TIME_MS:-200}" \
    FLEET_BENCH_JSON="$PWD/BENCH_kernels.json" \
        cargo bench --bench ml_kernels
    echo "==> wrote BENCH_kernels.json"

    echo "==> bench smoke (shards -> BENCH_shards.json)"
    FLEET_BENCH_TIME_MS="${FLEET_BENCH_TIME_MS:-200}" \
    FLEET_BENCH_JSON="$PWD/BENCH_shards.json" \
        cargo bench --bench shards
    echo "==> wrote BENCH_shards.json"

    echo "==> bench smoke (conv -> BENCH_conv.json)"
    FLEET_BENCH_TIME_MS="${FLEET_BENCH_TIME_MS:-400}" \
    FLEET_BENCH_JSON="$PWD/BENCH_conv.json" \
        cargo bench --bench conv
    echo "==> wrote BENCH_conv.json"
fi

echo "==> CI gate passed"
