//! Figure 4: computation time and energy grow linearly with the mini-batch
//! size, with a device-specific slope that drifts as the device heats up
//! (sweep batch sizes up, then let the device cool and sweep down).

use crate::{ExperimentWriter, Scale};
use fleet_device::profile::by_name;
use fleet_device::Device;

/// Sweeps mini-batch sizes up and down on three devices, recording latency,
/// energy and temperature.
pub fn run(scale: Scale) {
    let mut out = ExperimentWriter::new("fig04_device_linearity");
    out.comment("Figure 4: latency/energy vs mini-batch size, up then down sweeps");
    out.row("device,phase,batch_size,computation_seconds,energy_pct,temperature_celsius");

    let max_batch = scale.pick(800, 3200);
    let step = scale.pick(200, 200);
    for name in ["Galaxy S7", "Xperia E3", "Honor 10"] {
        let mut device = Device::new(by_name(name).expect("catalogue device"), 4);
        let up: Vec<usize> = (1..=max_batch / step).map(|i| i * step).collect();
        for &batch in &up {
            let exec = device.execute_task(batch);
            out.row(format!(
                "{name},up,{batch},{:.4},{:.6},{:.2}",
                exec.computation_seconds, exec.energy_pct, exec.start_temperature
            ));
        }
        // Cool-down pause between the sweeps (as in the paper).
        device.idle(1800.0);
        for &batch in up.iter().rev() {
            let exec = device.execute_task(batch);
            out.row(format!(
                "{name},down,{batch},{:.4},{:.6},{:.2}",
                exec.computation_seconds, exec.energy_pct, exec.start_temperature
            ));
        }
    }
    out.finish();
}
